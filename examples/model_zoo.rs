//! Tour of the ten SBR models: recommendations, inference costs and
//! JIT-compilation behaviour.
//!
//! ```text
//! cargo run --release --example model_zoo
//! ```
//!
//! Builds every model the paper evaluates on a small catalog, runs a real
//! recommendation for the same session, shows the per-forward operation
//! counts, and reports which models survive JIT tracing — including the
//! LightSANs dynamic-control-flow failure the paper diagnosed.

use etude::metrics::report::Table;
use etude::models::{traits, ModelConfig, ModelKind};
use etude::tensor::{Device, ExecMode, JitError};

fn main() {
    let cfg = ModelConfig::new(1_000)
        .with_max_session_len(12)
        .with_seed(2024);
    let session = [17u32, 4, 256, 4, 99];
    println!(
        "catalog: {} items, embedding dim {} (the paper's C^(1/4) heuristic)\n",
        cfg.catalog_size, cfg.embedding_dim
    );

    let mut table = Table::new([
        "model",
        "family",
        "top-3 items",
        "ops/forward",
        "GFLOP-equiv",
        "JIT",
    ]);
    for kind in ModelKind::ALL {
        let model = kind.build(&cfg);
        let rec =
            traits::recommend_eager(model.as_ref(), &Device::cpu(), &session).expect("inference");
        let cost = traits::forward_cost(model.as_ref(), &Device::cpu(), ExecMode::Real, 5)
            .expect("cost probe");
        let jit = match traits::compile(model.as_ref(), Default::default()) {
            Ok(compiled) => format!(
                "ok ({} -> {} launches)",
                cost.launches,
                compiled.cost().at_batch(1).launches
            ),
            Err(JitError::DynamicControlFlow(_)) => "refused: dynamic control flow".to_string(),
            Err(e) => format!("failed: {e}"),
        };
        let family = match kind {
            ModelKind::Gru4Rec | ModelKind::RepeatNet => "recurrent",
            ModelKind::SrGnn | ModelKind::GcSan => "graph NN",
            ModelKind::Narm | ModelKind::Sine | ModelKind::Stamp => "attention",
            ModelKind::LightSans | ModelKind::Core | ModelKind::SasRec => "transformer",
        };
        table.row([
            kind.name().to_string(),
            family.to_string(),
            format!("{:?}", &rec.items[..3]),
            cost.launches.to_string(),
            format!("{:.4}", cost.flops / 1e9),
            jit,
        ]);
    }
    println!("{}", table.render());
    println!(
        "All ten models share the O(C(d + log k)) decode; their encoder \
         families differ, which is what the launch/FLOP columns show."
    );
}
