//! Automatic deployment planning (the paper's Section IV future work:
//! "the automatic choice of appropriate instance types for declaratively
//! specified workloads").
//!
//! ```text
//! cargo run --release --example auto_planner
//! ```
//!
//! Declares a workload, lets the planner search the instance catalog and
//! replica counts, and prints the recommendation with the full audit
//! trail: which options were pruned analytically (model too big, capacity
//! too low) and which failed the simulated SLO verification.

use etude::cluster::InstanceType;
use etude::core::planner::{plan_deployment, Rejection};
use etude::core::ExperimentSpec;
use etude::metrics::report::{fmt_cost, fmt_duration};
use etude::models::ModelKind;
use std::time::Duration;

fn main() {
    // A mid-size fashion platform: one million items, 500 req/s.
    let spec = ExperimentSpec::new(ModelKind::SasRec, 1_000_000, InstanceType::CpuE2)
        .with_target_rps(500)
        .with_ramp(Duration::from_secs(30));

    println!(
        "planning a deployment for {} @ {} items, {} req/s, p90 <= {:?}\n",
        spec.model.name(),
        spec.catalog_size,
        spec.target_rps,
        spec.latency_slo
    );

    let plan = plan_deployment(&spec, 6);

    match plan.recommendation() {
        Some(best) => println!(
            "RECOMMENDATION: {} x{} for {}/month\n",
            best.instance.name(),
            best.replicas,
            fmt_cost(best.monthly_cost)
        ),
        None => println!("RECOMMENDATION: none — no evaluated option meets the constraints\n"),
    }

    println!("viable alternatives (cheapest first):");
    for c in &plan.viable {
        println!(
            "  {} x{}  {}/month",
            c.instance.name(),
            c.replicas,
            fmt_cost(c.monthly_cost)
        );
    }

    println!("\nrejected options and why:");
    for c in &plan.rejected {
        let reason = match &c.rejection {
            Some(Rejection::ModelDoesNotFit) => "model does not fit device memory".to_string(),
            Some(Rejection::InsufficientCapacity { estimated_rps }) => {
                format!("analytic capacity only {estimated_rps:.0} req/s")
            }
            Some(Rejection::MissedSlo { p90 }) => {
                format!("simulated p90 {} breaches the SLO", fmt_duration(*p90))
            }
            None => "unknown".to_string(),
        };
        println!(
            "  {} x{}  ({}/month): {}",
            c.instance.name(),
            c.replicas,
            fmt_cost(c.monthly_cost),
            reason
        );
    }
}
