//! Capacity planning for a growing e-Commerce platform.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```
//!
//! The scenario from the paper's introduction: a retail group (think
//! Ahold Delhaize's nineteen brands) runs the same recommender on
//! platforms of very different sizes, and every brand needs its own
//! deployment decision. This example sweeps a model across the five
//! Table I scenarios and prints the cheapest feasible deployment per
//! scenario — the exact decision ETUDE automates.

use etude::cluster::InstanceType;
use etude::core::analysis::{cheapest_deployment, scan_deployments};
use etude::core::Scenario;
use etude::metrics::report::{fmt_cost, fmt_duration, Table};
use etude::models::ModelKind;
use std::time::Duration;

fn main() {
    let model = ModelKind::SasRec;
    let ramp = Duration::from_secs(30);
    println!(
        "capacity planning for {} across the five use cases\n",
        model.name()
    );

    let mut table = Table::new([
        "scenario",
        "catalog",
        "target_rps",
        "cheapest_option",
        "p90",
        "cost/month",
    ]);
    for scenario in Scenario::ALL {
        let verdicts = scan_deployments(&scenario, model, ramp, true);
        match cheapest_deployment(&verdicts) {
            Some(best) => {
                table.row([
                    scenario.name.to_string(),
                    scenario.catalog_size.to_string(),
                    scenario.target_rps.to_string(),
                    format!("{} x{}", best.instance.name(), best.replicas),
                    fmt_duration(best.p90),
                    fmt_cost(best.monthly_cost),
                ]);
            }
            None => {
                table.row([
                    scenario.name.to_string(),
                    scenario.catalog_size.to_string(),
                    scenario.target_rps.to_string(),
                    "none feasible".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]);
            }
        }
    }
    println!("{}", table.render());

    // The paper's headline cost observation: for the e-Commerce scenario
    // it is significantly cheaper to scale out T4s than to buy A100s.
    let verdicts = scan_deployments(&Scenario::ECOMMERCE, model, ramp, true);
    let t4 = verdicts
        .iter()
        .find(|v| v.instance == InstanceType::GpuT4 && v.feasible);
    let a100 = verdicts
        .iter()
        .find(|v| v.instance == InstanceType::GpuA100 && v.feasible);
    if let (Some(t4), Some(a100)) = (t4, a100) {
        println!(
            "e-Commerce cost comparison: {} GPU-T4 instances for {} vs {} GPU-A100 for {} — \
             scale-out wins by {}",
            t4.replicas,
            fmt_cost(t4.monthly_cost),
            a100.replicas,
            fmt_cost(a100.monthly_cost),
            fmt_cost(a100.monthly_cost - t4.monthly_cost),
        );
    }
}
