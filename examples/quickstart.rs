//! Quickstart: evaluate one SBR model's deployability in three steps.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! A data scientist has a trained model (here: CORE on a 100,000-item
//! catalog) and wants to know whether it can serve 250 requests/second
//! under a 50 ms p90 SLO — and on what hardware. This is the end-to-end
//! ETUDE workflow: declare the experiment, run it, read the verdict.

use etude::cluster::InstanceType;
use etude::core::{run_experiment, ExperimentSpec};
use etude::metrics::report::{fmt_cost, fmt_duration};
use etude::models::ModelKind;
use std::time::Duration;

fn main() {
    // 1. Declare what to evaluate: model, catalog statistics, hardware
    //    and constraints. No devops work, no cloud credentials.
    let base = ExperimentSpec::new(ModelKind::Core, 100_000, InstanceType::CpuE2)
        .with_target_rps(250)
        .with_ramp(Duration::from_secs(60));

    println!("evaluating {} for 250 req/s at p90 <= 50ms\n", base.label());

    // 2. Run the deployed benchmark on each candidate instance type.
    for instance in InstanceType::ALL {
        let spec = ExperimentSpec {
            instance,
            ..base.clone()
        };
        let result = run_experiment(&spec);

        // 3. Read the verdict: achieved throughput, latency, cost.
        println!(
            "{:<10} p90 {:>10}  throughput {:>7.1} req/s  {}  -> {}",
            instance.name(),
            fmt_duration(result.p90()),
            result.throughput(),
            fmt_cost(result.monthly_cost),
            if result.feasible {
                "FEASIBLE"
            } else {
                "infeasible"
            },
        );
    }

    println!(
        "\nBoth grocery-scale rows of the paper's Table I land on the \
         CPU instance: a single $108/month machine meets the SLO."
    );
}
