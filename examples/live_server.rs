//! A real inference server under real load — no simulation.
//!
//! ```text
//! cargo run --release --example live_server
//! ```
//!
//! Starts the actual HTTP inference server (the paper's Actix-equivalent)
//! on a local port with a JIT-compiled STAMP model, then drives it with
//! the real-time implementation of Algorithm 2 over real sockets, and
//! prints the measured latency distribution. Everything in this example
//! is genuine execution: TCP, HTTP parsing, model forward passes.

use etude::loadgen::driver::RealLoadGen;
use etude::loadgen::LoadConfig;
use etude::metrics::report::fmt_duration;
use etude::models::{ModelConfig, ModelKind, SbrModel};
use etude::serve::rustserver::{model_routes, start, ServerConfig};
use etude::tensor::Device;
use etude::workload::{SyntheticWorkload, WorkloadConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // Deploy: a STAMP model over a 20,000-item catalog, JIT-compiled at
    // deployment time, served by four worker threads.
    let cfg = ModelConfig::new(20_000)
        .with_max_session_len(30)
        .with_seed(7);
    let model: Arc<dyn SbrModel> = Arc::from(ModelKind::Stamp.build(&cfg));
    let handler = model_routes(model, Device::cpu(), true);
    let server = start(ServerConfig { workers: 4 }, handler).expect("server starts");
    println!("inference server listening on {}", server.addr());

    // Generate a synthetic workload (Algorithm 1) for the catalog.
    let workload = SyntheticWorkload::new(WorkloadConfig::bolcom_like(20_000));
    let log = workload.generate(30_000);
    println!(
        "generated {} synthetic clicks across {} sessions",
        log.len(),
        log.session_count()
    );

    // Load test: ramp to 300 req/s over 6 seconds (Algorithm 2, real
    // time), with 8 keep-alive connections.
    let config = LoadConfig {
        target_rps: 300,
        ramp: Duration::from_secs(6),
        duration: Duration::from_secs(8),
        backpressure: true,
        seed: 3,
    };
    println!(
        "ramping to {} req/s over {:?}...\n",
        config.target_rps, config.ramp
    );
    let result = RealLoadGen::run(server.addr(), &log, config, 8).expect("load test");

    let summary = result.summary();
    println!(
        "sent {} requests: {} ok, {} errors",
        result.sent, result.ok, result.errors
    );
    println!("  p50  {}", fmt_duration(summary.p50));
    println!("  p90  {}", fmt_duration(summary.p90));
    println!("  p99  {}", fmt_duration(summary.p99));
    println!("  max  {}", fmt_duration(summary.max));
    println!(
        "  SLO (p90 <= 50ms): {}",
        if summary.meets_slo(Duration::from_millis(50)) {
            "met"
        } else {
            "missed"
        }
    );
    println!("\nper-tick achieved throughput:");
    for (tick, sent, ok, p90, errors) in result.series.rows() {
        println!(
            "  t={tick:<2} sent {sent:>4}  ok {ok:>4}  p90 {:>10}  errors {errors}",
            fmt_duration(p90)
        );
    }
    server.shutdown();
}
