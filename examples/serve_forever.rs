//! Run the inference server as a long-lived process for manual poking.
//!
//! ```text
//! cargo run --release --example serve_forever [catalog_size]
//! ```
//!
//! Starts the real HTTP inference server with a JIT-compiled CORE model
//! and prints the bound address; it then serves until the process is
//! killed. Useful for driving the API by hand:
//!
//! ```text
//! curl http://127.0.0.1:<port>/ping
//! curl -d '1,2,3' http://127.0.0.1:<port>/predictions
//! curl http://127.0.0.1:<port>/stats      # per-stage latency breakdown (JSON)
//! curl http://127.0.0.1:<port>/metrics    # Prometheus text format
//! ```

use etude::models::{ModelConfig, ModelKind, SbrModel};
use etude::serve::rustserver::{model_routes, start, ServerConfig};
use etude::tensor::Device;
use std::sync::Arc;

fn main() {
    let catalog: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let cfg = ModelConfig::new(catalog)
        .with_max_session_len(30)
        .with_seed(1);
    let model: Arc<dyn SbrModel> = Arc::from(ModelKind::Core.build(&cfg));
    let handler = model_routes(model, Device::cpu(), true);
    let server = start(ServerConfig { workers: 4 }, handler).expect("server starts");
    println!(
        "serving {} items on http://{} (GET /ping, /static, /stats, /metrics; POST /predictions)",
        catalog,
        server.addr()
    );
    println!("press Ctrl-C to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
