//! Cross-crate integration tests: the full ETUDE pipeline exercised
//! end-to-end, both in simulation and over real sockets.

use etude::cluster::InstanceType;
use etude::core::{run_experiment, ExecutionMode, ExperimentSpec};
use etude::loadgen::driver::RealLoadGen;
use etude::loadgen::LoadConfig;
use etude::models::{ModelConfig, ModelKind, SbrModel};
use etude::serve::rustserver::{model_routes, start, ServerConfig};
use etude::tensor::Device;
use etude::workload::{SyntheticWorkload, WorkloadConfig};
use std::sync::Arc;
use std::time::Duration;

fn small_spec(model: ModelKind, instance: InstanceType) -> ExperimentSpec {
    ExperimentSpec::new(model, 50_000, instance)
        .with_target_rps(200)
        .with_ramp(Duration::from_secs(12))
}

#[test]
fn simulated_pipeline_runs_for_every_model() {
    for model in ModelKind::ALL {
        let result = run_experiment(&small_spec(model, InstanceType::CpuE2));
        assert!(
            result.load.sent > 500,
            "{}: sent {}",
            model.name(),
            result.load.sent
        );
        assert_eq!(result.load.errors, 0, "{}", model.name());
        assert!(result.feasible, "{}: p90 {:?}", model.name(), result.p90());
    }
}

#[test]
fn experiment_results_are_deterministic() {
    let spec = small_spec(ModelKind::Narm, InstanceType::GpuT4);
    let a = run_experiment(&spec);
    let b = run_experiment(&spec);
    assert_eq!(a.load.sent, b.load.sent);
    assert_eq!(a.load.ok, b.load.ok);
    assert_eq!(a.p90(), b.p90());
    assert_eq!(a.feasible, b.feasible);
}

#[test]
fn different_seeds_change_the_workload_but_not_the_verdict() {
    let spec = small_spec(ModelKind::Stamp, InstanceType::CpuE2);
    let a = run_experiment(&spec.clone().with_seed(1));
    let b = run_experiment(&spec.with_seed(2));
    // Same deployment, same target: the feasibility verdict must agree
    // even though the sampled sessions differ.
    assert_eq!(a.feasible, b.feasible);
}

#[test]
fn eager_execution_is_never_cheaper_than_jit_end_to_end() {
    let jit = run_experiment(
        &small_spec(ModelKind::Core, InstanceType::CpuE2).with_execution(ExecutionMode::Jit),
    );
    let eager = run_experiment(
        &small_spec(ModelKind::Core, InstanceType::CpuE2).with_execution(ExecutionMode::Eager),
    );
    assert!(jit.p90() <= eager.p90() + Duration::from_micros(100));
}

#[test]
fn real_server_and_real_loadgen_serve_a_real_model() {
    // The non-simulated path: actual TCP, actual HTTP, actual inference.
    let cfg = ModelConfig::new(5_000)
        .with_max_session_len(16)
        .with_seed(5);
    let model: Arc<dyn SbrModel> = Arc::from(ModelKind::Core.build(&cfg));
    let handler = model_routes(model, Device::cpu(), true);
    let server = start(ServerConfig { workers: 3 }, handler).unwrap();

    let workload = SyntheticWorkload::new(WorkloadConfig::bolcom_like(5_000));
    let log = workload.generate(5_000);
    let result = RealLoadGen::run(
        server.addr(),
        &log,
        LoadConfig {
            target_rps: 150,
            ramp: Duration::from_secs(2),
            duration: Duration::from_secs(3),
            backpressure: true,
            seed: 1,
        },
        6,
    )
    .unwrap();
    assert!(result.ok > 100, "ok {}", result.ok);
    assert_eq!(result.errors, 0);
    assert!(
        result.summary().p90 < Duration::from_millis(100),
        "{:?}",
        result.summary().p90
    );
    server.shutdown();
}

#[test]
fn real_and_simulated_servers_agree_on_feasibility_direction() {
    // The simulated rust server and the real one must agree that a small
    // catalog at modest rate is comfortably feasible — the consistency
    // anchor between the two stacks.
    let sim = run_experiment(&small_spec(ModelKind::Stamp, InstanceType::CpuE2));
    assert!(sim.feasible);

    // The real half runs this machine's actual kernels: unoptimised dev
    // builds are ~20x slower, so the catalog and the latency bar adapt.
    let (catalog, slo) = if cfg!(debug_assertions) {
        (10_000usize, Duration::from_millis(200))
    } else {
        (50_000usize, Duration::from_millis(50))
    };
    let cfg = ModelConfig::new(catalog)
        .with_max_session_len(16)
        .with_seed(5);
    let model: Arc<dyn SbrModel> = Arc::from(ModelKind::Stamp.build(&cfg));
    let handler = model_routes(model, Device::cpu(), true);
    let server = start(ServerConfig { workers: 3 }, handler).unwrap();
    let workload = SyntheticWorkload::new(WorkloadConfig::bolcom_like(catalog));
    let log = workload.generate(2_000);
    let result = RealLoadGen::run(
        server.addr(),
        &log,
        LoadConfig {
            target_rps: 100,
            ramp: Duration::from_secs(2),
            duration: Duration::from_secs(3),
            backpressure: true,
            seed: 1,
        },
        4,
    )
    .unwrap();
    assert!(
        result.summary().meets_slo(slo),
        "p90 {:?}",
        result.summary().p90
    );
    server.shutdown();
}

#[test]
fn infeasible_scenarios_fail_loudly_not_silently() {
    // A CPU instance cannot serve ten million items at 1,000 req/s; the
    // result must say so rather than report an empty success.
    let spec = ExperimentSpec::new(ModelKind::Gru4Rec, 10_000_000, InstanceType::CpuE2)
        .with_target_rps(1_000)
        .with_ramp(Duration::from_secs(10));
    let result = run_experiment(&spec);
    assert!(!result.feasible);
}

#[test]
fn quirky_models_lose_feasibility_where_fixed_ones_keep_it() {
    // RepeatNet on a T4 at one million items and 600 req/s: the dense
    // decode quirk pushes it over the edge; repaired it fits.
    let spec = ExperimentSpec::new(ModelKind::RepeatNet, 1_000_000, InstanceType::GpuT4)
        .with_target_rps(330)
        .with_ramp(Duration::from_secs(12));
    let quirky = run_experiment(&spec.clone().with_quirks(true));
    let fixed = run_experiment(&spec.with_quirks(false));
    assert!(
        fixed.p90() < quirky.p90(),
        "fixed {:?} vs quirky {:?}",
        fixed.p90(),
        quirky.p90()
    );
    assert!(fixed.feasible);
}
