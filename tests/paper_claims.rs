//! The paper's headline claims, encoded as executable (scaled-down)
//! end-to-end tests. Each test cites the claim it checks.

use etude::cluster::InstanceType;
use etude::core::analysis::{cheapest_deployment, scan_deployments};
use etude::core::{run_serial_microbenchmark, ExperimentSpec, Scenario};
use etude::loadgen::{LoadConfig, SimLoadGen};
use etude::models::ModelKind;
use etude::serve::simserver::{RustServerConfig, SimRustServer, SimTorchServe};
use etude::serve::{ServiceProfile, TorchServeProfile};
use etude::tensor::Device;
use etude::workload::{LogStatistics, SyntheticWorkload, WorkloadConfig};
use std::time::Duration;

const RAMP: Duration = Duration::from_secs(12);

/// "TorchServe already fails at handling 'empty' requests efficiently"
/// while "our Actix-based inference server easily handles the load with a
/// p90 latency of around one millisecond ... and does not throw any HTTP
/// errors." (Figure 2.)
#[test]
fn claim_torchserve_fails_the_infrastructure_test() {
    let log = SyntheticWorkload::new(WorkloadConfig::bolcom_like(10_000)).generate(15_000);
    let config = LoadConfig::scaled_rampup(1_000, 15);

    let ts = SimLoadGen::run(
        SimTorchServe::new(
            TorchServeProfile::default(),
            ServiceProfile::static_response(&Device::cpu()),
        ),
        &log,
        config.clone(),
    );
    let rust = SimLoadGen::run(
        SimRustServer::new(
            ServiceProfile::static_response(&Device::cpu()),
            RustServerConfig::cpu(2),
        ),
        &log,
        config,
    );
    assert!(ts.errors > 50, "torchserve errors: {}", ts.errors);
    let ts_p90 = ts.tail_summary(4).p90;
    assert!(
        ts_p90 >= Duration::from_millis(50) && ts_p90 <= Duration::from_millis(400),
        "torchserve p90 {ts_p90:?}"
    );
    assert_eq!(rust.errors, 0);
    assert!(rust.summary().p90 <= Duration::from_millis(2));
}

/// "We observe a linear scalability of the prediction latency with the
/// catalog size." (Figure 3.)
#[test]
fn claim_latency_scales_linearly_with_catalog() {
    // CORE is representative; the full ten-model sweep runs in
    // `fig3_micro`.
    let p90_at = |c: usize| {
        run_serial_microbenchmark(
            &ExperimentSpec::new(ModelKind::Core, c, InstanceType::CpuE2),
            60,
        )
        .p90
        .as_secs_f64()
    };
    let l5 = p90_at(100_000);
    let l6 = p90_at(1_000_000);
    let l7 = p90_at(10_000_000);
    let r1 = l6 / l5;
    let r2 = l7 / l6;
    assert!((5.0..=25.0).contains(&r1), "1e5 -> 1e6 ratio {r1:.1}");
    assert!((5.0..=25.0).contains(&r2), "1e6 -> 1e7 ratio {r2:.1}");
}

/// "Starting from catalogs with one million items, the prediction latency
/// of the GPU is more than an order of magnitude lower than the latencies
/// achieved with CPUs only (and the CPU already requires more than 50ms
/// per prediction for catalogs with one million items)." (Section III-B.)
#[test]
fn claim_gpu_order_of_magnitude_at_one_million() {
    for model in [ModelKind::Gru4Rec, ModelKind::Core, ModelKind::Stamp] {
        let cpu = run_serial_microbenchmark(
            &ExperimentSpec::new(model, 1_000_000, InstanceType::CpuE2),
            60,
        );
        let gpu = run_serial_microbenchmark(
            &ExperimentSpec::new(model, 1_000_000, InstanceType::GpuT4),
            60,
        );
        assert!(
            cpu.p90 > Duration::from_millis(45),
            "{}: {:?}",
            model.name(),
            cpu.p90
        );
        assert!(
            cpu.p90.as_secs_f64() > 10.0 * gpu.p90.as_secs_f64(),
            "{}: cpu {:?} gpu {:?}",
            model.name(),
            cpu.p90,
            gpu.p90
        );
    }
}

/// "Catalog sizes of 10,000 and 100,000 can be handled well with CPU
/// instances only" and "both grocery shopping scenarios can be handled
/// very cost-efficiently with a single CPU machine for $108 per month".
/// (Section III-C / Table I.)
#[test]
fn claim_groceries_run_on_one_cpu_machine() {
    for scenario in [Scenario::GROCERIES_SMALL, Scenario::GROCERIES_LARGE] {
        let verdicts = scan_deployments(&scenario, ModelKind::Gru4Rec, RAMP, true);
        let best = cheapest_deployment(&verdicts).expect("feasible option exists");
        assert_eq!(best.instance, InstanceType::CpuE2, "{}", scenario.name);
        assert_eq!(best.replicas, 1, "{}", scenario.name);
        assert!((best.monthly_cost - 108.09).abs() < 0.01);
    }
}

/// "The platform scenario with a large catalog of 20 million items can
/// only be efficiently handled with three high-end GPU-A100 instances at
/// the high cost of $6,026 per month." (Section III-C.)
#[test]
fn claim_platform_needs_three_a100s() {
    let verdicts = scan_deployments(&Scenario::PLATFORM, ModelKind::Stamp, RAMP, true);
    let best = cheapest_deployment(&verdicts).expect("A100s can serve it");
    assert_eq!(best.instance, InstanceType::GpuA100);
    assert_eq!(best.replicas, 3);
    assert!((best.monthly_cost - 6_026.40).abs() < 0.01);
    for v in &verdicts {
        if v.instance != InstanceType::GpuA100 {
            assert!(!v.feasible, "{:?} x{} must fail", v.instance, v.replicas);
        }
    }
}

/// "For the general e-Commerce scenario, it is significantly cheaper to
/// deploy five GPU-T4 instances ($1,343) than to leverage two more
/// powerful GPU-A100 instances (for $4,017)." (Section III-C; our
/// calibrated reproduction lands on six T4s — same conclusion.)
#[test]
fn claim_t4_scale_out_beats_a100s_for_ecommerce() {
    let verdicts = scan_deployments(&Scenario::ECOMMERCE, ModelKind::Sine, RAMP, true);
    let t4 = verdicts
        .iter()
        .find(|v| v.instance == InstanceType::GpuT4 && v.feasible)
        .expect("T4 scale-out feasible");
    let a100 = verdicts
        .iter()
        .find(|v| v.instance == InstanceType::GpuA100 && v.feasible)
        .expect("A100 option feasible");
    assert!(
        t4.replicas >= 5,
        "T4 needs several replicas, got {}",
        t4.replicas
    );
    assert_eq!(a100.replicas, 2);
    assert!(t4.monthly_cost < a100.monthly_cost);
}

/// "This algorithm is fast enough for online generation (our
/// implementation is able to generate over one million clicks per second
/// on a single core for a catalog size C of ten million items)."
/// (Section II.)
#[test]
fn claim_workload_generation_exceeds_one_million_clicks_per_second() {
    let workload = SyntheticWorkload::new(WorkloadConfig::bolcom_like(10_000_000));
    let n = 500_000usize;
    let start = std::time::Instant::now();
    let total: u64 = workload.clicks(1).take(n).map(|c| c.item as u64).sum();
    let elapsed = start.elapsed();
    assert!(total > 0);
    let rate = n as f64 / elapsed.as_secs_f64();
    assert!(rate > 1_000_000.0, "only {rate:.0} clicks/s");
}

/// "We find that the achieved latencies resemble each other closely."
/// (Section III-A, real-log vs synthetic validation.)
#[test]
fn claim_synthetic_workload_matches_real_log_latencies() {
    use etude::workload::reallog::{generate_real_log, RealLogConfig};
    let catalog = 50_000;
    let real = generate_real_log(
        &RealLogConfig {
            catalog_size: catalog,
            ..Default::default()
        },
        6_000,
    );
    let stats = LogStatistics::estimate(&real, catalog).unwrap();
    let synth = SyntheticWorkload::new(stats.to_workload_config(catalog, 3)).generate(6_000);

    let run = |log: &etude::workload::SessionLog| {
        let profile = ServiceProfile::build(
            ModelKind::Core,
            &etude::models::ModelConfig::new(catalog).without_weights(),
            &Device::cpu(),
            etude::serve::service::ExecutionKind::Jit,
        )
        .unwrap();
        let server = SimRustServer::new(profile, RustServerConfig::cpu(5));
        SimLoadGen::run(server, log, LoadConfig::scaled_rampup(300, 10))
            .summary()
            .p90
            .as_secs_f64()
    };
    let real_p90 = run(&real);
    let synth_p90 = run(&synth);
    let gap = (real_p90 - synth_p90).abs() / real_p90;
    assert!(gap < 0.15, "p90 gap {:.1}%", gap * 100.0);
}
