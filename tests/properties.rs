//! Cross-crate property-based tests (proptest): invariants of the tensor
//! runtime, the JIT, the workload generator and the metrics pipeline
//! under randomised inputs.

use etude::metrics::Histogram;
use etude::models::{traits, ModelConfig, ModelKind};
use etude::tensor::kernels::{BinOp, UnOp};
use etude::tensor::{Device, Exec, ExecMode, Param, Tensor};
use etude::workload::{SessionLog, SyntheticWorkload, WorkloadConfig};
use proptest::prelude::*;

fn tensor_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn softmax_rows_always_sum_to_one(data in tensor_strategy(24)) {
        let mut exec = Exec::new(ExecMode::Real, Device::cpu());
        let x = exec.input(Tensor::from_vec(data, &[4, 6]).unwrap()).unwrap();
        let y = exec.softmax(x).unwrap();
        let out = exec.tensor(y).unwrap().as_slice().unwrap();
        for row in out.chunks(6) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|v| *v >= 0.0));
        }
    }

    #[test]
    fn topk_returns_sorted_members_of_input(data in tensor_strategy(50), k in 1usize..20) {
        let mut exec = Exec::new(ExecMode::Real, Device::cpu());
        let x = exec.input(Tensor::from_vec(data.clone(), &[50]).unwrap()).unwrap();
        let t = exec.topk(x, k).unwrap();
        let out = exec.tensor(t).unwrap();
        let ids = &out.as_slice().unwrap()[..k];
        let scores = &out.as_slice().unwrap()[k..];
        // Scores descend and each belongs to its claimed index.
        for w in scores.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        for (idf, score) in ids.iter().zip(scores) {
            let idx = etude::tensor::f32_to_id(*idf) as usize;
            prop_assert!(idx < 50);
            prop_assert_eq!(*score, data[idx]);
        }
    }

    #[test]
    fn elementwise_identities_hold(data in tensor_strategy(16)) {
        let mut exec = Exec::new(ExecMode::Real, Device::cpu());
        let x = exec.input(Tensor::from_vec(data.clone(), &[16]).unwrap()).unwrap();
        // x + 0 == x ; x * 1 == x ; relu(relu(x)) == relu(x)
        let plus_zero = exec.scalar(BinOp::Add, x, 0.0).unwrap();
        let times_one = exec.scalar(BinOp::Mul, x, 1.0).unwrap();
        let r1 = exec.unary(UnOp::Relu, x).unwrap();
        let r2 = exec.unary(UnOp::Relu, r1).unwrap();
        let orig = exec.tensor(x).unwrap().clone();
        prop_assert!(exec.tensor(plus_zero).unwrap().max_abs_diff(&orig).unwrap() < 1e-6);
        prop_assert!(exec.tensor(times_one).unwrap().max_abs_diff(&orig).unwrap() < 1e-6);
        let r1t = exec.tensor(r1).unwrap().clone();
        prop_assert!(exec.tensor(r2).unwrap().max_abs_diff(&r1t).unwrap() < 1e-6);
    }

    #[test]
    fn matmul_identity_is_identity(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let mut eye = vec![0.0f32; cols * cols];
        for i in 0..cols {
            eye[i * cols + i] = 1.0;
        }
        let mut exec = Exec::new(ExecMode::Real, Device::cpu());
        let x = exec.input(Tensor::from_vec(data.clone(), &[rows, cols]).unwrap()).unwrap();
        let id = exec.param(&Param::new(Tensor::from_vec(eye, &[cols, cols]).unwrap())).unwrap();
        let y = exec.matmul(x, id).unwrap();
        let expected = Tensor::from_vec(data, &[rows, cols]).unwrap();
        prop_assert!(exec.tensor(y).unwrap().max_abs_diff(&expected).unwrap() < 1e-5);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded(
        values in proptest::collection::vec(1u64..10_000_000, 1..300),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let quantiles = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let mut last = 0;
        for &q in &quantiles {
            let v = h.value_at_quantile(q);
            prop_assert!(v >= last, "quantiles must be monotone");
            last = v;
        }
        let max = *values.iter().max().unwrap();
        let min = *values.iter().min().unwrap();
        prop_assert_eq!(h.value_at_quantile(1.0), max);
        prop_assert!(h.value_at_quantile(0.0) >= min.min(h.min()));
    }

    #[test]
    fn workload_invariants_hold_for_any_exponents(
        alpha_l in 1.2f64..3.5,
        alpha_c in 1.2f64..3.5,
        seed in 0u64..500,
    ) {
        let cfg = WorkloadConfig {
            catalog_size: 500,
            alpha_length: alpha_l,
            alpha_clicks: alpha_c,
            max_session_len: 40,
            seed,
        };
        let log = SyntheticWorkload::new(cfg).generate(2_000);
        prop_assert!(log.len() >= 2_000);
        prop_assert!(log.check_invariants(500).is_ok());
        prop_assert!(log.session_lengths().iter().all(|&l| (1..=40).contains(&l)));
    }

    #[test]
    fn session_replay_never_violates_per_session_order(seed in 0u64..200) {
        use etude::loadgen::SessionReplayer;
        let cfg = WorkloadConfig {
            catalog_size: 200,
            alpha_length: 1.6,
            alpha_clicks: 2.0,
            max_session_len: 12,
            seed,
        };
        let log: SessionLog = SyntheticWorkload::new(cfg).generate(300);
        let mut replayer = SessionReplayer::new(&log);
        let mut in_flight: Vec<u64> = Vec::new();
        let mut prefixes: std::collections::HashMap<u64, usize> = Default::default();
        // Alternate sends and acks pseudo-randomly; prefixes must grow by
        // exactly one per dispatch and never overlap in flight.
        let mut rng_state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        loop {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let send = rng_state % 3 != 0;
            if send {
                match replayer.next_request() {
                    Some(req) => {
                        prop_assert!(!in_flight.contains(&req.session));
                        let prev = prefixes.insert(req.session, req.items.len());
                        prop_assert_eq!(req.items.len(), prev.unwrap_or(0) + 1);
                        in_flight.push(req.session);
                    }
                    None if in_flight.is_empty() && replayer.is_drained() => break,
                    None => {
                        // Nothing dispatchable: ack something.
                        if let Some(s) = in_flight.pop() {
                            if let Some(req) = replayer.acknowledge(s) {
                                prop_assert!(!in_flight.contains(&req.session));
                                let prev = prefixes.insert(req.session, req.items.len());
                                prop_assert_eq!(req.items.len(), prev.unwrap_or(0) + 1);
                                in_flight.push(req.session);
                            }
                        }
                    }
                }
            } else if let Some(s) = in_flight.pop() {
                if let Some(req) = replayer.acknowledge(s) {
                    prop_assert!(!in_flight.contains(&req.session));
                    let prev = prefixes.insert(req.session, req.items.len());
                    prop_assert_eq!(req.items.len(), prev.unwrap_or(0) + 1);
                    in_flight.push(req.session);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn jit_equals_eager_for_random_sessions(
        session in proptest::collection::vec(0u32..300, 1..10),
        kind_idx in 0usize..10,
    ) {
        let kind = ModelKind::ALL[kind_idx];
        let cfg = ModelConfig::new(300).with_max_session_len(10).with_seed(77);
        let model = kind.build(&cfg);
        let eager = traits::recommend_eager(model.as_ref(), &Device::cpu(), &session).unwrap();
        match traits::compile(model.as_ref(), Default::default()) {
            Ok(compiled) => {
                let jit = traits::recommend_compiled(model.as_ref(), &compiled, &session).unwrap();
                prop_assert_eq!(eager.items, jit.items, "{} diverged", kind.name());
            }
            Err(_) => {
                // Only quirky LightSANs may refuse.
                prop_assert_eq!(kind, ModelKind::LightSans);
            }
        }
    }
}
