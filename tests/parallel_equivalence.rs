//! Property-based equivalence tests for the intra-op parallel scan
//! engine: sharded MIPS must be **bit-identical** to the serial
//! reference for every shard count, and inference must stay fully
//! deterministic with the worker pool enabled.
//!
//! Each test asks for a 4-wide pool up front (`configure_threads`); on
//! machines with fewer cores the pool clamps but the sharded code paths
//! still execute, so the equivalence claims are exercised either way.

use etude::models::retrieval::{ExactIndex, MipsIndex, QuantizedIndex, SearchScratch};
use etude::models::{traits, ModelConfig, ModelKind};
use etude::tensor::topk::{topk, topk_into, topk_sharded, TopkScratch};
use etude::tensor::{pool, Device};
use proptest::prelude::*;

/// Turns a raw random vector into an adversarial score vector for heap
/// merges: values quantised to a small grid (lots of exact ties), with
/// occasional NaN / -inf entries steered by `salt`.
fn adversarialize(mut scores: Vec<f32>, salt: u64) -> Vec<f32> {
    for (i, s) in scores.iter_mut().enumerate() {
        *s = (*s * 4.0).round() / 4.0;
        match (salt.wrapping_add(i as u64)).wrapping_mul(2_654_435_761) % 10 {
            0 => *s = f32::NAN,
            1 => *s = f32::NEG_INFINITY,
            _ => {}
        }
    }
    scores
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_topk_is_bit_identical_to_serial(
        raw in proptest::collection::vec(-25.0f32..25.0, 1..600),
        salt in 0u64..1000,
        k in 1usize..40,
        shards in 1usize..=8,
    ) {
        pool::configure_threads(4);
        let scores = adversarialize(raw, salt);
        let (serial_idx, serial_val) = topk(&scores, k);
        let (shard_idx, shard_val) = topk_sharded(&scores, k, shards);
        prop_assert_eq!(&shard_idx, &serial_idx);
        // Bit-identical, not approximately equal: compare the raw bits so
        // NaN payloads and signed zeros cannot hide behind `==`.
        let serial_bits: Vec<u32> = serial_val.iter().map(|v| v.to_bits()).collect();
        let shard_bits: Vec<u32> = shard_val.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(shard_bits, serial_bits);
    }

    #[test]
    fn scratch_topk_matches_serial(
        raw in proptest::collection::vec(-25.0f32..25.0, 1..400),
        salt in 0u64..1000,
        k in 1usize..30,
    ) {
        let scores = adversarialize(raw, salt);
        let mut scratch = TopkScratch::default();
        let (mut idx, mut val) = (Vec::new(), Vec::new());
        topk_into(&scores, k, &mut scratch, &mut idx, &mut val);
        let (eidx, eval) = topk(&scores, k);
        prop_assert_eq!(idx, eidx);
        let eval_bits: Vec<u32> = eval.iter().map(|v| v.to_bits()).collect();
        let val_bits: Vec<u32> = val.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(val_bits, eval_bits);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn pooled_index_search_is_deterministic(seed in 0u64..500, k in 1usize..25) {
        pool::configure_threads(4);
        use rand::{Rng, SeedableRng};
        let (c, d) = (700, 12);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let table: Vec<f32> = (0..c * d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let query: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();

        let exact = ExactIndex::new(table.clone(), c, d);
        let quant = QuantizedIndex::from_f32(&table, c, d);
        let mut scratch = SearchScratch::default();
        let (mut ids, mut vals) = (Vec::new(), Vec::new());

        let exact_ref = exact.search(&query, k);
        let quant_ref = quant.search(&query, k);
        // Re-running through pooled scoring + scratch reuse must reproduce
        // the exact same ranking and scores every time.
        for _ in 0..3 {
            exact.search_into(&query, k, &mut scratch, &mut ids, &mut vals);
            prop_assert_eq!(&ids, &exact_ref.0);
            prop_assert_eq!(&vals, &exact_ref.1);
            quant.search_into(&query, k, &mut scratch, &mut ids, &mut vals);
            prop_assert_eq!(&ids, &quant_ref.0);
            prop_assert_eq!(&vals, &quant_ref.1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn same_seed_same_recommendation_with_pool_enabled(
        session in proptest::collection::vec(0u32..400, 1..8),
        kind_idx in 0usize..10,
        seed in 0u64..100,
    ) {
        pool::configure_threads(4);
        let kind = ModelKind::ALL[kind_idx];
        let cfg = ModelConfig::new(400).with_max_session_len(8).with_seed(seed);
        // Two independently built models from the same seed must agree
        // item-for-item and score-for-score: the pool must not introduce
        // any run-to-run nondeterminism.
        let a = kind.build(&cfg);
        let b = kind.build(&cfg);
        let ra = traits::recommend_eager(a.as_ref(), &Device::cpu(), &session).unwrap();
        let rb = traits::recommend_eager(b.as_ref(), &Device::cpu(), &session).unwrap();
        prop_assert_eq!(&ra.items, &rb.items, "{} nondeterministic", kind.name());
        let sa: Vec<u32> = ra.scores.iter().map(|v| v.to_bits()).collect();
        let sb: Vec<u32> = rb.scores.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(sa, sb);
    }
}
