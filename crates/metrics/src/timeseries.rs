//! Per-tick time series of latency and errors.
//!
//! The load generator operates in one-second ticks (Algorithm 2); the
//! figures of the paper plot per-tick p90 latency, attempted/achieved
//! throughput and error counts against time as the load ramps up. A
//! [`TimeSeries`] keeps one histogram per tick.

use crate::hdr::Histogram;
use crate::summary::LatencySummary;
use std::time::Duration;

/// Measurements of a single one-second tick.
#[derive(Debug, Clone)]
pub struct TickStats {
    /// Tick index (seconds since the run started).
    pub tick: u64,
    /// Requests sent during the tick.
    pub sent: u64,
    /// Successful responses received during the tick.
    pub ok: u64,
    /// Errors (timeouts, HTTP 5xx, connection failures) during the tick.
    pub errors: u64,
    /// Latency histogram of responses completing in this tick.
    pub latency: Histogram,
}

impl TickStats {
    fn new(tick: u64) -> TickStats {
        TickStats {
            tick,
            sent: 0,
            ok: 0,
            errors: 0,
            latency: Histogram::new(),
        }
    }
}

/// A growable sequence of per-tick statistics.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    ticks: Vec<TickStats>,
}

impl TimeSeries {
    /// Creates an empty time series.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    fn tick_mut(&mut self, tick: u64) -> &mut TickStats {
        while self.ticks.len() <= tick as usize {
            let idx = self.ticks.len() as u64;
            self.ticks.push(TickStats::new(idx));
        }
        &mut self.ticks[tick as usize]
    }

    /// Records a request sent at `tick`.
    pub fn record_sent(&mut self, tick: u64) {
        self.tick_mut(tick).sent += 1;
    }

    /// Records a successful response completing at `tick`.
    pub fn record_ok(&mut self, tick: u64, latency: Duration) {
        let t = self.tick_mut(tick);
        t.ok += 1;
        t.latency.record_duration(latency);
    }

    /// Records a failed response completing at `tick`.
    pub fn record_error(&mut self, tick: u64) {
        self.tick_mut(tick).errors += 1;
    }

    /// All ticks in order.
    pub fn ticks(&self) -> &[TickStats] {
        &self.ticks
    }

    /// Total error count.
    pub fn total_errors(&self) -> u64 {
        self.ticks.iter().map(|t| t.errors).sum()
    }

    /// Total success count.
    pub fn total_ok(&self) -> u64 {
        self.ticks.iter().map(|t| t.ok).sum()
    }

    /// Merges all ticks into one histogram.
    pub fn merged_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for t in &self.ticks {
            h.merge(&t.latency);
        }
        h
    }

    /// Summary over the whole series.
    pub fn summary(&self) -> LatencySummary {
        let h = self.merged_histogram();
        let window = Duration::from_secs(self.ticks.len().max(1) as u64);
        LatencySummary::from_histogram(&h, self.total_errors(), window)
    }

    /// Summary over the tick range `[start, end)`.
    pub fn window_summary(&self, start: usize, end: usize) -> LatencySummary {
        let end = end.min(self.ticks.len());
        let start = start.min(end);
        let mut h = Histogram::new();
        let mut errors = 0;
        for t in &self.ticks[start..end] {
            h.merge(&t.latency);
            errors += t.errors;
        }
        let window = Duration::from_secs((end - start).max(1) as u64);
        LatencySummary::from_histogram(&h, errors, window)
    }

    /// Summary over the last `n` *complete* ticks, excluding the final
    /// tick of the series (usually partial: it only holds response
    /// stragglers). This is the steady-state window Table I feasibility
    /// uses.
    pub fn tail_summary(&self, n: usize) -> LatencySummary {
        let end = self.ticks.len().saturating_sub(1).max(1);
        let start = end.saturating_sub(n);
        self.window_summary(start, end)
    }

    /// Per-tick `(tick, attempted_rps, achieved_rps, p90, errors)` rows
    /// for figure rendering.
    pub fn rows(&self) -> Vec<(u64, u64, u64, Duration, u64)> {
        self.ticks
            .iter()
            .map(|t| {
                (
                    t.tick,
                    t.sent,
                    t.ok,
                    Duration::from_micros(t.latency.p90()),
                    t.errors,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_created_on_demand() {
        let mut ts = TimeSeries::new();
        ts.record_ok(5, Duration::from_millis(10));
        assert_eq!(ts.ticks().len(), 6);
        assert_eq!(ts.ticks()[5].ok, 1);
        assert_eq!(ts.ticks()[0].ok, 0);
    }

    #[test]
    fn totals_accumulate() {
        let mut ts = TimeSeries::new();
        ts.record_sent(0);
        ts.record_sent(0);
        ts.record_ok(0, Duration::from_millis(1));
        ts.record_error(1);
        assert_eq!(ts.total_ok(), 1);
        assert_eq!(ts.total_errors(), 1);
        assert_eq!(ts.ticks()[0].sent, 2);
    }

    #[test]
    fn tail_summary_ignores_warmup_and_trailing_partial_tick() {
        let mut ts = TimeSeries::new();
        // Warmup tick with awful latency, two fast steady ticks, then a
        // partial final tick holding only response stragglers.
        ts.record_ok(0, Duration::from_secs(2));
        ts.record_ok(1, Duration::from_millis(5));
        ts.record_ok(2, Duration::from_millis(6));
        ts.record_ok(3, Duration::from_secs(1));
        let tail = ts.tail_summary(2);
        assert!(tail.p90 < Duration::from_millis(50), "{:?}", tail.p90);
        let all = ts.summary();
        assert!(all.max >= Duration::from_secs(2));
    }

    #[test]
    fn window_summary_selects_exact_ticks() {
        let mut ts = TimeSeries::new();
        ts.record_ok(0, Duration::from_millis(1));
        ts.record_ok(1, Duration::from_millis(100));
        ts.record_ok(2, Duration::from_millis(1));
        let w = ts.window_summary(1, 2);
        assert_eq!(w.count, 1);
        assert!(w.p90 >= Duration::from_millis(99));
    }

    #[test]
    fn rows_surface_per_tick_p90() {
        let mut ts = TimeSeries::new();
        for _ in 0..10 {
            ts.record_ok(0, Duration::from_millis(10));
        }
        let rows = ts.rows();
        assert_eq!(rows.len(), 1);
        let (tick, _sent, ok, p90, errors) = rows[0];
        assert_eq!(tick, 0);
        assert_eq!(ok, 10);
        assert_eq!(errors, 0);
        assert!(p90 >= Duration::from_millis(9) && p90 <= Duration::from_millis(11));
    }
}
