//! An HDR-style (high dynamic range) latency histogram.
//!
//! Values are recorded in microseconds into logarithmically organised
//! buckets with bounded relative error (~1.5% with 64 sub-buckets per
//! octave), covering 1 µs to ~1 hour. Recording is O(1) and allocation
//! free; quantile queries walk the bucket array once. This mirrors what
//! HdrHistogram provides to real load generators (the paper's Java
//! implementation uses the equivalent), without the external dependency.

use std::time::Duration;

const SUB_BUCKET_BITS: u32 = 6; // 64 sub-buckets per power of two
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
const OCTAVES: usize = 32; // covers 2^32 µs ~ 71 minutes

/// A fixed-size log-bucketed histogram of microsecond values.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
    min: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; OCTAVES * SUB_BUCKETS],
            total: 0,
            max: 0,
            min: u64::MAX,
            sum: 0,
        }
    }

    fn index_for(value: u64) -> usize {
        let v = value.max(1);
        let octave = (63 - v.leading_zeros()) as usize;
        if octave < SUB_BUCKET_BITS as usize {
            // Small values are exact (first SUB_BUCKETS slots).
            return v as usize;
        }
        let shift = octave as u32 - SUB_BUCKET_BITS;
        let sub = ((v >> shift) as usize) & (SUB_BUCKETS - 1);
        let bucket = octave - SUB_BUCKET_BITS as usize + 1;
        (bucket * SUB_BUCKETS + sub).min(OCTAVES * SUB_BUCKETS - 1)
    }

    fn value_for(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let bucket = index / SUB_BUCKETS;
        let sub = index % SUB_BUCKETS;
        let shift = (bucket - 1) as u32;
        ((SUB_BUCKETS + sub) as u64) << shift
    }

    /// Records one microsecond value.
    pub fn record(&mut self, micros: u64) {
        let idx = Self::index_for(micros);
        self.counts[idx] += 1;
        self.total += 1;
        self.max = self.max.max(micros);
        self.min = self.min.min(micros);
        self.sum += micros as u128;
    }

    /// Records a duration (converted to microseconds).
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded value (exact, not bucketed).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]` (e.g. `0.9` for p90), with the
    /// histogram's relative error. Returns 0 on an empty histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        if rank >= self.total {
            return self.max; // p100 is exact by construction
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                // Clamp to observed extremes so p100 == max.
                return Self::value_for(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// p50 convenience accessor (microseconds).
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }

    /// p90 convenience accessor (microseconds) — the paper's headline
    /// latency quantile.
    pub fn p90(&self) -> u64 {
        self.value_at_quantile(0.90)
    }

    /// p99 convenience accessor (microseconds).
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// Recorded values strictly greater than `micros`, up to bucket
    /// resolution: a value sharing `micros`'s bucket is not counted, so
    /// the answer is deterministic and identical for any two histograms
    /// with the same bucket counts.
    pub fn count_above(&self, micros: u64) -> u64 {
        let cutoff = Self::index_for(micros);
        self.counts[cutoff + 1..].iter().sum()
    }

    /// Iterates the non-empty buckets as `(bucket index, count)` pairs —
    /// the sparse wire representation used by the fleet aggregator.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
    }

    /// Adds `count` observations into bucket `index`, reconstructing
    /// total/min/max/sum from the bucket's nominal value. Out-of-range
    /// indices are ignored.
    pub fn add_bucket(&mut self, index: u32, count: u64) {
        let idx = index as usize;
        if idx >= self.counts.len() || count == 0 {
            return;
        }
        let value = Self::value_for(idx);
        self.counts[idx] += count;
        self.total += count;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
        self.sum += value as u128 * count as u128;
    }

    /// Rebuilds a histogram from sparse `(bucket index, count)` pairs.
    ///
    /// Min/max/sum are reconstructed from bucket nominal values, so two
    /// histograms built from the same pairs are identical regardless of
    /// where the pairs came from — the property the fleet merge's
    /// bit-identity check rests on.
    pub fn from_sparse(pairs: &[(u32, u64)]) -> Histogram {
        let mut h = Histogram::new();
        for &(index, count) in pairs {
            h.add_bucket(index, count);
        }
        h
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.max = self.max.max(other.max);
            self.min = self.min.min(other.min);
        }
    }

    /// Clears all recorded values.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.max = 0;
        self.min = u64::MAX;
        self.sum = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 10, 42, 63] {
            h.record(v);
        }
        assert_eq!(h.value_at_quantile(0.0), 1);
        assert_eq!(h.max(), 63);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn quantiles_match_exact_computation_within_error() {
        let mut h = Histogram::new();
        let values: Vec<u64> = (1..=10_000).collect();
        for &v in &values {
            h.record(v);
        }
        for &q in &[0.5, 0.9, 0.99, 0.999] {
            let exact = values[((q * values.len() as f64).ceil() as usize - 1).min(9999)];
            let est = h.value_at_quantile(q);
            let rel = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(rel < 0.02, "q={q}: exact {exact}, est {est}");
        }
    }

    #[test]
    fn p100_equals_max() {
        let mut h = Histogram::new();
        for v in [5u64, 100, 90_000, 1_234_567] {
            h.record(v);
        }
        assert_eq!(h.value_at_quantile(1.0), 1_234_567);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.p90(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        a.record(10);
        a.record(20);
        let mut b = Histogram::new();
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 1_000_000);
        assert_eq!(a.min(), 10);
    }

    #[test]
    fn record_duration_uses_micros() {
        let mut h = Histogram::new();
        h.record_duration(Duration::from_millis(50));
        assert_eq!(h.max(), 50_000);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert!((h.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert!(h.value_at_quantile(1.0) > 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut h = Histogram::new();
        h.record(42);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.p90(), 0);
    }

    #[test]
    fn count_above_matches_bucketed_tail() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 50_000] {
            h.record(v);
        }
        assert_eq!(h.count_above(40), 1, "only the 50ms outlier is above");
        assert_eq!(h.count_above(9), 5, "every recorded value exceeds 9");
        assert_eq!(h.count_above(1_000_000), 0);
    }

    #[test]
    fn sparse_roundtrip_is_bit_identical() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 63, 64, 100, 9_999, 123_456, 123_457] {
            h.record(v);
        }
        let pairs: Vec<(u32, u64)> = h.nonzero_buckets().collect();
        let rebuilt = Histogram::from_sparse(&pairs);
        assert_eq!(rebuilt.count(), h.count());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            // Quantiles are pure functions of the bucket counts (clamped
            // to reconstructed extremes), so they must agree exactly.
            assert_eq!(
                rebuilt.value_at_quantile(q),
                Histogram::from_sparse(&pairs).value_at_quantile(q)
            );
        }
    }

    #[test]
    fn sparse_merge_is_order_independent() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..500u64 {
            a.record(v * 3);
            b.record(v * 7);
        }
        let pa: Vec<(u32, u64)> = a.nonzero_buckets().collect();
        let pb: Vec<(u32, u64)> = b.nonzero_buckets().collect();
        let mut ab = Histogram::from_sparse(&pa);
        for &(i, c) in &pb {
            ab.add_bucket(i, c);
        }
        let mut ba = Histogram::from_sparse(&pb);
        for &(i, c) in &pa {
            ba.add_bucket(i, c);
        }
        assert_eq!(ab.count(), ba.count());
        assert_eq!(ab.p50(), ba.p50());
        assert_eq!(ab.p99(), ba.p99());
        assert_eq!(ab.min(), ba.min());
        assert_eq!(ab.max(), ba.max());
        assert_eq!(ab.mean(), ba.mean());
    }

    #[test]
    fn bucket_roundtrip_error_is_bounded() {
        for v in [1u64, 63, 64, 100, 1_000, 123_456, 10_000_000] {
            let idx = Histogram::index_for(v);
            let back = Histogram::value_for(idx);
            let rel = (v as f64 - back as f64).abs() / v as f64;
            assert!(rel <= 1.0 / 64.0 + 1e-9, "v={v} back={back}");
        }
    }
}
