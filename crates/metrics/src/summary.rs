//! Latency/throughput summaries of a benchmark run.

use crate::hdr::Histogram;
use std::time::Duration;

/// Aggregated outcome of a load test: latency quantiles, error counts and
/// achieved throughput — the row format of the paper's result tables.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Successful responses.
    pub count: u64,
    /// Failed responses (timeouts, HTTP errors, connection errors).
    pub errors: u64,
    /// Median latency.
    pub p50: Duration,
    /// 90th-percentile latency — the paper's feasibility quantile.
    pub p90: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Maximum observed latency.
    pub max: Duration,
    /// Mean latency.
    pub mean: Duration,
    /// Achieved throughput over the measurement window (successes/s).
    pub throughput: f64,
}

impl LatencySummary {
    /// Builds a summary from a histogram, an error count and the wall
    /// duration of the measurement window.
    pub fn from_histogram(hist: &Histogram, errors: u64, window: Duration) -> LatencySummary {
        let micros = |v: u64| Duration::from_micros(v);
        let secs = window.as_secs_f64();
        LatencySummary {
            count: hist.count(),
            errors,
            p50: micros(hist.p50()),
            p90: micros(hist.p90()),
            p99: micros(hist.p99()),
            max: micros(hist.max()),
            mean: Duration::from_secs_f64(hist.mean() / 1e6),
            throughput: if secs > 0.0 {
                hist.count() as f64 / secs
            } else {
                0.0
            },
        }
    }

    /// The paper's Table I feasibility criterion: p90 within `threshold`
    /// and an error rate below 1%.
    pub fn meets_slo(&self, threshold: Duration) -> bool {
        let total = self.count + self.errors;
        if total == 0 {
            return false;
        }
        let error_rate = self.errors as f64 / total as f64;
        self.p90 <= threshold && error_rate < 0.01
    }

    /// Error rate in `[0, 1]`.
    pub fn error_rate(&self) -> f64 {
        let total = self.count + self.errors;
        if total == 0 {
            0.0
        } else {
            self.errors as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_with(values: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn summary_reports_quantiles_and_throughput() {
        let h = hist_with(&(1..=1000).map(|i| i * 100).collect::<Vec<_>>());
        let s = LatencySummary::from_histogram(&h, 5, Duration::from_secs(10));
        assert_eq!(s.count, 1000);
        assert_eq!(s.errors, 5);
        assert!((s.throughput - 100.0).abs() < 1e-9);
        assert!(s.p90 >= s.p50);
        assert!(s.p99 >= s.p90);
        assert!(s.max >= s.p99);
    }

    #[test]
    fn slo_check_uses_p90_and_error_rate() {
        let h = hist_with(&[10_000, 20_000, 30_000]); // 10-30 ms
        let ok = LatencySummary::from_histogram(&h, 0, Duration::from_secs(1));
        assert!(ok.meets_slo(Duration::from_millis(50)));
        assert!(!ok.meets_slo(Duration::from_millis(20)));

        let errors = LatencySummary::from_histogram(&h, 1, Duration::from_secs(1));
        // 1 error out of 4 = 25% error rate -> infeasible.
        assert!(!errors.meets_slo(Duration::from_millis(50)));
    }

    #[test]
    fn empty_run_never_meets_slo() {
        let s = LatencySummary::from_histogram(&Histogram::new(), 0, Duration::from_secs(1));
        assert!(!s.meets_slo(Duration::from_secs(1)));
    }
}
