//! Exact percentile computation for small sample sets.
//!
//! The micro-benchmark (Figure 3) sends requests serially and reports the
//! p90 of a few hundred exact measurements — no histogram approximation
//! needed there.

use std::time::Duration;

/// Exact value at quantile `q` (nearest-rank method). Returns `None` for
/// an empty sample set.
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    Some(sorted[rank - 1])
}

/// Exact duration at quantile `q`.
pub fn percentile_duration(samples: &[Duration], q: f64) -> Option<Duration> {
    let micros: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e6).collect();
    percentile(&micros, q).map(|v| Duration::from_secs_f64(v / 1e6))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_semantics() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 0.90), Some(90.0));
        assert_eq!(percentile(&xs, 0.50), Some(50.0));
        assert_eq!(percentile(&xs, 1.0), Some(100.0));
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(percentile(&[], 0.9), None);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&xs, 0.5), Some(3.0));
    }

    #[test]
    fn durations_roundtrip() {
        let ds = [
            Duration::from_millis(10),
            Duration::from_millis(30),
            Duration::from_millis(20),
        ];
        let p = percentile_duration(&ds, 1.0).unwrap();
        assert!((p.as_secs_f64() - 0.030).abs() < 1e-9);
    }
}
