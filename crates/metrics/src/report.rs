//! Plain-text table and CSV rendering for benchmark reports.
//!
//! The benchmark binaries print the paper's tables/figure series as
//! aligned text tables and optionally write CSV files next to them, so
//! EXPERIMENTS.md can quote paper-vs-measured numbers directly.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;
use std::time::Duration;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity; extra cells are kept,
    /// missing cells rendered empty).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&mut widths, &self.header);
        for row in &self.rows {
            measure(&mut widths, row);
        }
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            for (i, width) in widths.iter().enumerate().take(cols) {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{:<width$}  ", cell, width = width);
            }
            out.truncate(out.trim_end().len());
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (naive quoting: commas in cells are
    /// replaced with semicolons — report cells never need full RFC 4180).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| s.replace(',', ";");
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            let joined: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&joined.join(","));
            out.push('\n');
        };
        line(&self.header, &mut out);
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Writes the CSV rendering to a file, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a duration as adaptive human-readable text (µs/ms/s).
pub fn fmt_duration(d: Duration) -> String {
    let micros = d.as_micros();
    if micros < 1_000 {
        format!("{micros}us")
    } else if micros < 1_000_000 {
        format!("{:.2}ms", micros as f64 / 1_000.0)
    } else {
        format!("{:.2}s", micros as f64 / 1_000_000.0)
    }
}

/// Formats a monthly cost in dollars, paper style (`$1,343`).
pub fn fmt_cost(dollars: f64) -> String {
    let rounded = dollars.round() as i64;
    let s = rounded.abs().to_string();
    let mut grouped = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            grouped.push(',');
        }
        grouped.push(ch);
    }
    format!("${}{}", if rounded < 0 { "-" } else { "" }, grouped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["model", "p90"]);
        t.row(["gru4rec", "1.2ms"]);
        t.row(["sasrec", "900us"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("model"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn csv_roundtrip_structure() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2,5"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2;5\n");
    }

    #[test]
    fn writes_csv_files() {
        let dir = std::env::temp_dir().join("etude_report_test");
        let path = dir.join("out.csv");
        let mut t = Table::new(["x"]);
        t.row(["1"]);
        t.write_csv(&path).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "x\n1\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duration_formatting_is_adaptive() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500us");
        assert_eq!(fmt_duration(Duration::from_millis(42)), "42.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }

    #[test]
    fn cost_formatting_groups_thousands() {
        assert_eq!(fmt_cost(108.09), "$108");
        assert_eq!(fmt_cost(1343.0), "$1,343");
        assert_eq!(fmt_cost(6026.4), "$6,026");
        assert_eq!(fmt_cost(2008.8), "$2,009");
    }
}
