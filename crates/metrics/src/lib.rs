//! # etude-metrics
//!
//! Measurement infrastructure for the benchmarking framework: HDR-style
//! latency histograms ([`hdr::Histogram`]), per-tick time series matching
//! the load generator's one-second ticks ([`timeseries::TimeSeries`]),
//! latency summaries ([`summary::LatencySummary`]) and plain-text/CSV
//! report rendering ([`report`]).
//!
//! The paper reports p90 latencies against ramping throughput (Figures 2
//! and 4) and applies a feasibility threshold of "50 milliseconds in the
//! 90th quantile" (Table I); every number in those artifacts flows through
//! this crate.

pub mod hdr;
pub mod percentile;
pub mod report;
pub mod summary;
pub mod timeseries;

pub use hdr::Histogram;
pub use summary::LatencySummary;
pub use timeseries::{TickStats, TimeSeries};
