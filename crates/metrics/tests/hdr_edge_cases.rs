//! Edge-case coverage for the HDR histogram and the summary built on it.
//!
//! The observability subsystem (`etude-obs`) aggregates every stage span
//! into these histograms, so their behaviour at the extremes — empty,
//! one sample, values past the top bucket, merging across threads — is
//! part of the `/stats` contract.

use etude_metrics::hdr::Histogram;
use etude_metrics::LatencySummary;
use std::time::Duration;

#[test]
fn empty_histogram_quantiles_are_all_zero() {
    let h = Histogram::new();
    for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(h.value_at_quantile(q), 0, "q={q}");
    }
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.count(), 0);
}

#[test]
fn single_sample_summary_reports_that_sample_everywhere() {
    let mut h = Histogram::new();
    h.record(1_500); // 1.5 ms
    let s = LatencySummary::from_histogram(&h, 0, Duration::from_secs(1));
    assert_eq!(s.count, 1);
    // Every quantile of a one-sample distribution is the sample itself
    // (up to bucket resolution, and the extremes are exact).
    assert_eq!(s.max, Duration::from_micros(1_500));
    assert_eq!(s.p99, s.max, "p99 clamps to the observed max");
    assert!(s.p50 <= s.max && s.p50 >= Duration::from_micros(1_450));
    assert_eq!(s.mean, Duration::from_micros(1_500));
    assert!((s.throughput - 1.0).abs() < 1e-9);
}

#[test]
fn values_past_the_top_bucket_saturate_without_losing_count() {
    let mut h = Histogram::new();
    // The bucket array covers ~2^32 µs; these all land in (or clamp to)
    // the last slot but must still be counted and keep max() exact.
    for v in [u64::MAX, u64::MAX - 1, 1 << 40, 1 << 50] {
        h.record(v);
    }
    h.record(10);
    assert_eq!(h.count(), 5);
    assert_eq!(h.max(), u64::MAX, "max is tracked exactly, not bucketed");
    assert_eq!(h.min(), 10);
    assert_eq!(h.value_at_quantile(1.0), u64::MAX);
    // Saturated values may collapse to one bucket, but quantiles stay
    // monotone and within the observed range.
    let p50 = h.value_at_quantile(0.5);
    let p99 = h.value_at_quantile(0.99);
    assert!(p50 <= p99);
    assert!(p50 >= 10, "quantiles stay within the observed range");
}

#[test]
fn merge_is_equivalent_to_recording_the_concatenation() {
    // The recorder merges per-thread histograms; the result must be
    // indistinguishable from one histogram that saw every value.
    let left: Vec<u64> = (1..=500).map(|i| i * 7).collect();
    let right: Vec<u64> = (1..=300).map(|i| i * 13 + 100_000).collect();

    let mut a = Histogram::new();
    for &v in &left {
        a.record(v);
    }
    let mut b = Histogram::new();
    for &v in &right {
        b.record(v);
    }
    a.merge(&b);

    let mut concat = Histogram::new();
    for &v in left.iter().chain(&right) {
        concat.record(v);
    }

    assert_eq!(a.count(), concat.count());
    assert_eq!(a.min(), concat.min());
    assert_eq!(a.max(), concat.max());
    assert!((a.mean() - concat.mean()).abs() < 1e-9);
    for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
        assert_eq!(a.value_at_quantile(q), concat.value_at_quantile(q), "q={q}");
    }
}

#[test]
fn merging_an_empty_histogram_changes_nothing() {
    let mut a = Histogram::new();
    a.record(42);
    let before = (a.count(), a.min(), a.max(), a.p90());
    a.merge(&Histogram::new());
    assert_eq!(before, (a.count(), a.min(), a.max(), a.p90()));

    // And the symmetric case: empty absorbing non-empty.
    let mut empty = Histogram::new();
    empty.merge(&a);
    assert_eq!(empty.count(), 1);
    assert_eq!(empty.min(), 42);
    assert_eq!(empty.max(), 42);
}
