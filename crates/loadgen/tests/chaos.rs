//! Chaos integration tests: seeded fault schedules against the live
//! `rustserver`, exercised through the resilient client.
//!
//! Three claims are checked end to end over real sockets:
//! 1. with retries enabled, a fault window loses zero requests,
//! 2. a seeded chaos run replays with bit-identical retry counts,
//! 3. degraded-mode responses are well-formed and flagged.

use etude_faults::{FaultInjector, FaultKind, FaultPlan, RetryPolicy};
use etude_loadgen::{LoadConfig, RealLoadGen};
use etude_obs::Recorder;
use etude_serve::client::{HttpClient, ResilientClient};
use etude_serve::http::{self, Method, Request, Response};
use etude_serve::rustserver::{
    inject_faults, model_routes_batched_resilient, start, DegradationPolicy, Handler, ServerConfig,
    DEGRADED_HEADER,
};
use etude_workload::{SessionLog, SyntheticWorkload, WorkloadConfig};
use std::sync::Arc;
use std::time::Duration;

fn predictions_handler() -> Handler {
    Arc::new(|req: &Request| {
        if req.method == Method::Post && req.path == "/predictions" {
            Response::ok("1:0.5,2:0.25")
        } else {
            Response::error(404, "no such route")
        }
    })
}

fn small_log(clicks: u64, seed: u64) -> SessionLog {
    SyntheticWorkload::new(WorkloadConfig {
        catalog_size: 100,
        alpha_length: 2.0,
        alpha_clicks: 1.8,
        max_session_len: 20,
        seed,
    })
    .generate(clicks)
}

/// (a) An error-response window at the start of the run makes every
/// prediction fail while it is active; with retries enabled the client
/// rides the window out and not a single request is lost.
#[test]
fn retries_ride_out_a_fault_window_with_zero_loss() {
    let plan = FaultPlan::seeded(21).with_window(
        Duration::ZERO,
        Duration::from_millis(600),
        FaultKind::ErrorResponse {
            prob: 1.0,
            status: 503,
        },
    );
    let injector = FaultInjector::new(plan);
    let recorder = Arc::new(Recorder::new());
    let handler = inject_faults(predictions_handler(), injector.clone(), recorder);
    let server = start(ServerConfig { workers: 2 }, handler).unwrap();

    // Enough retries that a request arriving at t=0 outlasts the whole
    // 600 ms window even when jitter halves every delay:
    // 2.5+5+10+20+25*26 ≈ 690 ms minimum across 30 retries.
    let policy = RetryPolicy {
        base: Duration::from_millis(5),
        cap: Duration::from_millis(50),
        max_retries: 30,
        jitter: 0.5,
    };
    let result = RealLoadGen::run_resilient(
        server.addr(),
        &small_log(2_000, 4),
        LoadConfig {
            target_rps: 50,
            ramp: Duration::from_secs(1),
            duration: Duration::from_secs(2),
            backpressure: true,
            seed: 9,
        },
        4,
        policy,
    )
    .unwrap();
    server.shutdown();

    assert!(
        injector.counters().errors() > 0,
        "the fault window never fired — the test exercised nothing"
    );
    assert_eq!(result.errors, 0, "retries must absorb every injected 503");
    assert_eq!(result.ok, result.sent, "zero lost requests");
    assert!(result.retries > 0, "surviving the window required retries");
}

/// (b) Every fault draw is a pure function of (plan seed, request id),
/// and every backoff delay of (client seed, request id) — so two runs of
/// the same seeded schedule produce identical per-request outcomes and
/// retry counts, even over real sockets.
#[test]
fn seeded_chaos_runs_replay_identical_retry_counts() {
    let run = || {
        let plan = FaultPlan::seeded(77).with_window(
            Duration::ZERO,
            Duration::from_secs(600),
            FaultKind::ErrorResponse {
                prob: 0.4,
                status: 500,
            },
        );
        let injector = FaultInjector::new(plan);
        let recorder = Arc::new(Recorder::new());
        let handler = inject_faults(predictions_handler(), injector.clone(), recorder);
        let server = start(ServerConfig { workers: 2 }, handler).unwrap();
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            max_retries: 2,
            jitter: 0.5,
        };
        let mut client = ResilientClient::new(server.addr(), policy, 5);
        let mut outcomes = Vec::new();
        for i in 0..150u32 {
            let mut req = Request::post("/predictions", http::encode_session(&[1, 2, 3]));
            req.headers
                .insert("x-request-id".into(), format!("chaos-{i}"));
            let out = client
                .request_within(&req, Duration::from_millis(500))
                .unwrap();
            outcomes.push((out.response.status, out.retries));
        }
        let injected = injector.counters().errors();
        server.shutdown();
        (outcomes, injected)
    };

    let (a, faults_a) = run();
    let (b, faults_b) = run();
    assert_eq!(a, b, "same seed, same per-request statuses and retries");
    assert_eq!(faults_a, faults_b, "same number of injected faults");
    let failed = a.iter().filter(|(status, _)| *status == 500).count();
    assert!(
        failed > 30,
        "p=0.4 over 150 ids should fail dozens: {failed}"
    );
    assert!(failed < 120, "...but nowhere near all of them: {failed}");
    // Ids inside an always-on window fail on every attempt, so each
    // failed request spends exactly its full retry allowance.
    assert!(a
        .iter()
        .all(|&(status, retries)| (status == 500) == (retries == 2)));
}

/// (c) Under sustained overload with a degradation policy the server
/// answers from the popularity fallback: well-formed recommendation
/// bodies, flagged with the degraded header, never a 503 — and the
/// `/stats` counters agree with what the clients saw.
#[test]
fn degraded_responses_are_well_formed_and_flagged() {
    use etude_models::{ModelConfig, ModelKind, SbrModel};
    use etude_serve::batching::BatchConfig;
    use etude_tensor::Device;

    const CATALOG: usize = 300_000;
    const TOP_K: usize = 8;

    let cfg = ModelConfig::new(CATALOG)
        .with_max_session_len(8)
        .with_seed(3);
    let model: Arc<dyn SbrModel> = Arc::from(ModelKind::Core.build(&cfg));
    let recorder = Arc::new(Recorder::new());
    let handler = model_routes_batched_resilient(
        model,
        Device::cpu(),
        true,
        BatchConfig {
            max_batch: 1,
            flush_every: Duration::from_millis(1),
            max_queue: 1,
        },
        Arc::clone(&recorder),
        Some(DegradationPolicy {
            enter_after: 1,
            exit_after: 10_000,
            top_k: TOP_K,
        }),
    );
    let server = start(ServerConfig { workers: 8 }, handler).unwrap();
    let addr = server.addr();

    // Eight senders against a serial single-slot batcher grinding
    // ~60 ms MIPS scans. Connects are staggered: the reactor worker
    // owning connection k is still blocked inside inference when
    // connection k+1 arrives, so connections spread across workers and
    // `try_call`s overlap — most find the one-slot queue full.
    let mut handles = Vec::new();
    for t in 0..8u64 {
        handles.push(std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(t * 25));
            let mut client = HttpClient::connect(addr).unwrap();
            let mut seen = Vec::new();
            for i in 0..25 {
                let mut req = Request::post("/predictions", http::encode_session(&[5, 9, 2]));
                req.headers
                    .insert("x-request-id".into(), format!("deg-{t}-{i}"));
                let resp = client.request(&req).unwrap();
                let degraded = resp.headers.contains_key(DEGRADED_HEADER);
                seen.push((
                    resp.status,
                    degraded,
                    String::from_utf8(resp.body.to_vec()).unwrap(),
                ));
            }
            seen
        }));
    }
    let responses: Vec<(u16, bool, String)> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();

    let mut stats_client = HttpClient::connect(addr).unwrap();
    let stats_body = stats_client.request(&Request::get("/stats")).unwrap().body;
    let stats = etude_obs::parse_stats_json(std::str::from_utf8(&stats_body).unwrap()).unwrap();
    server.shutdown();

    let degraded: Vec<&(u16, bool, String)> = responses.iter().filter(|r| r.1).collect();
    let mut by_status = std::collections::BTreeMap::new();
    for r in &responses {
        *by_status.entry(r.0).or_insert(0u32) += 1;
    }
    assert!(
        !degraded.is_empty(),
        "overload never materialised — no degraded responses (statuses: {by_status:?}, stats: {stats:?})",
    );
    assert!(
        responses.iter().all(|r| r.0 == 200),
        "with enter_after=1 every overload is served degraded, never 503"
    );
    for (_, _, body) in &degraded {
        // Well-formed: exactly top_k `item:score` pairs, items in the
        // catalog, scores strictly descending.
        let pairs: Vec<(u32, f32)> = body
            .split(',')
            .map(|pair| {
                let (item, score) = pair.split_once(':').expect("item:score pair");
                (item.parse().unwrap(), score.parse().unwrap())
            })
            .collect();
        assert_eq!(pairs.len(), TOP_K);
        assert!(pairs.iter().all(|&(item, _)| (item as usize) < CATALOG));
        assert!(pairs.windows(2).all(|w| w[0].1 > w[1].1));
    }
    assert_eq!(
        stats.degraded,
        degraded.len() as u64,
        "/stats agrees with the degraded responses the clients saw"
    );
    assert_eq!(stats.shed, 0, "nothing was 503-shed");
}
