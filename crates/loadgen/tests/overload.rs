//! Overload chaos acceptance (DESIGN.md §16): a flash crowd at ~5× the
//! pinned service capacity hits the admission-controlled, brownout-
//! laddered serving tier, and the criticality contract must hold:
//!
//! * **critical-class goodput** — ≥ 99% of `critical` requests get a
//!   200 within the deadline budget, browned out or not;
//! * **no late inference** — no served request's queue wait exceeds its
//!   budget (the PR 8 invariant, extended through admission + ladder);
//! * **priority-ordered refusal** — `shed-first` traffic absorbs ≥ 90%
//!   of all refusals (429s and 503s combined);
//! * **bit-identical replay** — the same spec + seed reproduces the
//!   same arrival schedule and, on a virtual clock, the same admission
//!   decision journal byte for byte.

use etude_control::{AdmissionConfig, AdmissionController, Criticality};
use etude_obs::Recorder;
use etude_serve::http::Request;
use etude_serve::reactor::ReactorConfig;
use etude_serve::{
    overload_routes_with_state, ContinuousConfig, HttpClient, LadderConfig, OverloadConfig,
};
use etude_workload::FlashCrowdSpec;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const C: usize = 256;
const D: usize = 8;
const K: usize = 21;
const QUERY_SEED: u64 = 5;
/// Per-request deadline budget (and the SLO the client holds the
/// server to).
const BUDGET: Duration = Duration::from_millis(300);
/// Pinned per-request service time at the exact rung.
const FLOOR: Duration = Duration::from_millis(4);
const SLOTS: usize = 2;
/// Driver connections and server dispatch threads. Both must exceed the
/// admission limit's operating range, or the closed loop caps server
/// concurrency below the limit and nothing is ever refused. The limit
/// itself is capped *below* the dispatch pool (`MAX_LIMIT <
/// DISPATCH_THREADS`) so blocked admitted requests can never starve the
/// fast paths (429s and fallbacks) of a handler thread.
const DRIVER_THREADS: usize = 64;
const DISPATCH_THREADS: usize = 64;
const MAX_LIMIT: f64 = 32.0;

/// Deterministic embedding table.
fn table() -> Vec<f32> {
    let mut state = 0x51ed_270b_u64;
    (0..C * D)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        })
        .collect()
}

/// The flash crowd: peak rate ≈ 5× the exact-rung capacity
/// (`SLOTS / FLOOR` = 500 req/s), 30/50/20 shed-first/normal/critical.
fn spec() -> FlashCrowdSpec {
    let mut s = FlashCrowdSpec::flash(C, 500.0, 5.0, Duration::from_millis(1200)).with_seed(11);
    s.criticality_mix = [0.3, 0.5, 0.2];
    s.workload.max_session_len = 16;
    s
}

fn overload_config() -> OverloadConfig {
    OverloadConfig {
        batch: ContinuousConfig {
            slots: SLOTS,
            max_queue: 64,
            default_deadline: BUDGET,
        },
        k: K,
        admission: Some(AdmissionConfig {
            max_limit: MAX_LIMIT,
            ..AdmissionConfig::default()
        }),
        ladder: LadderConfig::default(),
        service_floor: FLOOR,
    }
}

/// One driven request's outcome.
struct Outcome {
    criticality: u8,
    status: u16,
    latency: Duration,
}

/// Replays the schedule against a live server from `DRIVER_THREADS`
/// keep-alive connections, each honouring its requests' send offsets.
fn drive(
    addr: std::net::SocketAddr,
    schedule: &[etude_workload::ScheduledRequest],
) -> Vec<Outcome> {
    let outcomes = Mutex::new(Vec::with_capacity(schedule.len()));
    let t0 = Instant::now() + Duration::from_millis(50); // connect slack
    std::thread::scope(|scope| {
        for tid in 0..DRIVER_THREADS {
            let outcomes = &outcomes;
            let slice: Vec<_> = schedule.iter().skip(tid).step_by(DRIVER_THREADS).collect();
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                let mut local = Vec::with_capacity(slice.len());
                for r in slice {
                    let due = t0 + r.at;
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let class = Criticality::ALL[r.criticality as usize];
                    let req = Request::post("/predictions", r.body())
                        .with_header("x-deadline-ms", BUDGET.as_millis().to_string())
                        .with_header(Criticality::HEADER, class.name());
                    let sent = Instant::now();
                    let resp = client.request(&req).expect("keep-alive request");
                    local.push(Outcome {
                        criticality: r.criticality,
                        status: resp.status,
                        latency: sent.elapsed(),
                    });
                }
                outcomes.lock().unwrap().extend(local);
            });
        }
    });
    outcomes.into_inner().unwrap()
}

#[test]
fn flash_crowd_keeps_critical_goodput_and_sheds_in_priority_order() {
    let recorder = Arc::new(Recorder::new());
    let (handler, state) = overload_routes_with_state(
        table(),
        C,
        D,
        QUERY_SEED,
        overload_config(),
        Arc::clone(&recorder),
    );
    let server = etude_serve::reactor::start(
        ReactorConfig {
            dispatch_threads: DISPATCH_THREADS,
            ..ReactorConfig::default()
        },
        handler,
    )
    .unwrap();

    let schedule = spec().schedule();
    assert!(schedule.len() > 1_000, "the crowd must be a crowd");
    let outcomes = drive(server.addr(), &schedule);
    assert_eq!(outcomes.len(), schedule.len());

    // --- critical goodput: ≥ 99% answered 200 within the budget. ---
    let critical: Vec<_> = outcomes.iter().filter(|o| o.criticality == 2).collect();
    assert!(!critical.is_empty());
    let good = critical
        .iter()
        .filter(|o| o.status == 200 && o.latency <= BUDGET)
        .count();
    let non_200 = critical.iter().filter(|o| o.status != 200).count();
    let slow = critical
        .iter()
        .filter(|o| o.status == 200 && o.latency > BUDGET)
        .count();
    assert!(
        good as f64 >= 0.99 * critical.len() as f64,
        "critical goodput {good}/{} below 99% ({non_200} non-200, {slow} past-SLO 200s, \
         slowest {:?})",
        critical.len(),
        critical.iter().map(|o| o.latency).max().unwrap()
    );

    // --- refusals are priority-ordered: shed-first absorbs ≥ 90%. ---
    let mut refusals = [0u64; 3];
    for o in &outcomes {
        if o.status == 429 || o.status == 503 {
            refusals[o.criticality as usize] += 1;
        }
    }
    let total_refused: u64 = refusals.iter().sum();
    assert!(
        total_refused > 0,
        "a 5x flash crowd that refuses nothing is not overloaded"
    );
    assert!(
        refusals[0] as f64 >= 0.9 * total_refused as f64,
        "shed-first must absorb >= 90% of refusals: {refusals:?}"
    );

    // --- the ladder actually engaged, and admission actually learned. ---
    let snap = recorder.snapshot();
    let browned: u64 = snap.brownout.iter().sum();
    assert!(browned > 0, "no browned-out responses under a 5x crowd");
    assert!(snap.refused > 0, "no admission refusals under a 5x crowd");
    let admission = state.admission().expect("admission enabled");
    assert!(
        admission.journal_len() > 0,
        "the AIMD controller never adjusted its limit"
    );

    // --- no inference starts past its budget: every *served* request's
    // queue wait fits inside the deadline (expired entries shed at
    // dequeue instead, extending the PR 8 invariant). ---
    if let Some(queue) = snap.stage("queue") {
        assert!(
            queue.max_us <= BUDGET.as_micros() as u64,
            "a served request waited {}us, past the {}us budget",
            queue.max_us,
            BUDGET.as_micros()
        );
    }
    // And the books balance: every driven request resolved to exactly
    // one of 200 / 429 / 503.
    let resolved = outcomes
        .iter()
        .filter(|o| matches!(o.status, 200 | 429 | 503))
        .count();
    assert_eq!(resolved, outcomes.len(), "unexpected statuses in the mix");

    server.shutdown();
}

/// Deterministic virtual-clock replay of the admission controller over
/// the flash-crowd schedule: a tiny closed-form service model (no
/// threads, no wall clock) feeding `try_acquire`/`release` in arrival
/// order. Returns the rendered decision journal and per-class
/// admit/refuse tallies.
fn simulate(admission_seed: u64) -> (String, [u64; 3], [u64; 3]) {
    let schedule = spec().schedule();
    let controller = AdmissionController::new(AdmissionConfig {
        seed: admission_seed,
        ..AdmissionConfig::default()
    });
    // (completion time, latency), kept sorted by completion time.
    let mut in_service: Vec<(Duration, Duration)> = Vec::new();
    for r in &schedule {
        // Retire everything that finished before this arrival, in
        // completion order — release feeds the AIMD epoch.
        while let Some(&(done, latency)) = in_service.first() {
            if done > r.at {
                break;
            }
            in_service.remove(0);
            controller.release(done, latency);
        }
        let crit = Criticality::ALL[r.criticality as usize];
        if controller.try_acquire(crit) {
            // Service time grows linearly with concurrency: a fixed,
            // seedless stand-in for queueing delay.
            let latency = FLOOR + Duration::from_millis(2) * in_service.len() as u32;
            let done = r.at + latency;
            let pos = in_service.partition_point(|&(d, _)| d <= done);
            in_service.insert(pos, (done, latency));
        }
    }
    for (done, latency) in in_service {
        controller.release(done, latency);
    }
    let admitted = [
        controller.admitted(Criticality::ShedFirst),
        controller.admitted(Criticality::Normal),
        controller.admitted(Criticality::Critical),
    ];
    let refused = [
        controller.refused(Criticality::ShedFirst),
        controller.refused(Criticality::Normal),
        controller.refused(Criticality::Critical),
    ];
    (controller.render_journal(), admitted, refused)
}

#[test]
fn overload_replays_bit_identically_under_a_fixed_seed() {
    // The arrival schedule itself is a pure function of the spec.
    assert_eq!(spec().schedule(), spec().schedule());

    // And so is every admission decision on the virtual clock: journal
    // bytes and per-class tallies are equal across replays...
    let a = simulate(7);
    let b = simulate(7);
    assert_eq!(a.0, b.0, "admission journals diverged across replays");
    assert_eq!((a.1, a.2), (b.1, b.2), "per-class tallies diverged");
    assert!(
        a.2.iter().sum::<u64>() > 0,
        "the sim never refused: not overloaded"
    );

    // ...while a different controller seed perturbs the jittered raise
    // schedule, proving the journal reflects the seed and not a
    // constant trace.
    let c = simulate(8);
    assert_ne!(a.0, c.0, "seeded jitter must show up in the journal");
}
