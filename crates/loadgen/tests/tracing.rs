//! Chaos tracing acceptance: a traced load test under injected faults
//! must reassemble — from client spans and pod span records alone — a
//! complete request tree for ≥ 99% of client-successful requests, and
//! the trees must export as Chrome `trace_event` JSON.

use etude_faults::{FaultInjector, FaultKind, FaultPlan, RetryPolicy};
use etude_loadgen::{LoadConfig, RealLoadGen};
use etude_models::{ModelConfig, ModelKind, SbrModel};
use etude_obs::{Recorder, TraceCollector};
use etude_serve::rustserver::{inject_faults, model_routes_observed, start, ServerConfig};
use etude_tensor::Device;
use etude_workload::{SessionLog, SyntheticWorkload, WorkloadConfig};
use std::sync::Arc;
use std::time::Duration;

fn small_log(clicks: u64, seed: u64) -> SessionLog {
    SyntheticWorkload::new(WorkloadConfig {
        catalog_size: 100,
        alpha_length: 2.0,
        alpha_clicks: 1.8,
        max_session_len: 20,
        seed,
    })
    .generate(clicks)
}

#[test]
fn chaos_run_reassembles_complete_span_trees() {
    // Two fault windows inside the full-rate tick (the 1 s ramp sends
    // almost nothing before t=1s): a hard 503 burst, then a
    // connection-reset patch. Both force retries, so span trees must
    // stitch failed sibling attempts to the one that landed.
    let plan = FaultPlan::seeded(31)
        .with_window(
            Duration::from_millis(1_000),
            Duration::from_millis(1_300),
            FaultKind::ErrorResponse {
                prob: 1.0,
                status: 503,
            },
        )
        .with_window(
            Duration::from_millis(1_600),
            Duration::from_millis(1_800),
            FaultKind::ConnReset { prob: 0.5 },
        );
    let injector = FaultInjector::new(plan);

    let cfg = ModelConfig::new(200).with_max_session_len(8).with_seed(17);
    let model: Arc<dyn SbrModel> = Arc::from(ModelKind::Stamp.build(&cfg));
    let recorder = Arc::new(Recorder::with_pod(0));
    recorder.set_trace_retention(true);
    let handler = inject_faults(
        model_routes_observed(model, Device::cpu(), false, Arc::clone(&recorder)),
        injector.clone(),
        Arc::clone(&recorder),
    );
    let server = start(ServerConfig { workers: 4 }, handler).unwrap();

    let policy = RetryPolicy {
        base: Duration::from_millis(5),
        cap: Duration::from_millis(40),
        max_retries: 30,
        jitter: 0.5,
    };
    let (result, spans) = RealLoadGen::run_traced(
        server.addr(),
        &small_log(2_000, 6),
        LoadConfig {
            target_rps: 50,
            ramp: Duration::from_secs(1),
            duration: Duration::from_secs(2),
            backpressure: true,
            seed: 13,
        },
        4,
        policy,
    )
    .unwrap();
    let pod_spans = recorder.take_traces();
    server.shutdown();

    assert!(
        injector.counters().errors() > 0,
        "no fault ever fired — the chaos exercised nothing"
    );
    assert!(result.ok > 0, "no request succeeded");
    assert_eq!(
        spans.len() as u64,
        result.sent,
        "one client span per request"
    );
    assert!(
        spans.iter().any(|s| s.attempts.len() > 1),
        "riding out the windows must have produced retries"
    );
    assert!(!pod_spans.is_empty(), "pod retained no spans");

    // The acceptance criterion: ≥ 99% of client-successful requests
    // resolve to a complete tree (client span + per-stage pod spans).
    let collector = TraceCollector::assemble(&spans, &pod_spans);
    let fraction = collector.complete_fraction();
    assert!(
        fraction >= 0.99,
        "only {:.4} of successful requests have complete span trees",
        fraction
    );

    // Export lands in results/ so chrome://tracing can load the run.
    let json = collector.to_chrome_json();
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("client (loadgen)"));
    let out_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(out_dir).unwrap();
    std::fs::write(format!("{out_dir}/trace_chaos.json"), &json).unwrap();
}
