//! Shard-loss chaos over real sockets: every pod of one shard group
//! crashes mid-run and later restarts on the same addresses, while a
//! client drives a steady stream of predictions through the router.
//!
//! Acceptance (ISSUE 7 / DESIGN.md §13):
//!
//! * **zero client-visible failures** — every request in the run
//!   answers `200`, including those issued while the group is down;
//! * responses during the loss window are **well-formed** merged top-k
//!   bodies tagged `x-degraded`, and are the *exact* top-k of the
//!   surviving slices;
//! * the router's `/stats` degraded count equals the number of
//!   requests that fell inside the fault window;
//! * the whole run **replays bit-identically**: same seeds, same
//!   crash schedule → the same `(status, degraded, body)` sequence.
//!
//! Determinism strategy: one synchronous client issues requests
//! back-to-back, so request *index* is the run's clock. The
//! [`FaultPlan::shard_loss`] window is expressed on that clock (one
//! virtual millisecond per request) and the test crashes/restarts the
//! group's pods exactly at the window edges — no wall-clock races.

use etude_faults::{FaultPlan, RetryPolicy};
use etude_models::retrieval::{encode_session_query, CatalogShard, MipsIndex};
use etude_obs::Recorder;
use etude_serve::http::{decode_recommendations, encode_recommendations, Request};
use etude_serve::rustserver::{start, start_on, ServerConfig, ServerHandle, DEGRADED_HEADER};
use etude_serve::{router_routes, shard_backend_routes, HttpClient, RouterConfig, ShardTopology};
use std::sync::Arc;
use std::time::Duration;

const C: usize = 400;
const D: usize = 6;
const K: usize = 21;
const QUERY_SEED: u64 = 9;
const REQUESTS: usize = 60;
/// The chaos schedule on the request-index clock: group 1 is down for
/// requests 20..40.
const LOSS_FROM: u64 = 20;
const LOSS_UNTIL: u64 = 40;

/// Deterministic table shared by every run.
fn table() -> Vec<f32> {
    let mut state = 0x5eed_cafe_f00d_0001u64;
    (0..C * D)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        })
        .collect()
}

/// Session for request `i`, derived only from `i` and the seed.
fn session(i: usize, seed: u64) -> String {
    let mut items = Vec::new();
    let mut state = seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    for _ in 0..3 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        items.push((state % C as u64).to_string());
    }
    items.join(",")
}

fn spawn_backend(shard: CatalogShard, pod: u32) -> ServerHandle {
    let handler = shard_backend_routes(shard, C, QUERY_SEED, K, Arc::new(Recorder::with_pod(pod)));
    start(ServerConfig::default(), handler).unwrap()
}

/// One observed response: everything the client can see.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Observed {
    status: u16,
    degraded: Option<String>,
    body: Vec<u8>,
}

/// One full chaos run. Returns the per-request observations and the
/// router's final degraded count.
fn chaos_run(seed: u64) -> (Vec<Observed>, u64) {
    let table = table();
    let mut topo = ShardTopology::partition(C, D, QUERY_SEED, 2);

    // Group 0: two replicas, healthy throughout. Group 1: two replicas
    // that will *both* crash — total slice loss, no failover possible.
    let mut group0 = Vec::new();
    for _ in 0..2 {
        let s = spawn_backend(topo.shard_of(&table, 0), 0);
        topo.groups[0].replicas.push(s.addr());
        group0.push(s);
    }
    let mut group1 = Vec::new();
    for _ in 0..2 {
        let s = spawn_backend(topo.shard_of(&table, 1), 1);
        topo.groups[1].replicas.push(s.addr());
        group1.push(s);
    }
    let group1_addrs = topo.groups[1].replicas.clone();
    let group1_shard = || topo.shard_of(&table, 1);

    let plan = FaultPlan::shard_loss(
        seed,
        Duration::from_millis(LOSS_FROM),
        Duration::from_millis(LOSS_UNTIL),
    );

    let recorder = Arc::new(Recorder::new());
    let config = RouterConfig {
        k: K,
        leg_budget: Duration::from_millis(500),
        policy: RetryPolicy::none(),
        breakers: None,
        hedge: None,
        seed,
        ..RouterConfig::default()
    };
    let router = start(
        ServerConfig::default(),
        router_routes(topo.clone(), config, Arc::clone(&recorder)),
    )
    .unwrap();
    let mut client = HttpClient::connect(router.addr()).unwrap();

    let mut observed = Vec::with_capacity(REQUESTS);
    let mut down = false;
    for i in 0..REQUESTS {
        // The request index is the virtual clock the chaos plan runs on.
        let now = Duration::from_millis(i as u64);
        let crashed = plan.active_at(now).count() > 0;
        if crashed && !down {
            for server in group1.drain(..) {
                server.shutdown();
            }
            down = true;
        }
        if !crashed && down {
            // The window closed: the group restarts on its old
            // addresses, exactly like a pod rescheduled in place.
            for addr in &group1_addrs {
                let handler = shard_backend_routes(
                    group1_shard(),
                    C,
                    QUERY_SEED,
                    K,
                    Arc::new(Recorder::with_pod(1)),
                );
                group1.push(start_on(*addr, ServerConfig::default(), handler).unwrap());
            }
            down = false;
        }

        let resp = client
            .request(&Request::post("/predictions", session(i, seed)))
            .unwrap();
        observed.push(Observed {
            status: resp.status,
            degraded: resp.headers.get(DEGRADED_HEADER).cloned(),
            body: resp.body.to_vec(),
        });
    }

    let degraded_total = recorder.degraded_count();
    router.shutdown();
    for s in group0.into_iter().chain(group1) {
        s.shutdown();
    }
    (observed, degraded_total)
}

#[test]
fn shard_group_loss_is_invisible_except_for_the_degraded_tag() {
    let seed = 2024;
    let (observed, degraded_total) = chaos_run(seed);
    let table = table();
    let topo = ShardTopology::partition(C, D, QUERY_SEED, 2);
    let survivor = topo.shard_of(&table, 0);
    let full = CatalogShard::from_table(&table, D, 0..C);

    assert_eq!(observed.len(), REQUESTS);
    let window = LOSS_FROM..LOSS_UNTIL;
    for (i, o) in observed.iter().enumerate() {
        // Zero client-visible failures, crash window included.
        assert_eq!(o.status, 200, "request {i} failed");
        // Every body is a well-formed recommendation list.
        let (ids, scores) = decode_recommendations(&o.body).unwrap();
        assert_eq!(ids.len(), scores.len());
        assert!(ids.len() <= K);
        assert!(ids.iter().all(|&id| (id as usize) < C));

        let in_window = window.contains(&(i as u64));
        assert_eq!(
            o.degraded.as_deref(),
            in_window.then_some("1"),
            "degraded tag wrong at request {i}"
        );
        // And the body is the exact top-k of whatever was reachable.
        let items: Vec<u32> = session(i, seed)
            .split(',')
            .map(|s| s.parse().unwrap())
            .collect();
        let query = encode_session_query(&items, D, QUERY_SEED);
        let reference = if in_window {
            MipsIndex::search(&survivor, &query, K)
        } else {
            MipsIndex::search(&full, &query, K)
        };
        assert_eq!(
            o.body,
            encode_recommendations(&reference.0, &reference.1).into_bytes(),
            "request {i} body is not the exact reachable top-k"
        );
    }

    // The /stats degraded count matches the fault window exactly.
    assert_eq!(degraded_total, LOSS_UNTIL - LOSS_FROM);
}

#[test]
fn chaos_run_replays_bit_identically() {
    let (first, first_degraded) = chaos_run(77);
    let (second, second_degraded) = chaos_run(77);
    assert_eq!(first, second, "replay diverged");
    assert_eq!(first_degraded, second_degraded);
}
