//! Saturation regression: overload must surface as *shedding*, never as
//! deadline-blowing queue waits.
//!
//! The contract under test is the continuous batcher's dequeue-time
//! admission check: when offered load exceeds capacity, requests whose
//! deadline budget is exhausted in the queue are shed with a 503 before
//! any compute is spent on them. Consequences asserted here, end-to-end
//! through the reactor server at smoke scale:
//!
//! 1. the run sheds (503s observed by the load generator) instead of
//!    serving stale results,
//! 2. the server's own `/stats` shed counter agrees exactly with the
//!    503s the load generator counted — the overload signal operators
//!    alert on is the same one clients experience,
//! 3. the p99 of the `queue` span (recorded only for *served* requests)
//!    stays within the configured deadline budget: nothing that waited
//!    past its budget ever reached inference.

use etude_loadgen::openconn::{run_open_conn, OpenConnConfig};
use etude_models::{ModelConfig, ModelKind};
use etude_obs::Recorder;
use etude_serve::client::HttpClient;
use etude_serve::contbatch::ContinuousConfig;
use etude_serve::http::Request;
use etude_serve::model_routes_continuous;
use etude_serve::reactor::{self, ReactorConfig};
use etude_tensor::Device;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn reactor_sheds_under_smoke_overload_instead_of_blowing_deadlines() {
    let deadline = Duration::from_millis(2);
    // A 10^6-item catalog makes each inference a multi-millisecond
    // full-catalog scan even in release builds — longer than the whole
    // 2 ms budget — so any request that arrives while both slots are
    // busy *must* expire in the queue and shed.
    let cfg = ModelConfig::new(1_000_000)
        .with_max_session_len(8)
        .with_seed(11);
    let model = Arc::from(ModelKind::Core.build(&cfg));
    let recorder = Arc::new(Recorder::new());
    let handler = model_routes_continuous(
        model,
        Device::cpu(),
        false,
        // Two slots, a budget shorter than one inference: the burst
        // below keeps both slots busy, so the queue *will* back up.
        ContinuousConfig {
            slots: 2,
            max_queue: 4096,
            default_deadline: deadline,
        },
        Arc::clone(&recorder),
        None,
    );
    let server = reactor::start(ReactorConfig::default(), handler).unwrap();

    // A short burst, not a sustained ramp: resolution throughput under
    // overload is bounded by the two inference slots, so the request
    // count must be small enough to fully drain within the grace even
    // in contended debug builds (each scan ~20x slower, sibling test
    // binaries sharing the core). 30 requests at 3.3 ms spacing still
    // overdrives two multi-ms slots on any host.
    let load = OpenConnConfig {
        connections: 32,
        rps: 300.0,
        duration: Duration::from_millis(100),
        body: "1,2,3".to_string(),
        drain_grace: Duration::from_secs(60),
        ..OpenConnConfig::default()
    };
    let result = run_open_conn(server.addr(), &load).unwrap();

    assert_eq!(result.errors, 0, "overload must shed cleanly, not error");
    assert_eq!(result.ok + result.shed, result.sent);
    // (1) The server chose to shed rather than serve late.
    assert!(
        result.shed > 0,
        "no sheds at {}x-capacity offered load: deadline admission inert",
        load.rps
    );
    // Some requests still get served: shedding is selective, not outage.
    assert!(result.ok > 0, "server served nothing under overload");

    // (2) `/stats` reports exactly the sheds the load generator saw.
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let stats = client.request(&Request::get("/stats")).unwrap();
    assert_eq!(stats.status, 200);
    let snap = etude_obs::parse_stats_json(std::str::from_utf8(&stats.body).unwrap())
        .expect("unparseable /stats body");
    assert_eq!(
        snap.shed, result.shed,
        "server shed counter diverged from the 503s the client observed"
    );

    // (3) Served requests never waited past their budget: queue p99 is
    // within the deadline (5% slack for HDR bucket quantization).
    let queue = snap
        .stage("queue")
        .expect("no queue spans recorded for served requests");
    let budget_us = deadline.as_micros() as u64;
    assert!(
        queue.p99_us <= budget_us + budget_us / 20,
        "queue p99 {}us exceeds the {}us deadline: requests were served late \
         instead of shed",
        queue.p99_us,
        budget_us
    );

    server.shutdown();
}
