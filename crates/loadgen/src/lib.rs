//! # etude-loadgen
//!
//! The backpressure-aware load generator of the ETUDE paper (Section II,
//! Algorithm 2). It ramps the request rate up to a target throughput `r`
//! over a duration `d`, operating in one-second ticks:
//!
//! * the per-tick rate `r_c` grows proportionally with elapsed time
//!   ([`rampup::timeprop_rampup`]),
//! * requests within a tick are spread evenly (`wait d_t / (r_c - i)`),
//! * an atomic counter of *pending* requests implements backpressure:
//!   when `p >= r_c` the generator pauses instead of piling more load
//!   onto a collapsing server, so experiments degrade gracefully and the
//!   failure threshold of a model is measurable,
//! * session order is preserved: the next click of a session is only sent
//!   once the response to the previous one has arrived.
//!
//! Two drivers share this logic: [`simdriver::SimLoadGen`] runs against
//! the queueing servers of [`etude_serve::simserver`] under virtual time
//! (used for every figure reproduction), and [`driver::RealLoadGen`]
//! fires real HTTP requests at a live [`etude_serve::rustserver`] (used
//! in integration tests and examples).

pub mod driver;
pub mod openconn;
pub mod rampup;
pub mod sessions;
pub mod simdriver;

pub use driver::RealLoadGen;
pub use openconn::{run_open_conn, OpenConnConfig, OpenConnResult};
pub use rampup::timeprop_rampup;
pub use sessions::SessionReplayer;
pub use simdriver::{LoadConfig, LoadTestResult, SimLoadGen};
