//! The `TIMEPROP_RAMPUP` function of Algorithm 2.

use std::time::Duration;

/// Requests/second to attempt during the tick starting at `elapsed`,
/// ramping linearly so the target rate `r` is reached at `d`.
///
/// Always at least 1 (a zero-rate tick would stall the experiment) and
/// capped at `r` once the ramp completes.
pub fn timeprop_rampup(target: u64, ramp: Duration, elapsed: Duration) -> u64 {
    if target == 0 {
        return 0;
    }
    if ramp.is_zero() || elapsed >= ramp {
        return target;
    }
    let fraction = elapsed.as_secs_f64() / ramp.as_secs_f64();
    ((target as f64 * fraction).ceil() as u64).clamp(1, target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramps_linearly_to_target() {
        let d = Duration::from_secs(600);
        assert_eq!(timeprop_rampup(1000, d, Duration::ZERO), 1);
        assert_eq!(timeprop_rampup(1000, d, Duration::from_secs(60)), 100);
        assert_eq!(timeprop_rampup(1000, d, Duration::from_secs(300)), 500);
        assert_eq!(timeprop_rampup(1000, d, Duration::from_secs(600)), 1000);
        assert_eq!(timeprop_rampup(1000, d, Duration::from_secs(900)), 1000);
    }

    #[test]
    fn never_exceeds_target() {
        let d = Duration::from_secs(10);
        for s in 0..30 {
            assert!(timeprop_rampup(250, d, Duration::from_secs(s)) <= 250);
        }
    }

    #[test]
    fn at_least_one_request_per_tick() {
        let d = Duration::from_secs(600);
        assert_eq!(timeprop_rampup(5, d, Duration::from_millis(1)), 1);
    }

    #[test]
    fn zero_ramp_means_instant_target() {
        assert_eq!(timeprop_rampup(100, Duration::ZERO, Duration::ZERO), 100);
    }

    #[test]
    fn zero_target_is_zero() {
        assert_eq!(
            timeprop_rampup(0, Duration::from_secs(1), Duration::ZERO),
            0
        );
    }
}
