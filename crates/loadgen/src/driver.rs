//! Real-time load generation over HTTP.
//!
//! The same Algorithm 2 logic as [`crate::simdriver`], but against a live
//! server over real sockets. Requests are fired asynchronously by handing
//! them to a pool of sender threads, each owning a keep-alive
//! [`HttpClient`] connection; the pending counter is a real atomic.
//! Used by the end-to-end integration tests and the `live_server`
//! example (the figure pipelines use the virtual-time driver instead).

use crate::rampup::timeprop_rampup;
use crate::sessions::SessionReplayer;
use crate::simdriver::{LoadConfig, LoadTestResult};
use crossbeam::channel::{bounded, Receiver, Sender};
use etude_faults::RetryPolicy;
use etude_metrics::hdr::Histogram;
use etude_metrics::TimeSeries;
use etude_obs::ClientSpan;
use etude_serve::client::{ClientError, HttpClient, ResilientClient};
use etude_serve::http::{self, Request};
use parking_lot::Mutex;
use std::net::SocketAddr;

/// Channel payload: `(session id, session-prefix item ids, intended
/// send time)` — the intended time is when the generator *scheduled*
/// the request, before any channel or sender-thread delay, so the
/// corrected latency series can measure from it.
type Job = (u64, Vec<u32>, Instant);
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-request wall-clock budget in resilient mode: every retry of a
/// request fits inside this window, mirroring the plain driver's 2 s
/// socket timeout so both modes write a request off on the same horizon.
const REQUEST_BUDGET: Duration = Duration::from_secs(2);

struct Outcome {
    session: u64,
    intended: Instant,
    sent_at: Instant,
    ok: bool,
    retries: u64,
    degraded: bool,
    span: Option<ClientSpan>,
}

struct SharedState {
    pending: AtomicU64,
    sent: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    retries: AtomicU64,
    degraded: AtomicU64,
    series: Mutex<TimeSeries>,
    corrected: Mutex<Histogram>,
    spans: Mutex<Vec<ClientSpan>>,
    start: Instant,
}

/// The real-time load generator.
pub struct RealLoadGen;

impl RealLoadGen {
    /// Runs Algorithm 2 against a live HTTP server, replaying `log` as
    /// POST `/predictions` requests. `connections` bounds concurrency.
    pub fn run(
        addr: SocketAddr,
        log: &etude_workload::SessionLog,
        config: LoadConfig,
        connections: usize,
    ) -> std::io::Result<LoadTestResult> {
        Ok(Self::run_inner(addr, log, config, connections, None, false)?.0)
    }

    /// Like [`RealLoadGen::run`], but each sender thread drives a
    /// [`ResilientClient`]: transient failures (5xx, timeouts, resets)
    /// are retried under `policy` within a per-request budget, and the
    /// result reports retries spent and degraded responses seen.
    pub fn run_resilient(
        addr: SocketAddr,
        log: &etude_workload::SessionLog,
        config: LoadConfig,
        connections: usize,
        policy: RetryPolicy,
    ) -> std::io::Result<LoadTestResult> {
        Ok(Self::run_inner(addr, log, config, connections, Some(policy), false)?.0)
    }

    /// [`RealLoadGen::run_resilient`] with distributed tracing: every
    /// request carries an `x-trace-ctx` header (retries as sibling
    /// attempt spans), and the returned [`ClientSpan`]s — one per
    /// request, timed against a shared epoch — feed
    /// [`etude_obs::TraceCollector`] together with the pods' retained
    /// span records to reassemble full request trees.
    pub fn run_traced(
        addr: SocketAddr,
        log: &etude_workload::SessionLog,
        config: LoadConfig,
        connections: usize,
        policy: RetryPolicy,
    ) -> std::io::Result<(LoadTestResult, Vec<ClientSpan>)> {
        Self::run_inner(addr, log, config, connections, Some(policy), true)
    }

    fn run_inner(
        addr: SocketAddr,
        log: &etude_workload::SessionLog,
        config: LoadConfig,
        connections: usize,
        policy: Option<RetryPolicy>,
        traced: bool,
    ) -> std::io::Result<(LoadTestResult, Vec<ClientSpan>)> {
        let state = Arc::new(SharedState {
            pending: AtomicU64::new(0),
            sent: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            series: Mutex::new(TimeSeries::new()),
            corrected: Mutex::new(Histogram::new()),
            spans: Mutex::new(Vec::new()),
            start: Instant::now(),
        });
        let (job_tx, job_rx): (Sender<Job>, Receiver<Job>) = bounded(connections.max(1) * 4);
        let (done_tx, done_rx): (Sender<Outcome>, Receiver<Outcome>) = bounded(4096);

        // Sender threads: each owns one connection — a plain keep-alive
        // client, or a retrying resilient client when a policy is given.
        // In traced mode every thread times its spans against the same
        // epoch (the run start), so spans from different threads nest.
        let epoch = traced.then_some(state.start);
        let mut senders = Vec::new();
        for _ in 0..connections.max(1) {
            let rx = job_rx.clone();
            let done = done_tx.clone();
            let policy = policy.clone();
            let seed = config.seed;
            senders.push(std::thread::spawn(move || match policy {
                Some(policy) => sender_resilient(addr, rx, done, policy, seed, epoch),
                None => sender_plain(addr, rx, done),
            }));
        }
        drop(done_tx);

        let mut replayer = SessionReplayer::new(log);
        let mut ready: std::collections::VecDeque<crate::sessions::ReplayRequest> =
            std::collections::VecDeque::new();
        let mut suppressed = 0u64;
        let ticks = config.duration.as_secs();
        for tick in 0..ticks {
            let tick_start = state.start + Duration::from_secs(tick);
            let tick_end = tick_start + Duration::from_secs(1);
            let rate = timeprop_rampup(config.target_rps, config.ramp, Duration::from_secs(tick));
            for i in 0..rate {
                // Backpressure (lines 8-12): wait while p >= r_c.
                while config.backpressure && state.pending.load(Ordering::Relaxed) >= rate {
                    drain_outcomes(&done_rx, &state, &mut replayer, &mut ready);
                    if Instant::now() + Duration::from_millis(1) >= tick_end {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                // Algorithm 2 lines 11-13: when the tick ends (or ends
                // within the next backpressure wait) while p >= r_c, the
                // remaining slots are skipped, never burst-sent.
                if Instant::now() >= tick_end
                    || (config.backpressure && state.pending.load(Ordering::Relaxed) >= rate)
                {
                    suppressed += rate - i;
                    break;
                }
                drain_outcomes(&done_rx, &state, &mut replayer, &mut ready);
                let next = ready.pop_front().or_else(|| replayer.next_request());
                if let Some(req) = next {
                    state.pending.fetch_add(1, Ordering::Relaxed);
                    state.sent.fetch_add(1, Ordering::Relaxed);
                    state.series.lock().record_sent(tick);
                    // The intended send time is *now*, at scheduling:
                    // any channel wait or sender-thread backlog after
                    // this point is latency the user would see.
                    if job_tx
                        .send((req.session, req.items, Instant::now()))
                        .is_err()
                    {
                        break;
                    }
                }
                // Evenly spread the remaining slots over the tick.
                let remaining = tick_end.saturating_duration_since(Instant::now());
                let slots_left = (rate - i).max(1);
                std::thread::sleep(remaining / slots_left as u32);
            }
            // Wait until the next tick boundary.
            let now = Instant::now();
            if now < tick_end {
                std::thread::sleep(tick_end - now);
            }
        }
        drop(job_tx);
        for t in senders {
            let _ = t.join();
        }
        // Drain remaining outcomes.
        while let Ok(outcome) = done_rx.recv_timeout(Duration::from_millis(200)) {
            record_outcome(&state, outcome, &mut replayer, &mut ready);
        }

        // Pull the server's own stage breakdown, if it exposes one. Any
        // failure (no /stats route, connection refused, malformed body)
        // degrades to `None` — scraping must never fail the run itself.
        let server_stages = scrape_server_stats(addr);

        let state = Arc::try_unwrap(state).unwrap_or_else(|_| panic!("threads joined"));
        let result = LoadTestResult {
            series: state.series.into_inner(),
            sent: state.sent.load(Ordering::Relaxed),
            ok: state.ok.load(Ordering::Relaxed),
            errors: state.errors.load(Ordering::Relaxed),
            suppressed,
            retries: state.retries.load(Ordering::Relaxed),
            degraded: state.degraded.load(Ordering::Relaxed),
            server_stages,
            corrected: state.corrected.into_inner(),
            // The real-time driver cannot see inside the server per
            // request, so it carries no per-tick stage attribution.
            attribution: Vec::new(),
            slo: None,
        };
        Ok((result, state.spans.into_inner()))
    }
}

/// The classic sender loop: one keep-alive connection, no retries.
fn sender_plain(addr: SocketAddr, rx: Receiver<Job>, done: Sender<Outcome>) {
    let client = match HttpClient::connect_with_timeout(addr, Duration::from_secs(2)) {
        Ok(c) => c,
        Err(_) => return,
    };
    let mut client = Some(client);
    while let Ok((session, items, intended)) = rx.recv() {
        let sent_at = Instant::now();
        // A timed-out keep-alive connection is desynchronised (its late
        // response would answer the wrong request), so transport failures
        // drop the connection and the next job starts on a fresh one —
        // or fails cleanly when the server is unreachable.
        if client.is_none() {
            client = HttpClient::connect_with_timeout(addr, Duration::from_secs(2)).ok();
        }
        let ok = match client.as_mut() {
            Some(c) => {
                let body = http::encode_session(&items);
                let result = c.request(&Request::post("/predictions", body));
                let ok = matches!(&result, Ok(resp) if resp.status == 200);
                if let Err(ClientError::Timeout | ClientError::Io(_)) = result {
                    client = None;
                }
                ok
            }
            None => false,
        };
        let _ = done.send(Outcome {
            session,
            intended,
            sent_at,
            ok,
            retries: 0,
            degraded: false,
            span: None,
        });
    }
}

/// The resilient sender loop: retries under the policy, within
/// [`REQUEST_BUDGET`] per request. With an `epoch`, every request is
/// traced and its [`ClientSpan`] rides back on the outcome.
fn sender_resilient(
    addr: SocketAddr,
    rx: Receiver<Job>,
    done: Sender<Outcome>,
    policy: RetryPolicy,
    seed: u64,
    epoch: Option<Instant>,
) {
    // Every thread shares the client seed: a request's retry schedule is
    // keyed by `seed ^ hash(request id)`, so it does not depend on which
    // thread happened to pick the job up.
    let mut client = ResilientClient::new(addr, policy, seed).with_attempt_timeout(REQUEST_BUDGET);
    while let Ok((session, items, intended)) = rx.recv() {
        let sent_at = Instant::now();
        let body = http::encode_session(&items);
        let mut req = Request::post("/predictions", body);
        // Deterministic id: a session replays its prefixes in growing
        // order, so (session, prefix length) names the request uniquely.
        req.headers
            .insert("x-request-id".into(), format!("{session}-{}", items.len()));
        let before = client.total_retries();
        let (result, span) = match epoch {
            Some(epoch) => {
                let (r, s) = client.request_traced(&req, REQUEST_BUDGET, epoch);
                (r, Some(s))
            }
            None => (client.request_within(&req, REQUEST_BUDGET), None),
        };
        let (ok, degraded) = match result {
            Ok(out) => (out.response.status == 200, out.degraded),
            Err(_) => (false, false),
        };
        let _ = done.send(Outcome {
            session,
            intended,
            sent_at,
            ok,
            retries: client.total_retries() - before,
            degraded,
            span,
        });
    }
}

/// Fetches and parses the server's `/stats` JSON document.
fn scrape_server_stats(addr: SocketAddr) -> Option<etude_obs::StatsSnapshot> {
    let mut client = HttpClient::connect_with_timeout(addr, Duration::from_secs(2)).ok()?;
    let resp = client.request(&Request::get("/stats")).ok()?;
    if resp.status != 200 {
        return None;
    }
    etude_obs::parse_stats_json(std::str::from_utf8(&resp.body).ok()?)
}

fn drain_outcomes(
    rx: &Receiver<Outcome>,
    state: &SharedState,
    replayer: &mut SessionReplayer,
    ready: &mut std::collections::VecDeque<crate::sessions::ReplayRequest>,
) {
    while let Ok(outcome) = rx.try_recv() {
        record_outcome(state, outcome, replayer, ready);
    }
}

fn record_outcome(
    state: &SharedState,
    outcome: Outcome,
    replayer: &mut SessionReplayer,
    ready: &mut std::collections::VecDeque<crate::sessions::ReplayRequest>,
) {
    state.pending.fetch_sub(1, Ordering::Relaxed);
    state.retries.fetch_add(outcome.retries, Ordering::Relaxed);
    if outcome.degraded {
        state.degraded.fetch_add(1, Ordering::Relaxed);
    }
    let latency = outcome.sent_at.elapsed();
    let tick = state.start.elapsed().as_secs();
    let mut series = state.series.lock();
    if outcome.ok {
        state.ok.fetch_add(1, Ordering::Relaxed);
        series.record_ok(tick, latency);
        // The corrected histogram measures from the intended send time:
        // it includes whatever the generator's own machinery (channel,
        // busy sender threads) added before the request hit the wire.
        state
            .corrected
            .lock()
            .record(outcome.intended.elapsed().as_micros() as u64);
    } else {
        state.errors.fetch_add(1, Ordering::Relaxed);
        series.record_error(tick);
    }
    drop(series);
    if let Some(span) = outcome.span {
        state.spans.lock().push(span);
    }
    if let Some(released) = replayer.acknowledge(outcome.session) {
        ready.push_back(released);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etude_serve::http::{Method, Response};
    use etude_serve::rustserver::{start, Handler, ServerConfig};
    use etude_workload::{SyntheticWorkload, WorkloadConfig};
    use std::sync::Arc as StdArc;

    fn echo_handler() -> Handler {
        StdArc::new(|req: &http::Request| {
            if req.method == Method::Post && req.path == "/predictions" {
                Response::ok("1:0.5")
            } else {
                Response::error(404, "nope")
            }
        })
    }

    #[test]
    fn real_loadgen_drives_a_real_server() {
        let server = start(ServerConfig { workers: 2 }, echo_handler()).unwrap();
        let log = SyntheticWorkload::new(WorkloadConfig {
            catalog_size: 100,
            alpha_length: 2.0,
            alpha_clicks: 1.8,
            max_session_len: 20,
            seed: 1,
        })
        .generate(2_000);
        let result = RealLoadGen::run(
            server.addr(),
            &log,
            LoadConfig {
                target_rps: 200,
                ramp: Duration::from_secs(2),
                duration: Duration::from_secs(3),
                backpressure: true,
                seed: 1,
            },
            4,
        )
        .unwrap();
        assert!(result.ok > 100, "ok {}", result.ok);
        assert_eq!(result.errors, 0);
        let summary = result.summary();
        assert!(
            summary.p90 < Duration::from_millis(100),
            "{:?}",
            summary.p90
        );
        // The echo handler has no /stats route, so no server breakdown.
        assert!(result.server_stages.is_none());
        server.shutdown();
    }

    #[test]
    fn resilient_mode_retries_transient_errors_away() {
        let calls = StdArc::new(AtomicU64::new(0));
        let seen = StdArc::clone(&calls);
        let handler: Handler = StdArc::new(move |req: &http::Request| {
            if req.method == Method::Post && req.path == "/predictions" {
                // Every fourth arrival fails; its retry lands on a
                // different count and goes through.
                if seen.fetch_add(1, Ordering::Relaxed).is_multiple_of(4) {
                    Response::error(500, "transient")
                } else {
                    Response::ok("1:0.5")
                }
            } else {
                Response::error(404, "nope")
            }
        });
        let server = start(ServerConfig { workers: 2 }, handler).unwrap();
        let log = SyntheticWorkload::new(WorkloadConfig {
            catalog_size: 100,
            alpha_length: 2.0,
            alpha_clicks: 1.8,
            max_session_len: 20,
            seed: 3,
        })
        .generate(1_000);
        let result = RealLoadGen::run_resilient(
            server.addr(),
            &log,
            LoadConfig {
                target_rps: 100,
                ramp: Duration::from_secs(1),
                duration: Duration::from_secs(2),
                backpressure: true,
                seed: 3,
            },
            4,
            RetryPolicy::default_chaos(),
        )
        .unwrap();
        assert!(result.ok > 50, "ok {}", result.ok);
        assert_eq!(result.errors, 0, "retries absorb the transient 500s");
        assert!(result.retries > 0, "some requests must have retried");
        assert_eq!(result.degraded, 0);
        server.shutdown();
    }

    #[test]
    fn server_stage_breakdown_is_scraped_from_observed_servers() {
        use etude_models::{ModelConfig, ModelKind, SbrModel};
        use etude_serve::rustserver::model_routes;
        use etude_tensor::Device;

        let cfg = ModelConfig::new(200).with_max_session_len(8).with_seed(3);
        let model: StdArc<dyn SbrModel> = StdArc::from(ModelKind::Core.build(&cfg));
        let handler = model_routes(model, Device::cpu(), true);
        let server = start(ServerConfig { workers: 2 }, handler).unwrap();
        let log = SyntheticWorkload::new(WorkloadConfig {
            catalog_size: 200,
            alpha_length: 2.0,
            alpha_clicks: 1.8,
            max_session_len: 8,
            seed: 2,
        })
        .generate(500);
        let result = RealLoadGen::run(
            server.addr(),
            &log,
            LoadConfig {
                target_rps: 50,
                ramp: Duration::from_secs(1),
                duration: Duration::from_secs(2),
                backpressure: true,
                seed: 2,
            },
            2,
        )
        .unwrap();
        assert!(result.ok > 10, "ok {}", result.ok);
        let stages = result
            .server_stages
            .as_ref()
            .expect("observed server exposes /stats");
        // Every 200 the client saw left a total span server-side; a
        // client-side timeout could leave a span without an ok, so the
        // bounds are [ok, sent] rather than exact.
        assert!(
            stages.requests >= result.ok && stages.requests <= result.sent,
            "server saw {} requests, client ok={} sent={}",
            stages.requests,
            result.ok,
            result.sent
        );
        for name in ["parse", "inference", "topk", "serialize", "total"] {
            let stage = stages.stage(name).unwrap_or_else(|| panic!("{name}"));
            assert_eq!(stage.count, stages.requests, "stage {name}");
        }
        server.shutdown();
    }
}
