//! Algorithm 2 under virtual time.
//!
//! The simulated driver executes the paper's load-generation loop
//! faithfully — tick loop, `TIMEPROP_RAMPUP`, even spreading, 1 ms
//! backpressure waits, session-order preservation — against any
//! [`SimService`] (the Rust server model, the TorchServe model, or a
//! whole simulated cluster deployment).

use crate::rampup::timeprop_rampup;
use crate::sessions::{ReplayRequest, SessionReplayer};
use etude_faults::{FaultInjector, RetryPolicy};
use etude_metrics::hdr::Histogram;
use etude_metrics::{LatencySummary, TimeSeries};
use etude_obs::{SloReport, TickAttribution};
use etude_serve::simserver::{RespondFn, SimService};
use etude_simnet::link::{FaultyLink, Link};
use etude_simnet::{shared, Shared, Sim, SimTime};
use etude_workload::SessionLog;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Duration;

/// How long the simulated client waits for a response before writing a
/// request off as failed (matches the real driver's 2 s socket timeout).
/// A message lost to a drop/partition window costs exactly this.
const SIM_CLIENT_TIMEOUT: Duration = Duration::from_secs(2);

/// Load-generation parameters (Algorithm 2's `r` and `d`).
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Target throughput `r` in requests/second.
    pub target_rps: u64,
    /// Ramp-up duration `d`: the rate reaches `r` at this point.
    pub ramp: Duration,
    /// Total experiment duration (>= ramp; the tail runs at full rate).
    pub duration: Duration,
    /// Backpressure handling (Algorithm 2 lines 8-12). Disabling it
    /// yields a naive open-loop generator — the ablation in
    /// `ablation_backpressure`.
    pub backpressure: bool,
    /// Seed for network jitter.
    pub seed: u64,
}

impl LoadConfig {
    /// The paper's standard setup: ramp to `target` over ten minutes.
    pub fn paper_rampup(target_rps: u64) -> LoadConfig {
        LoadConfig {
            target_rps,
            ramp: Duration::from_secs(600),
            duration: Duration::from_secs(600),
            backpressure: true,
            seed: 7,
        }
    }

    /// A scaled-down ramp for fast experiment iterations: identical shape,
    /// shorter wall time.
    pub fn scaled_rampup(target_rps: u64, seconds: u64) -> LoadConfig {
        LoadConfig {
            target_rps,
            ramp: Duration::from_secs(seconds),
            duration: Duration::from_secs(seconds),
            backpressure: true,
            seed: 7,
        }
    }
}

/// Outcome of a simulated load test.
#[derive(Debug, Clone)]
pub struct LoadTestResult {
    /// Per-tick measurements.
    pub series: TimeSeries,
    /// Requests sent.
    pub sent: u64,
    /// Successful responses.
    pub ok: u64,
    /// Failed responses.
    pub errors: u64,
    /// Send slots skipped by backpressure (never sent).
    pub suppressed: u64,
    /// Retries spent by the resilient client (0 when retries are off).
    /// In virtual-time runs this counts the deterministic-backoff
    /// re-attempts of [`SimLoadGen::run_resilient`].
    pub retries: u64,
    /// Responses served from the server's degraded fallback path.
    pub degraded: u64,
    /// The server's own stage-latency breakdown, scraped from `/stats`
    /// at end of run. `None` when the server exposes no stats endpoint
    /// (or in virtual-time runs, which have no server process).
    pub server_stages: Option<etude_obs::StatsSnapshot>,
    /// Coordinated-omission-corrected latency: each success measured
    /// from its *intended* send time (the slot's position on the ideal
    /// even-spread schedule), not from when the generator actually got
    /// around to sending it. Under backpressure the two diverge — the
    /// per-tick series understates user-visible latency because delayed
    /// sends hide queueing time (see DESIGN.md §10 for the caveat).
    pub corrected: Histogram,
    /// Per-tick latency attribution (compute vs queue vs network, plus
    /// fault-injected errors) — the input the SLO monitor uses to name
    /// a violation's cause. Empty in real-time runs, which cannot see
    /// inside the server per request.
    pub attribution: Vec<TickAttribution>,
    /// SLO burn-rate evaluation, attached by the capacity runner when a
    /// latency target is in force. `None` for plain load tests.
    pub slo: Option<SloReport>,
}

impl LoadTestResult {
    /// Summary over the whole run.
    pub fn summary(&self) -> LatencySummary {
        self.series.summary()
    }

    /// Summary over the last `n` ticks (steady state at the target rate).
    pub fn tail_summary(&self, n: usize) -> LatencySummary {
        self.series.tail_summary(n)
    }
}

struct GenState {
    replayer: SessionReplayer,
    ready: VecDeque<ReplayRequest>,
    pending: u64,
    sent: u64,
    ok: u64,
    errors: u64,
    suppressed: u64,
    series: TimeSeries,
    corrected: Histogram,
    attribution: Vec<TickAttribution>,
    link: FaultyLink,
    config: LoadConfig,
    start: SimTime,
    /// Correlation ids for fault draws: one per message, monotonically
    /// assigned so a seeded fault schedule replays identically. Each
    /// retry attempt is a fresh message with fresh fault draws.
    next_msg_id: u64,
    /// Client-side retry policy; `None` reproduces the plain driver
    /// (every failure is final).
    retry: Option<RetryPolicy>,
    /// Re-attempts spent across the run.
    retries: u64,
}

impl GenState {
    /// Tick index relative to the load test's start.
    fn tick_of(&self, now: SimTime) -> u64 {
        now.since(self.start).as_secs()
    }

    /// The attribution slot for `tick`, growing the (tick-indexed) table
    /// on demand — completions can land past the configured duration
    /// (a timeout fires up to 2 s after the last send).
    fn attr_mut(&mut self, tick: u64) -> &mut TickAttribution {
        let idx = tick as usize;
        while self.attribution.len() <= idx {
            let t = self.attribution.len() as u64;
            self.attribution.push(TickAttribution {
                tick: t,
                ..TickAttribution::default()
            });
        }
        &mut self.attribution[idx]
    }
}

impl GenState {
    fn next_request(&mut self) -> Option<ReplayRequest> {
        self.ready
            .pop_front()
            .or_else(|| self.replayer.next_request())
    }
}

/// Handle to a scheduled load test; collect after the simulation drains.
pub struct LoadGenHandle {
    state: Shared<GenState>,
}

impl LoadGenHandle {
    /// Extracts the result. Call only after `sim.run_to_completion()`.
    pub fn collect(self) -> LoadTestResult {
        let state = Rc::try_unwrap(self.state)
            .unwrap_or_else(|_| panic!("pending events kept state alive"))
            .into_inner();
        LoadTestResult {
            series: state.series,
            sent: state.sent,
            ok: state.ok,
            errors: state.errors,
            suppressed: state.suppressed,
            retries: state.retries,
            degraded: 0,
            server_stages: None,
            corrected: state.corrected,
            attribution: state.attribution,
            slo: None,
        }
    }
}

/// The virtual-time load generator.
pub struct SimLoadGen;

impl SimLoadGen {
    /// Schedules Algorithm 2 into an existing simulation, starting at
    /// `start` (e.g. after a deployment's readiness probes pass).
    pub fn schedule(
        sim: &mut Sim,
        service: Rc<dyn SimService>,
        log: &SessionLog,
        config: LoadConfig,
        start: SimTime,
    ) -> LoadGenHandle {
        Self::schedule_with_faults(sim, service, log, config, start, FaultInjector::calm())
    }

    /// [`SimLoadGen::schedule`] with the client-server network under a
    /// fault injector: latency-spike windows stretch deliveries, drop and
    /// partition windows lose messages (the client times out after
    /// 2 s of virtual time and counts an error). Clone the injector
    /// before passing it to keep a handle on its shared fault counters.
    pub fn schedule_with_faults(
        sim: &mut Sim,
        service: Rc<dyn SimService>,
        log: &SessionLog,
        config: LoadConfig,
        start: SimTime,
        injector: FaultInjector,
    ) -> LoadGenHandle {
        Self::schedule_inner(sim, service, log, config, start, injector, None)
    }

    /// [`SimLoadGen::schedule_with_faults`] with a client-side retry
    /// policy: a failed request (lost message, server error) is
    /// re-attempted after a deterministic exponential backoff
    /// (`base * 2^attempt`, capped) until `max_retries` is spent, and
    /// only the final failure counts as an error. Each re-attempt is a
    /// fresh message with fresh fault draws, so a retry can escape a
    /// drop window that ate the original — the mechanism behind the
    /// zero-client-visible-failure rolling-restart acceptance test.
    pub fn schedule_resilient(
        sim: &mut Sim,
        service: Rc<dyn SimService>,
        log: &SessionLog,
        config: LoadConfig,
        start: SimTime,
        injector: FaultInjector,
        policy: RetryPolicy,
    ) -> LoadGenHandle {
        Self::schedule_inner(sim, service, log, config, start, injector, Some(policy))
    }

    #[allow(clippy::too_many_arguments)]
    fn schedule_inner(
        sim: &mut Sim,
        service: Rc<dyn SimService>,
        log: &SessionLog,
        config: LoadConfig,
        start: SimTime,
        injector: FaultInjector,
        retry: Option<RetryPolicy>,
    ) -> LoadGenHandle {
        let state = shared(GenState {
            replayer: SessionReplayer::new(log),
            ready: VecDeque::new(),
            pending: 0,
            sent: 0,
            ok: 0,
            errors: 0,
            suppressed: 0,
            series: TimeSeries::new(),
            corrected: Histogram::new(),
            attribution: Vec::new(),
            link: FaultyLink::new(Link::cluster(config.seed), injector),
            config: config.clone(),
            start,
            next_msg_id: 0,
            retry,
            retries: 0,
        });

        // Schedule the tick loop (Algorithm 2, line 3).
        let ticks = config.duration.as_secs();
        for t in 0..ticks {
            let state = Rc::clone(&state);
            let service = Rc::clone(&service);
            sim.schedule_at(start.after(Duration::from_secs(t)), move |s| {
                let rate = {
                    let st = state.borrow();
                    timeprop_rampup(st.config.target_rps, st.config.ramp, Duration::from_secs(t))
                };
                let tick_end = {
                    let st = state.borrow();
                    st.start.after(Duration::from_secs(t + 1))
                };
                send_slot(s, state, service, 0, rate, tick_end);
            });
        }
        LoadGenHandle { state }
    }

    /// Runs Algorithm 2 against a service, replaying `log`, in a fresh
    /// simulation.
    pub fn run(
        service: Rc<dyn SimService>,
        log: &SessionLog,
        config: LoadConfig,
    ) -> LoadTestResult {
        let mut sim = Sim::new();
        let handle = Self::schedule(&mut sim, service, log, config, SimTime::ZERO);
        sim.run_to_completion();
        handle.collect()
    }

    /// [`SimLoadGen::run`] with a fault injector on the network path.
    pub fn run_with_faults(
        service: Rc<dyn SimService>,
        log: &SessionLog,
        config: LoadConfig,
        injector: FaultInjector,
    ) -> LoadTestResult {
        let mut sim = Sim::new();
        let handle =
            Self::schedule_with_faults(&mut sim, service, log, config, SimTime::ZERO, injector);
        sim.run_to_completion();
        handle.collect()
    }

    /// [`SimLoadGen::run_with_faults`] with client-side retries, in a
    /// fresh simulation.
    pub fn run_resilient(
        service: Rc<dyn SimService>,
        log: &SessionLog,
        config: LoadConfig,
        injector: FaultInjector,
        policy: RetryPolicy,
    ) -> LoadTestResult {
        let mut sim = Sim::new();
        let handle = Self::schedule_resilient(
            &mut sim,
            service,
            log,
            config,
            SimTime::ZERO,
            injector,
            policy,
        );
        sim.run_to_completion();
        handle.collect()
    }
}

/// One send slot of the request-generation loop (Algorithm 2 lines 6-16).
fn send_slot(
    sim: &mut Sim,
    state: Shared<GenState>,
    service: Rc<dyn SimService>,
    i: u64,
    rate: u64,
    tick_end: SimTime,
) {
    if i >= rate {
        return; // tick complete; the next tick has its own event
    }
    if sim.now() >= tick_end {
        // Slots the tick ran out of time for count as suppressed, exactly
        // like the backpressure path below and the real-time driver.
        state.borrow_mut().suppressed += rate - i;
        return;
    }
    let backpressured = {
        let st = state.borrow();
        st.config.backpressure && st.pending >= rate
    };
    if backpressured {
        // Line 9-12: wait one millisecond, unless the tick is over.
        let retry_at = sim.now().after(Duration::from_millis(1));
        if retry_at >= tick_end {
            let mut st = state.borrow_mut();
            st.suppressed += rate - i;
            return;
        }
        let state2 = Rc::clone(&state);
        let service2 = Rc::clone(&service);
        sim.schedule_at(retry_at, move |s| {
            send_slot(s, state2, service2, i, rate, tick_end);
        });
        return;
    }

    // The slot's *intended* send time on the ideal even-spread schedule:
    // slot i of a rate-r tick belongs at tick_start + i/r. The actual
    // dispatch may run late (backpressure waits, earlier slow slots);
    // measuring from the intended time is the coordinated-omission
    // correction.
    let tick_start = tick_end
        .as_duration()
        .saturating_sub(Duration::from_secs(1));
    let intended =
        SimTime::ZERO.after(tick_start + Duration::from_secs_f64(i as f64 / rate as f64));
    dispatch_one(sim, &state, &service, intended);

    // Line 16: spread remaining requests evenly across the tick.
    let remaining = tick_end.since(sim.now());
    let slots_left = rate - i;
    let gap = Duration::from_secs_f64(remaining.as_secs_f64() / slots_left as f64);
    let state2 = Rc::clone(&state);
    let service2 = Rc::clone(&service);
    sim.schedule_in(gap, move |s| {
        send_slot(s, state2, service2, i + 1, rate, tick_end);
    });
}

/// Sends a single request (Algorithm 2 line 14: SCHEDULE_REQUEST_ASYNC).
///
/// `intended` is the slot's position on the ideal send schedule: the
/// corrected latency histogram measures completions from it, so delays
/// the generator itself introduced (backpressure, late slots) count
/// against the service rather than silently vanishing.
fn dispatch_one(
    sim: &mut Sim,
    state: &Shared<GenState>,
    service: &Rc<dyn SimService>,
    intended: SimTime,
) {
    let session = {
        let mut st = state.borrow_mut();
        let Some(req) = st.next_request() else {
            return; // click log drained
        };
        st.pending += 1;
        st.sent += 1;
        let tick = st.tick_of(sim.now());
        st.series.record_sent(tick);
        req.session
    };
    attempt_one(sim, state, service, intended, sim.now(), session, 0);
}

/// One attempt of one request. `first_sent` is the original dispatch
/// time: latency is always measured from it, so a retried request pays
/// for every failed attempt before it (coordinated-omission honest).
fn attempt_one(
    sim: &mut Sim,
    state: &Shared<GenState>,
    service: &Rc<dyn SimService>,
    intended: SimTime,
    first_sent: SimTime,
    session: u64,
    attempt: u32,
) {
    let sent_at = sim.now();
    let legs = {
        let mut st = state.borrow_mut();
        // Both legs' fault draws are keyed on the message id, so a
        // seeded schedule replays bit-identically; the response leg is
        // only drawn when the request leg survives (one drop per loss).
        let id = st.next_msg_id;
        st.next_msg_id += 1;
        let out = st.link.sample(sent_at, 2 * id);
        let back = match out {
            Some(_) => st.link.sample(sent_at, 2 * id + 1),
            None => None,
        };
        out.map(|o| (o, back))
    };
    let Some((out_delay, back_delay)) = legs else {
        // Request leg dropped: the server never hears it, the client
        // holds its pending slot until the timeout, then retries (or
        // counts an error once the retry budget is spent).
        resolve_failure(
            sim,
            state,
            service,
            intended,
            first_sent,
            session,
            attempt,
            sent_at.after(SIM_CLIENT_TIMEOUT),
            true,
        );
        return;
    };
    let state2 = Rc::clone(state);
    let service2 = Rc::clone(service);
    // Request crosses the pod network, is served, and the response
    // crosses back; only then does the pending counter decrease.
    sim.schedule_in(out_delay, move |s| {
        let respond_service = Rc::clone(&service2);
        let respond: RespondFn = Box::new(move |s2, result| {
            let Some(back_delay) = back_delay else {
                // Response leg dropped: the server did the work, but the
                // client never sees the answer and times out.
                resolve_failure(
                    s2,
                    &state2,
                    &service2,
                    intended,
                    first_sent,
                    session,
                    attempt,
                    sent_at.after(SIM_CLIENT_TIMEOUT),
                    true,
                );
                return;
            };
            let state3 = Rc::clone(&state2);
            let service3 = Rc::clone(&service2);
            s2.schedule_in(back_delay, move |s3| {
                match result {
                    Ok(resp) => {
                        let mut st = state3.borrow_mut();
                        st.pending = st.pending.saturating_sub(1);
                        let tick = st.tick_of(s3.now());
                        st.ok += 1;
                        let total = s3.now().since(first_sent);
                        st.series.record_ok(tick, total);
                        st.corrected
                            .record(s3.now().since(intended).as_micros() as u64);
                        // Attribute the round trip: wire time is the two
                        // sampled legs, compute is what the server
                        // reports, everything left over waited in a
                        // queue somewhere (dispatch, batcher, worker).
                        let network = out_delay + back_delay;
                        let queue = total.saturating_sub(resp.inference + network);
                        let attr = st.attr_mut(tick);
                        attr.compute_us += resp.inference.as_micros() as u64;
                        attr.network_us += network.as_micros() as u64;
                        attr.queue_us += queue.as_micros() as u64;
                        if let Some(released) = st.replayer.acknowledge(session) {
                            st.ready.push_back(released);
                        }
                    }
                    Err(_) => {
                        // The server answered with an error: no timeout
                        // wait, the failure resolves now.
                        let now = s3.now();
                        resolve_failure(
                            s3, &state3, &service3, intended, first_sent, session, attempt, now,
                            false,
                        );
                    }
                }
            });
        });
        respond_service.submit(s, respond);
    });
}

/// Resolves a failed attempt at virtual time `at`: re-attempt after a
/// deterministic exponential backoff while the retry budget lasts,
/// otherwise record the final error and release the session. The
/// pending slot stays occupied throughout (so backpressure sees the
/// stuck request, as it would in real time). `fault` marks losses the
/// network injector caused, for the SLO monitor's attribution.
#[allow(clippy::too_many_arguments)]
fn resolve_failure(
    sim: &mut Sim,
    state: &Shared<GenState>,
    service: &Rc<dyn SimService>,
    intended: SimTime,
    first_sent: SimTime,
    session: u64,
    attempt: u32,
    at: SimTime,
    fault: bool,
) {
    let wait = at.max(sim.now()).since(sim.now());
    let state = Rc::clone(state);
    let service = Rc::clone(service);
    sim.schedule_in(wait, move |s| {
        let backoff = {
            let mut st = state.borrow_mut();
            match &st.retry {
                Some(p) if attempt < p.max_retries => {
                    let delay = p.base.saturating_mul(1 << attempt.min(16)).min(p.cap);
                    st.retries += 1;
                    Some(delay)
                }
                _ => None,
            }
        };
        match backoff {
            Some(delay) => {
                let state2 = Rc::clone(&state);
                let service2 = Rc::clone(&service);
                s.schedule_in(delay, move |s2| {
                    attempt_one(
                        s2,
                        &state2,
                        &service2,
                        intended,
                        first_sent,
                        session,
                        attempt + 1,
                    );
                });
            }
            None => {
                let mut st = state.borrow_mut();
                st.pending = st.pending.saturating_sub(1);
                let tick = st.tick_of(s.now());
                st.errors += 1;
                st.series.record_error(tick);
                if fault {
                    // Lost messages are the network fault injector's
                    // doing — count them so the SLO monitor can
                    // attribute a burn to faults.
                    st.attr_mut(tick).fault_errors += 1;
                }
                if let Some(released) = st.replayer.acknowledge(session) {
                    st.ready.push_back(released);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use etude_serve::simserver::{RustServerConfig, SimRustServer, SimTorchServe};
    use etude_serve::{ServiceProfile, TorchServeProfile};
    use etude_tensor::Device;
    use etude_workload::{SyntheticWorkload, WorkloadConfig};

    fn workload(clicks: u64) -> SessionLog {
        let cfg = WorkloadConfig {
            catalog_size: 10_000,
            alpha_length: 2.0,
            alpha_clicks: 1.8,
            max_session_len: 50,
            seed: 5,
        };
        SyntheticWorkload::new(cfg).generate(clicks)
    }

    #[test]
    fn rust_server_sustains_ramp_without_errors() {
        let profile = ServiceProfile::static_response(&Device::cpu());
        let server = SimRustServer::new(profile, RustServerConfig::cpu(4));
        let result = SimLoadGen::run(
            server,
            &workload(100_000),
            LoadConfig::scaled_rampup(500, 20),
        );
        assert_eq!(result.errors, 0);
        assert!(result.sent > 3_000, "sent {}", result.sent);
        let tail = result.tail_summary(5);
        assert!(tail.p90 < Duration::from_millis(5), "{:?}", tail.p90);
        // The final tick approaches the target rate.
        let rows = result.series.rows();
        let last_sent = rows[rows.len() - 2].1;
        assert!(last_sent >= 400, "last tick sent only {last_sent}");
    }

    #[test]
    fn torchserve_produces_errors_under_ramp() {
        // Figure 2: TorchServe sheds load through its internal timeout —
        // lots of HTTP errors, survivors served slowly.
        let service = ServiceProfile::static_response(&Device::cpu());
        let server = SimTorchServe::new(TorchServeProfile::default(), service);
        let result = SimLoadGen::run(
            server,
            &workload(100_000),
            LoadConfig::scaled_rampup(1_000, 20),
        );
        assert!(result.errors > 100, "errors {}", result.errors);
        let tail = result.tail_summary(5);
        assert!(
            tail.p90 > Duration::from_millis(20),
            "survivors should be slow: {:?}",
            tail.p90
        );
    }

    /// An overloaded Rust server with a heavy CPU model: ~57 ms service
    /// time, no internal timeout — pending requests pile up, which is the
    /// scenario backpressure exists for.
    fn slow_cpu_server() -> Rc<SimRustServer> {
        use etude_models::{ModelConfig, ModelKind};
        let profile = ServiceProfile::build(
            ModelKind::Gru4Rec,
            &ModelConfig::new(1_000_000).without_weights(),
            &Device::cpu(),
            etude_serve::service::ExecutionKind::Jit,
        )
        .unwrap();
        SimRustServer::new(profile, RustServerConfig::cpu(4))
    }

    #[test]
    fn backpressure_limits_pending_load() {
        // With backpressure, the generator sends far fewer requests into
        // a saturated, non-timing-out server than the open-loop variant,
        // and suppression is observable.
        let with_bp = SimLoadGen::run(
            slow_cpu_server(),
            &workload(60_000),
            LoadConfig {
                backpressure: true,
                ..LoadConfig::scaled_rampup(2_000, 10)
            },
        );
        let without_bp = SimLoadGen::run(
            slow_cpu_server(),
            &workload(60_000),
            LoadConfig {
                backpressure: false,
                ..LoadConfig::scaled_rampup(2_000, 10)
            },
        );
        assert!(
            with_bp.sent < without_bp.sent / 2,
            "backpressure {} vs open loop {}",
            with_bp.sent,
            without_bp.sent
        );
        assert!(with_bp.suppressed > 0, "no slots were suppressed");
    }

    #[test]
    fn ramp_is_visible_in_the_time_series() {
        let profile = ServiceProfile::static_response(&Device::cpu());
        let server = SimRustServer::new(profile, RustServerConfig::cpu(4));
        let result = SimLoadGen::run(
            server,
            &workload(50_000),
            LoadConfig::scaled_rampup(300, 10),
        );
        let rows = result.series.rows();
        let early = rows[1].1;
        let late = rows[8].1;
        assert!(
            late > 2 * early,
            "no ramp visible: early {early}, late {late}"
        );
    }

    #[test]
    fn fault_windows_surface_as_deterministic_errors() {
        use etude_faults::{FaultKind, FaultPlan};

        let run = || {
            let profile = ServiceProfile::static_response(&Device::cpu());
            let server = SimRustServer::new(profile, RustServerConfig::cpu(2));
            let plan = FaultPlan::seeded(11).with_window(
                Duration::from_secs(2),
                Duration::from_secs(4),
                FaultKind::Drop { prob: 0.5 },
            );
            let injector = FaultInjector::new(plan);
            let result = SimLoadGen::run_with_faults(
                server,
                &workload(20_000),
                LoadConfig::scaled_rampup(200, 6),
                injector.clone(),
            );
            (result, injector)
        };
        let (a, ia) = run();
        let (b, ib) = run();
        assert!(
            a.errors > 10,
            "drops should surface as errors: {}",
            a.errors
        );
        assert_eq!(
            a.errors,
            ia.counters().drops(),
            "one error per lost message"
        );
        assert_eq!(a.sent, b.sent);
        assert_eq!(a.ok, b.ok);
        assert_eq!(a.errors, b.errors);
        assert_eq!(ia.counters().drops(), ib.counters().drops());
    }

    #[test]
    fn resilient_retries_ride_out_a_drop_window() {
        use etude_faults::{FaultKind, FaultPlan};

        let run = || {
            let profile = ServiceProfile::static_response(&Device::cpu());
            let server = SimRustServer::new(profile, RustServerConfig::cpu(2));
            let plan = FaultPlan::seeded(11).with_window(
                Duration::from_secs(2),
                Duration::from_secs(4),
                FaultKind::Drop { prob: 0.5 },
            );
            let injector = FaultInjector::new(plan);
            let policy = RetryPolicy {
                base: Duration::from_millis(100),
                cap: Duration::from_secs(1),
                max_retries: 4,
                jitter: 0.0,
            };
            SimLoadGen::run_resilient(
                server,
                &workload(20_000),
                LoadConfig::scaled_rampup(200, 6),
                injector,
                policy,
            )
        };
        let a = run();
        // The same drop window that surfaces as errors for the naive
        // client (see the test above) is absorbed by retries: losing
        // five independent coin flips in a row is ~3% per request even
        // inside the window, and every retry re-rolls the link.
        assert!(
            a.retries > 10,
            "retries should absorb the drop window: {}",
            a.retries
        );
        assert!(
            a.errors < a.retries / 4,
            "retries should convert most drops into successes: {} errors, {} retries",
            a.errors,
            a.retries
        );
        // Virtual-time retries stay bit-identical across runs: backoff
        // is deterministic and each attempt draws faults from its own
        // message id.
        let b = run();
        assert_eq!(a.sent, b.sent);
        assert_eq!(a.ok, b.ok);
        assert_eq!(a.errors, b.errors);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.corrected.p99(), b.corrected.p99());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let profile = ServiceProfile::static_response(&Device::cpu());
            let server = SimRustServer::new(profile, RustServerConfig::cpu(2));
            SimLoadGen::run(server, &workload(20_000), LoadConfig::scaled_rampup(200, 5))
        };
        let a = run();
        let b = run();
        assert_eq!(a.sent, b.sent);
        assert_eq!(a.ok, b.ok);
        assert_eq!(a.summary().p90, b.summary().p90);
    }
}
