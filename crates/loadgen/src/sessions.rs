//! Session replay with ordering guarantees.
//!
//! "Our implementation additionally ensures that the load generator
//! respects the order of the sessions, e.g., it will only send the next
//! interaction for a session if a response for the previous interaction
//! was received." (Paper, Section II.)
//!
//! [`SessionReplayer`] turns a click log into a stream of *requests* —
//! each request carries the session prefix up to and including the
//! current click — while blocking a session's next click until its
//! previous response has been acknowledged.

use etude_workload::{Click, SessionLog};
use std::collections::{HashMap, VecDeque};

/// One replayable recommendation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayRequest {
    /// Session this request belongs to.
    pub session: u64,
    /// The session prefix (item ids clicked so far, current click last).
    pub items: Vec<u32>,
}

/// A click-log replayer preserving per-session ordering.
#[derive(Debug)]
pub struct SessionReplayer {
    /// Clicks not yet dispatched, in log order.
    queue: VecDeque<Click>,
    /// Per-session state: accumulated prefix and in-flight flag.
    sessions: HashMap<u64, SessionState>,
    /// Clicks deferred because their session has a request in flight.
    deferred: HashMap<u64, VecDeque<Click>>,
    dispatched: u64,
}

#[derive(Debug, Default)]
struct SessionState {
    prefix: Vec<u32>,
    in_flight: bool,
}

impl SessionReplayer {
    /// Creates a replayer over a click log.
    pub fn new(log: &SessionLog) -> SessionReplayer {
        SessionReplayer {
            queue: log.clicks().iter().copied().collect(),
            sessions: HashMap::new(),
            deferred: HashMap::new(),
            dispatched: 0,
        }
    }

    /// Total requests dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Whether every click has been dispatched.
    pub fn is_drained(&self) -> bool {
        self.queue.is_empty() && self.deferred.values().all(VecDeque::is_empty)
    }

    /// Takes the next dispatchable request, skipping over sessions whose
    /// previous interaction is still in flight (their clicks are parked
    /// and resume on [`SessionReplayer::acknowledge`]).
    pub fn next_request(&mut self) -> Option<ReplayRequest> {
        while let Some(click) = self.queue.pop_front() {
            let state = self.sessions.entry(click.session).or_default();
            if state.in_flight {
                self.deferred
                    .entry(click.session)
                    .or_default()
                    .push_back(click);
                continue;
            }
            return Some(self.dispatch(click));
        }
        None
    }

    fn dispatch(&mut self, click: Click) -> ReplayRequest {
        let state = self.sessions.entry(click.session).or_default();
        state.prefix.push(click.item);
        state.in_flight = true;
        self.dispatched += 1;
        ReplayRequest {
            session: click.session,
            items: state.prefix.clone(),
        }
    }

    /// Acknowledges the response for a session's in-flight request. If a
    /// deferred click exists for the session, it becomes immediately
    /// dispatchable and is returned.
    pub fn acknowledge(&mut self, session: u64) -> Option<ReplayRequest> {
        if let Some(state) = self.sessions.get_mut(&session) {
            state.in_flight = false;
        }
        let next = self
            .deferred
            .get_mut(&session)
            .and_then(|q| q.pop_front())?;
        Some(self.dispatch(next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> SessionLog {
        SessionLog::new(vec![
            Click {
                session: 1,
                item: 10,
                t: 1,
            },
            Click {
                session: 2,
                item: 20,
                t: 2,
            },
            Click {
                session: 1,
                item: 11,
                t: 3,
            },
            Click {
                session: 1,
                item: 12,
                t: 4,
            },
        ])
    }

    #[test]
    fn prefixes_grow_within_a_session() {
        let mut r = SessionReplayer::new(&log());
        let a = r.next_request().unwrap();
        assert_eq!(a.items, vec![10]);
        let b = r.next_request().unwrap();
        assert_eq!(b.items, vec![20]);
        // Session 1's second click is deferred (first still in flight).
        assert!(r.next_request().is_none());
        let c = r.acknowledge(1).unwrap();
        assert_eq!(c.items, vec![10, 11]);
        let d = r.acknowledge(1).unwrap();
        assert_eq!(d.items, vec![10, 11, 12]);
        assert!(r.acknowledge(1).is_none());
        assert!(r.is_drained());
        assert_eq!(r.dispatched(), 4);
    }

    #[test]
    fn ordering_is_preserved_under_slow_responses() {
        let mut r = SessionReplayer::new(&log());
        let _a = r.next_request().unwrap(); // session 1 click 1
        let _b = r.next_request().unwrap(); // session 2 click 1
                                            // No response for session 1 yet: clicks 11, 12 must never appear.
        assert!(r.next_request().is_none());
        assert!(r.next_request().is_none());
        // After the ack, exactly the next click is released.
        let c = r.acknowledge(1).unwrap();
        assert_eq!(c.items.last(), Some(&11));
    }

    #[test]
    fn independent_sessions_interleave_freely() {
        let mut clicks = Vec::new();
        for s in 1..=5u64 {
            clicks.push(Click {
                session: s,
                item: s as u32,
                t: s,
            });
        }
        let mut r = SessionReplayer::new(&SessionLog::new(clicks));
        for _ in 0..5 {
            assert!(r.next_request().is_some());
        }
        assert!(r.is_drained());
    }

    #[test]
    fn acknowledge_unknown_session_is_harmless() {
        let mut r = SessionReplayer::new(&log());
        assert!(r.acknowledge(99).is_none());
    }
}
