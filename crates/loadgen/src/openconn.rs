//! Open-connection load driver: many parked keep-alive connections,
//! a fixed request schedule, coordinated-omission-corrected latency.
//!
//! The saturation question the paper's 1,000 req/s scenario never asks
//! is *how many open connections can the serving tier carry* while
//! still meeting its tail SLO — production session-based recommenders
//! hold tens of thousands of mostly idle keep-alive connections with
//! diurnal traffic. This driver reproduces that shape:
//!
//! * it opens [`OpenConnConfig::connections`] keep-alive connections
//!   up front and holds every one of them open for the whole run,
//! * requests fire on a **fixed intended schedule** (request *i* at
//!   `start + i/rps`), spread round-robin across the pool,
//! * latency is measured **from the intended send time**, not the
//!   actual write: when the server (or a busy connection) delays a
//!   send, the delay counts. This is the standard correction for
//!   coordinated omission — a load generator that waits for slow
//!   responses before sending more will otherwise under-sample
//!   exactly the latencies that matter,
//! * 503 sheds are counted separately (and not folded into the
//!   latency histogram): shedding is the *correct* overload behavior
//!   and is asserted against the server's own `/stats` shed counter.
//!
//! The driver itself is a single thread on the same non-blocking
//! [`Poller`] abstraction the reactor server uses — it must not
//! need a thread per connection any more than the server does.

use bytes::BytesMut;
use etude_metrics::hdr::Histogram;
use etude_obs::{parse_stats_json, StatsSnapshot};
use etude_serve::http::{self, Request};
use etude_serve::reactor::{new_poller, Event, Interest, Poller};
use etude_serve::HttpClient;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

/// Configuration of an open-connection run.
#[derive(Debug, Clone)]
pub struct OpenConnConfig {
    /// Keep-alive connections opened before the first request and held
    /// for the whole run.
    pub connections: usize,
    /// Intended request rate over the whole pool.
    pub rps: f64,
    /// Length of the request schedule.
    pub duration: Duration,
    /// Session payload POSTed to `/predictions` (or any path below).
    pub body: String,
    /// Request path (default `/predictions`).
    pub path: String,
    /// Optional per-request deadline budget, sent as `x-deadline-ms`.
    pub deadline_ms: Option<u64>,
    /// Optional criticality class, sent as `x-criticality`
    /// (`shed-first` | `normal` | `critical`).
    pub criticality: Option<String>,
    /// The first `warmup` scheduled requests are driven (and counted in
    /// `sent`/`ok`/`shed`) but excluded from the latency histogram:
    /// connect bursts, cold caches, and first-inference costs are a
    /// property of startup, not of the steady state under measurement.
    pub warmup: u64,
    /// How long past the schedule end to wait for stragglers before
    /// counting them as errors.
    pub drain_grace: Duration,
}

impl Default for OpenConnConfig {
    fn default() -> Self {
        OpenConnConfig {
            connections: 64,
            rps: 100.0,
            duration: Duration::from_secs(2),
            body: "1,2,3".to_string(),
            path: "/predictions".to_string(),
            deadline_ms: None,
            criticality: None,
            warmup: 0,
            drain_grace: Duration::from_secs(5),
        }
    }
}

/// Outcome of an open-connection run.
#[derive(Debug)]
pub struct OpenConnResult {
    /// Connections actually opened (== configured, or the run failed).
    pub connections: usize,
    /// Requests issued per the schedule.
    pub sent: u64,
    /// 200 responses.
    pub ok: u64,
    /// 503 responses — load the server *chose* to shed.
    pub shed: u64,
    /// 429 responses — admission refusals (retryable, pre-queue), kept
    /// apart from 503 sheds: a refusal never consumed a batch slot.
    pub refused: u64,
    /// 200 responses served *browned out*: the response carried a
    /// non-zero `x-brownout-level` (or an `x-degraded` marker). These
    /// are counted inside `ok` too — brownout is success, just cheaper.
    pub brownout: u64,
    /// Transport failures, non-200/503 statuses, and stragglers that
    /// never answered within the drain grace.
    pub errors: u64,
    /// Coordinated-omission-corrected latency of 200 responses past the
    /// warmup window, in microseconds from *intended* send time.
    pub corrected: Histogram,
    /// Wall-clock of the whole run (connect + schedule + drain).
    pub wall: Duration,
    /// The server's own `/stats` snapshot, scraped once after the
    /// schedule drains. Carries the reactor telemetry block (loop
    /// utilization, dispatch queue wait) into bench reports. `None`
    /// when the target exposes no parseable `/stats` route.
    pub server_stats: Option<StatsSnapshot>,
}

struct ClientConn {
    stream: TcpStream,
    rbuf: BytesMut,
    /// Unwritten request bytes (socket buffer was full).
    wbuf: BytesMut,
    /// Schedule index and intended send time of the in-flight request,
    /// if any.
    in_flight: Option<(u64, Instant)>,
    interest: Interest,
}

/// Runs an open-connection load test against `addr`.
///
/// Callers planning tens of thousands of connections should first call
/// [`etude_serve::reactor::raise_nofile_limit`] and size
/// `config.connections` off the returned limit (two fds per connection
/// when client and server share a process).
pub fn run_open_conn(addr: SocketAddr, config: &OpenConnConfig) -> std::io::Result<OpenConnResult> {
    let started = Instant::now();
    let mut poller = new_poller()?;
    let mut conns = Vec::with_capacity(config.connections);
    for token in 0..config.connections {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        poller.register(stream.as_raw_fd(), token, Interest::READ)?;
        conns.push(ClientConn {
            stream,
            rbuf: BytesMut::new(),
            wbuf: BytesMut::new(),
            in_flight: None,
            interest: Interest::READ,
        });
    }

    // The request template is identical for every send; encode once.
    let mut req = Request::post(&config.path, config.body.clone());
    if let Some(ms) = config.deadline_ms {
        req.headers.insert("x-deadline-ms".into(), ms.to_string());
    }
    if let Some(class) = &config.criticality {
        req.headers.insert("x-criticality".into(), class.clone());
    }
    let wire = req.encode();

    let total: u64 = (config.rps * config.duration.as_secs_f64())
        .round()
        .max(1.0) as u64;
    let gap = Duration::from_secs_f64(1.0 / config.rps.max(1e-9));
    let schedule_start = Instant::now();
    let hard_stop = schedule_start + config.duration + config.drain_grace;

    let mut free: VecDeque<usize> = (0..conns.len()).collect();
    // Schedule entries whose turn has come but that found no free
    // connection: their latency clock is already running.
    let mut backlog: VecDeque<(u64, Instant)> = VecDeque::new();
    let mut next_idx: u64 = 0;

    let mut result = OpenConnResult {
        connections: conns.len(),
        sent: 0,
        ok: 0,
        shed: 0,
        refused: 0,
        brownout: 0,
        errors: 0,
        corrected: Histogram::new(),
        wall: Duration::ZERO,
        server_stats: None,
    };
    let mut outstanding: u64 = 0;
    let mut events: Vec<Event> = Vec::new();
    let mut chunk = [0u8; 4096];

    loop {
        let now = Instant::now();
        // Release everything the schedule says should have been sent.
        while next_idx < total {
            let intended = schedule_start + gap.mul_f64(next_idx as f64);
            if intended > now {
                break;
            }
            backlog.push_back((next_idx, intended));
            next_idx += 1;
        }
        // Assign released requests to free connections.
        while let Some(&slot) = free.front() {
            if backlog.is_empty() {
                break;
            }
            let entry = backlog.pop_front().expect("checked non-empty");
            free.pop_front();
            let conn = &mut conns[slot];
            conn.in_flight = Some(entry);
            conn.wbuf.extend_from_slice(&wire);
            result.sent += 1;
            outstanding += 1;
            pump_write(&mut poller, conn, slot);
        }

        if next_idx >= total && outstanding == 0 && backlog.is_empty() {
            break; // every scheduled request resolved
        }
        if Instant::now() > hard_stop {
            // Stragglers (in flight or never sent) are errors.
            result.errors += outstanding + backlog.len() as u64;
            result.sent += backlog.len() as u64;
            break;
        }

        // Sleep until the next scheduled send, but never so long that
        // responses sit unread.
        let timeout = if next_idx < total {
            let next_at = schedule_start + gap.mul_f64(next_idx as f64);
            next_at
                .saturating_duration_since(Instant::now())
                .min(Duration::from_millis(10))
        } else {
            Duration::from_millis(10)
        };
        poller.wait(&mut events, timeout.max(Duration::from_micros(100)))?;

        for &ev in events.iter() {
            let slot = ev.token;
            if ev.writable {
                pump_write(&mut poller, &mut conns[slot], slot);
            }
            if !(ev.readable || ev.closed) {
                continue;
            }
            let conn = &mut conns[slot];
            let mut died = false;
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        died = true;
                        break;
                    }
                    Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        died = true;
                        break;
                    }
                }
            }
            // Parse at most the one in-flight response.
            if let Some((idx, intended)) = conn.in_flight {
                match http::parse_response(&mut conn.rbuf) {
                    Ok(resp) => {
                        let latency = Instant::now().saturating_duration_since(intended);
                        match resp.status {
                            200 => {
                                result.ok += 1;
                                let browned = resp
                                    .headers
                                    .get("x-brownout-level")
                                    .is_some_and(|v| v.trim() != "0")
                                    || resp.headers.contains_key("x-degraded");
                                if browned {
                                    result.brownout += 1;
                                }
                                if idx >= config.warmup {
                                    result.corrected.record_duration(latency);
                                }
                            }
                            429 => result.refused += 1,
                            503 => result.shed += 1,
                            _ => result.errors += 1,
                        }
                        conn.in_flight = None;
                        outstanding -= 1;
                        free.push_back(slot);
                    }
                    Err(http::HttpError::Incomplete) => {}
                    Err(_) => {
                        died = true;
                    }
                }
            }
            if died {
                // The connection is gone; its in-flight request (if
                // any) failed. Reconnect so pool size stays constant.
                if conn.in_flight.take().is_some() {
                    result.errors += 1;
                    outstanding -= 1;
                } else {
                    // An idle conn died: it re-enters via reconnect
                    // below and is already in the free list.
                }
                let _ = poller.deregister(conn.stream.as_raw_fd());
                match reconnect(addr) {
                    Ok(stream) => {
                        poller.register(stream.as_raw_fd(), slot, Interest::READ)?;
                        conn.stream = stream;
                        conn.rbuf.clear();
                        conn.wbuf.clear();
                        conn.interest = Interest::READ;
                        if !free.contains(&slot) {
                            free.push_back(slot);
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }

    result.server_stats = scrape_stats(addr);
    result.wall = started.elapsed();
    Ok(result)
}

/// Best-effort scrape of the target's `/stats` endpoint over a fresh
/// blocking connection (the pool's sockets stay parked).
fn scrape_stats(addr: SocketAddr) -> Option<StatsSnapshot> {
    let mut client = HttpClient::connect(addr).ok()?;
    let resp = client.request(&Request::get("/stats")).ok()?;
    if resp.status != 200 {
        return None;
    }
    parse_stats_json(std::str::from_utf8(&resp.body).ok()?)
}

fn reconnect(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_nonblocking(true)?;
    Ok(stream)
}

/// Pushes buffered request bytes, tracking write interest while the
/// socket is full.
fn pump_write(poller: &mut Box<dyn Poller>, conn: &mut ClientConn, slot: usize) {
    while !conn.wbuf.is_empty() {
        match conn.stream.write(&conn.wbuf) {
            Ok(0) => break,
            Ok(n) => {
                let _ = conn.wbuf.split_to(n);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    let want = Interest {
        read: true,
        write: !conn.wbuf.is_empty(),
    };
    if want != conn.interest {
        conn.interest = want;
        let _ = poller.modify(conn.stream.as_raw_fd(), slot, want);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etude_serve::http::{Method, Response};
    use etude_serve::rustserver::{start, Handler, ServerConfig};
    use std::sync::Arc;

    #[test]
    fn schedule_completes_against_a_live_server() {
        let handler: Handler = Arc::new(|req: &Request| match (req.method, req.path.as_str()) {
            (Method::Post, "/predictions") => Response::ok("0:1.0"),
            _ => Response::error(404, "nope"),
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let config = OpenConnConfig {
            connections: 8,
            rps: 200.0,
            duration: Duration::from_millis(500),
            ..OpenConnConfig::default()
        };
        let result = run_open_conn(server.addr(), &config).unwrap();
        assert_eq!(result.connections, 8);
        assert_eq!(
            result.ok + result.shed + result.refused + result.errors,
            result.sent
        );
        assert_eq!(result.errors, 0, "clean run must not error");
        assert_eq!(result.shed, 0);
        assert!(result.ok >= 90, "only {} of ~100 served", result.ok);
        assert_eq!(result.corrected.count(), result.ok);
        assert!(
            result.server_stats.is_none(),
            "no /stats route: the scrape must degrade to None"
        );
        server.shutdown();
    }

    #[test]
    fn final_scrape_captures_the_servers_own_stats() {
        let recorder = Arc::new(etude_obs::Recorder::new());
        let snap_src = Arc::clone(&recorder);
        let handler: Handler =
            Arc::new(move |req: &Request| match (req.method, req.path.as_str()) {
                (Method::Post, "/predictions") => Response::ok("0:1.0"),
                (Method::Get, "/stats") => Response::ok(snap_src.snapshot().render_json()),
                _ => Response::error(404, "nope"),
            });
        let server = start(ServerConfig::default(), handler).unwrap();
        let config = OpenConnConfig {
            connections: 2,
            rps: 50.0,
            duration: Duration::from_millis(200),
            ..OpenConnConfig::default()
        };
        let result = run_open_conn(server.addr(), &config).unwrap();
        assert_eq!(result.errors, 0);
        let stats = result
            .server_stats
            .expect("a /stats route must be scraped into the result");
        assert!(stats.reactor.is_none(), "thread-per-conn tier: no reactor");
        server.shutdown();
    }

    #[test]
    fn sheds_are_counted_separately_from_latency() {
        let handler: Handler = Arc::new(|_req: &Request| {
            Response::error(503, "overloaded").with_header("retry-after", "1".to_string())
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let config = OpenConnConfig {
            connections: 4,
            rps: 100.0,
            duration: Duration::from_millis(300),
            ..OpenConnConfig::default()
        };
        let result = run_open_conn(server.addr(), &config).unwrap();
        assert_eq!(result.ok, 0);
        assert!(result.shed > 0);
        assert_eq!(result.refused, 0);
        assert_eq!(
            result.corrected.count(),
            0,
            "sheds must not pollute latency"
        );
        server.shutdown();
    }

    #[test]
    fn refusals_and_brownouts_are_tallied_apart_from_sheds() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // A server that cycles 429 → browned-out 200 → clean 200, and
        // echoes the criticality header back so the stamp is testable.
        let turn = Arc::new(AtomicU64::new(0));
        let handler: Handler = Arc::new(move |req: &Request| {
            assert_eq!(
                req.headers.get("x-criticality").map(String::as_str),
                Some("critical")
            );
            match turn.fetch_add(1, Ordering::Relaxed) % 3 {
                0 => Response::error(429, "refused").with_header("retry-after", "0".to_string()),
                1 => Response::ok("0:1.0").with_header("x-brownout-level", "2".to_string()),
                _ => Response::ok("0:1.0").with_header("x-brownout-level", "0".to_string()),
            }
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let config = OpenConnConfig {
            connections: 1, // serialize: the cycle is deterministic
            rps: 100.0,
            duration: Duration::from_millis(300),
            criticality: Some("critical".to_string()),
            ..OpenConnConfig::default()
        };
        let result = run_open_conn(server.addr(), &config).unwrap();
        assert_eq!(result.errors, 0);
        assert_eq!(result.shed, 0, "429s must not be miscounted as sheds");
        assert!(result.refused > 0, "429s land in `refused`");
        assert!(result.brownout > 0, "level>0 200s land in `brownout`");
        assert!(
            result.brownout < result.ok,
            "level-0 200s must not count as brownout"
        );
        assert_eq!(
            result.ok + result.shed + result.refused + result.errors,
            result.sent
        );
        server.shutdown();
    }
}
