//! Property tests pinning the SIMD kernel layer to its scalar reference.
//!
//! The dispatch contract (DESIGN.md §12) has two tiers:
//!
//! * **bit-identical** — `dot`, the fused `score_topk` family and every
//!   kernel built on the shared block/reduction layout must return the
//!   exact same bits on every backend, because top-k *ordering* (and
//!   therefore recommendation output) must not depend on the host ISA;
//! * **ULP-bounded** — `softmax_rows` goes through the shared polynomial
//!   `exp_f32` instead of libm's `exp`, so its outputs are allowed to
//!   drift by at most [`MAX_SOFTMAX_ULP`] ULPs from the same summation
//!   algorithm run with `f32::exp`. `layernorm_rows` performs no
//!   transcendental math and stays bit-identical.
//!
//! Edge cases (length 0, 1, `LANES±1`) and NaN handling are pinned
//! explicitly alongside the randomized sweeps.

use etude_tensor::topk::{score_topk, score_topk_sharded, topk};
use etude_tensor::{kernels, simd};
use proptest::prelude::*;

/// Documented ULP tolerance for the softmax path (see DESIGN.md §12):
/// the polynomial `exp_f32` is within ~2 ULP of libm over the clamped
/// domain, and the final division adds at most one rounding apiece to
/// numerator and denominator.
const MAX_SOFTMAX_ULP: u64 = 4;

/// Distance between two finite f32 values in units in the last place,
/// via the standard monotone mapping of the IEEE bit patterns.
fn ulp_distance(a: f32, b: f32) -> u64 {
    fn ordered(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        i64::from(if bits < 0 { i32::MIN - bits } else { bits })
    }
    assert!(a.is_finite() && b.is_finite(), "ulp distance needs finites");
    (ordered(a) - ordered(b)).unsigned_abs()
}

/// The seed's textbook row softmax with libm `exp`, kept as the
/// reference: identical max-fold, summation order and final division,
/// differing only in which exponential is used.
fn softmax_rows_reference(a: &[f32], out: &mut [f32], m: usize, n: usize) {
    for i in 0..m {
        let row = &a[i * n..(i + 1) * n];
        let orow = &mut out[i * n..(i + 1) * n];
        let max = row.iter().fold(f32::NEG_INFINITY, |acc, &x| acc.max(x));
        let mut sum = 0.0f32;
        for (o, &x) in orow.iter_mut().zip(row) {
            let e = (x - max).exp();
            *o = e;
            sum += e;
        }
        if sum > 0.0 {
            for o in orow.iter_mut() {
                *o /= sum;
            }
        }
    }
}

/// The seed's textbook layer norm; the SIMD kernel computes mean and
/// variance in the same sequential order and the affine pass performs
/// per-element identical arithmetic, so this must match bitwise.
fn layernorm_rows_reference(
    a: &[f32],
    gamma: &[f32],
    beta: &[f32],
    out: &mut [f32],
    m: usize,
    n: usize,
) {
    const EPS: f32 = 1e-5;
    for i in 0..m {
        let row = &a[i * n..(i + 1) * n];
        let orow = &mut out[i * n..(i + 1) * n];
        let mean = row.iter().sum::<f32>() / n as f32;
        let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        let inv = 1.0 / (var + EPS).sqrt();
        for j in 0..n {
            orow[j] = (row[j] - mean) * inv * gamma[j] + beta[j];
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The dispatched dot (scalar or wide, whatever this host runs)
    /// returns the exact bits of the scalar-backend reference for every
    /// length, including lengths straddling the block width.
    #[test]
    fn dot_is_bit_identical_to_scalar_reference(
        a in proptest::collection::vec(-8.0f32..8.0, 0..200),
        seed in any::<u64>(),
    ) {
        let b: Vec<f32> = a
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let h = seed.wrapping_mul(i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h >> 40) as f32 / 8388608.0) - 1.0
            })
            .collect();
        let got = simd::dot(&a, &b);
        let want = simd::dot_scalar_ref(&a, &b);
        prop_assert_eq!(got.to_bits(), want.to_bits());
    }

    /// The fused streaming top-k returns the same indices in the same
    /// order as scoring with the scalar reference followed by the heap
    /// selection — for any shard count, so the merge is order-stable too.
    #[test]
    fn fused_topk_index_order_matches_scalar_reference(
        c in 1usize..400,
        d in 1usize..40,
        k in 1usize..30,
        shards in 1usize..6,
        qseed in any::<u64>(),
    ) {
        let table: Vec<f32> = (0..c * d)
            .map(|i| {
                let h = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h >> 40) as f32 / 8388608.0) - 1.0
            })
            .collect();
        let query: Vec<f32> = (0..d)
            .map(|i| {
                let h = qseed.wrapping_add(i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                ((h >> 40) as f32 / 8388608.0) - 1.0
            })
            .collect();
        let mut scores = vec![0.0f32; c];
        for (r, s) in scores.iter_mut().enumerate() {
            *s = simd::dot_scalar_ref(&table[r * d..(r + 1) * d], &query);
        }
        let (want_ids, want_scores) = topk(&scores, k);
        let (got_ids, got_scores) = score_topk(&table, &query, c, k);
        prop_assert_eq!(&got_ids, &want_ids);
        prop_assert_eq!(&got_scores, &want_scores);
        let (sh_ids, sh_scores) = score_topk_sharded(&table, &query, c, k, shards);
        prop_assert_eq!(&sh_ids, &want_ids);
        prop_assert_eq!(&sh_scores, &want_scores);
    }

    /// Vectorized softmax stays within the documented ULP envelope of the
    /// libm-based reference (same algorithm, different exponential).
    #[test]
    fn softmax_is_ulp_bounded_against_libm_reference(
        m in 1usize..6,
        n in 1usize..40,
        lo in -20.0f32..0.0,
        hi in 0.0f32..20.0,
        seed in any::<u64>(),
    ) {
        let a: Vec<f32> = (0..m * n)
            .map(|i| {
                let h = seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let u = (h >> 40) as f32 / 16777216.0; // [0, 1)
                lo + (hi - lo) * u
            })
            .collect();
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        kernels::softmax_rows(&a, &mut got, n);
        softmax_rows_reference(&a, &mut want, m, n);
        for (i, (&g, &w)) in got.iter().zip(&want).enumerate() {
            let ulp = ulp_distance(g, w);
            prop_assert!(
                ulp <= MAX_SOFTMAX_ULP,
                "softmax[{}] {} vs {}: {} ulp",
                i, g, w, ulp
            );
        }
    }

    /// Vectorized layer norm is bit-identical to the textbook reference:
    /// mean/variance folds are sequential in both, and the affine pass
    /// performs the same per-element expression.
    #[test]
    fn layernorm_is_bit_identical_to_reference(
        m in 1usize..6,
        n in 1usize..40,
        seed in any::<u64>(),
    ) {
        let a: Vec<f32> = (0..m * n)
            .map(|i| {
                let h = seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h >> 40) as f32 / 8388608.0) - 1.0
            })
            .collect();
        let gamma: Vec<f32> = (0..n).map(|j| 0.5 + 0.01 * j as f32).collect();
        let beta: Vec<f32> = (0..n).map(|j| -0.2 + 0.02 * j as f32).collect();
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        kernels::layernorm_rows(&a, &gamma, &beta, &mut got, n, 1e-5);
        layernorm_rows_reference(&a, &gamma, &beta, &mut want, m, n);
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
    }
}

/// Lengths around the block width are where masked epilogues go wrong;
/// pin 0, 1, `LANES - 1`, `LANES`, `LANES + 1` and a two-block straddle
/// explicitly.
#[test]
fn dot_edge_lengths_match_scalar_reference() {
    let lens = [
        0,
        1,
        simd::LANES - 1,
        simd::LANES,
        simd::LANES + 1,
        2 * simd::LANES + 3,
    ];
    for &len in &lens {
        let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.71).cos()).collect();
        assert_eq!(
            simd::dot(&a, &b).to_bits(),
            simd::dot_scalar_ref(&a, &b).to_bits(),
            "len {len}"
        );
    }
}

/// Fused top-k with degenerate shapes: empty catalog, single row, k
/// larger than the catalog.
#[test]
fn fused_topk_edge_shapes() {
    let (ids, scores) = score_topk(&[], &[], 0, 5);
    assert!(ids.is_empty() && scores.is_empty());

    let (ids, scores) = score_topk(&[1.0, 2.0], &[3.0, 4.0], 1, 5);
    assert_eq!(ids, vec![0]);
    assert_eq!(scores, vec![11.0]);

    let table = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
    let (ids, _) = score_topk(&table, &[2.0, 1.0], 3, 10);
    assert_eq!(ids, vec![2, 0, 1]); // 3.0, 2.0, 1.0
}

/// NaN scores are rejected deterministically: a NaN query maps every
/// score to `NEG_INFINITY`, so selection degrades to ascending index
/// order instead of depending on comparison quirks.
#[test]
fn nan_scores_are_rejected_deterministically() {
    let d = 4;
    let c = 8;
    let table: Vec<f32> = (0..c * d).map(|i| i as f32).collect();
    let query = [f32::NAN, 0.0, 0.0, 0.0];
    let (ids, scores) = score_topk(&table, &query, c, 3);
    assert_eq!(ids, vec![0, 1, 2]);
    assert!(scores.iter().all(|s| *s == f32::NEG_INFINITY));
}
