//! Property tests pinning scatter/gather partial-top-k merging to the
//! unsharded fused scan.
//!
//! The router's correctness contract (DESIGN.md §13) is that at full
//! health the merged answer is **bit-identical** to running
//! `score_topk` over the whole catalog on one node: same ids, same
//! score bits, same order. The merge therefore must use the exact
//! comparator of the fused scan — score descending, *global* id
//! ascending on ties — and must survive the edges a live fleet
//! produces: shards smaller than `k`, empty shards (a group that owns
//! no rows or returned nothing), and cross-shard score ties.

use etude_tensor::pool::shard_ranges;
use etude_tensor::topk::{merge_shard_topk, score_topk};
use proptest::prelude::*;

/// Per-shard partials for a contiguous partition of `table`: each
/// shard runs the same fused scan over its slice and reports global
/// ids (`base + local`).
fn shard_partials(
    table: &[f32],
    query: &[f32],
    c: usize,
    k: usize,
    groups: usize,
) -> Vec<(Vec<u32>, Vec<f32>)> {
    let d = query.len();
    shard_ranges(c, groups)
        .into_iter()
        .map(|r| {
            let slice = &table[r.start * d..r.end * d];
            let (mut ids, scores) = score_topk(slice, query, r.len(), k);
            for id in &mut ids {
                *id += r.start as u32;
            }
            (ids, scores)
        })
        .collect()
}

proptest! {
    /// Random catalogs, dimensions, shard counts and k (including
    /// k > rows-per-shard and k > c): merging per-shard partials is
    /// bit-identical to the global scan.
    #[test]
    fn merge_matches_global_scan(
        c in 1usize..200,
        d in 1usize..24,
        k in 1usize..64,
        groups in 1usize..8,
        seed in any::<u64>(),
    ) {
        // Deterministic pseudo-random table/query from the seed, kept
        // in [-1, 1) so every score is finite.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        };
        let table: Vec<f32> = (0..c * d).map(|_| next()).collect();
        let query: Vec<f32> = (0..d).map(|_| next()).collect();

        let reference = score_topk(&table, &query, c, k);
        let partials = shard_partials(&table, &query, c, k, groups);
        let merged = merge_shard_topk(&partials, k);

        prop_assert_eq!(&merged.0, &reference.0, "ids diverged");
        let merged_bits: Vec<u32> = merged.1.iter().map(|s| s.to_bits()).collect();
        let reference_bits: Vec<u32> = reference.1.iter().map(|s| s.to_bits()).collect();
        prop_assert_eq!(merged_bits, reference_bits, "score bits diverged");
    }

    /// Tables built entirely from a handful of repeated rows force
    /// heavy cross-shard score ties; the merge must break every one of
    /// them by global id, exactly like the global scan.
    #[test]
    fn cross_shard_ties_break_by_global_id(
        c in 2usize..120,
        groups in 2usize..6,
        k in 1usize..40,
        distinct in 1usize..4,
        seed in any::<u64>(),
    ) {
        let d = 4;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        };
        let prototypes: Vec<Vec<f32>> =
            (0..distinct).map(|_| (0..d).map(|_| next()).collect()).collect();
        let table: Vec<f32> = (0..c)
            .flat_map(|i| prototypes[i % distinct].clone())
            .collect();
        let query: Vec<f32> = (0..d).map(|_| next()).collect();

        let reference = score_topk(&table, &query, c, k);
        // Tied scores really exist whenever c > distinct and k sees
        // more than one copy — and ids must come out ascending within
        // each tie class in both paths.
        let merged = merge_shard_topk(&shard_partials(&table, &query, c, k, groups), k);
        prop_assert_eq!(&merged.0, &reference.0);
        for (s, ids) in merged.1.windows(2).zip(merged.0.windows(2)) {
            if s[0].to_bits() == s[1].to_bits() {
                prop_assert!(ids[0] < ids[1], "tie not broken by global id: {ids:?}");
            }
        }
    }

    /// Empty and short partials: groups that own no rows, returned
    /// nothing, or hold fewer than k rows must not disturb the merge.
    #[test]
    fn empty_and_short_partials_are_harmless(
        c in 1usize..80,
        k in 1usize..32,
        groups in 1usize..6,
        empties in 0usize..3,
        seed in any::<u64>(),
    ) {
        let d = 3;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        };
        let table: Vec<f32> = (0..c * d).map(|_| next()).collect();
        let query: Vec<f32> = (0..d).map(|_| next()).collect();

        let reference = score_topk(&table, &query, c, k);
        let mut partials = shard_partials(&table, &query, c, k, groups);
        // Splice in empty partials at the front, middle and back —
        // the router sees these when a shard group owns zero rows.
        for i in 0..empties {
            let at = (i * partials.len() / empties.max(1)).min(partials.len());
            partials.insert(at, (Vec::new(), Vec::new()));
        }
        let merged = merge_shard_topk(&partials, k);
        prop_assert_eq!(&merged.0, &reference.0);
        let merged_bits: Vec<u32> = merged.1.iter().map(|s| s.to_bits()).collect();
        let reference_bits: Vec<u32> = reference.1.iter().map(|s| s.to_bits()).collect();
        prop_assert_eq!(merged_bits, reference_bits);
    }

    /// Losing shard groups degrades coverage, never correctness: the
    /// merge of any subset of partials equals the global scan restricted
    /// to the surviving rows (what the router serves under `x-degraded`).
    #[test]
    fn survivor_merge_equals_scan_over_survivors(
        c in 2usize..120,
        k in 1usize..32,
        groups in 2usize..6,
        lost in 0usize..3,
        seed in any::<u64>(),
    ) {
        let d = 5;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        };
        let table: Vec<f32> = (0..c * d).map(|_| next()).collect();
        let query: Vec<f32> = (0..d).map(|_| next()).collect();

        let ranges = shard_ranges(c, groups);
        let lost = lost.min(ranges.len() - 1);
        let partials = shard_partials(&table, &query, c, k, groups);
        let survivors: Vec<_> = partials.into_iter().skip(lost).collect();
        let merged = merge_shard_topk(&survivors, k);

        // Reference: one scan over the concatenation of surviving rows,
        // ids shifted back to global.
        let base = ranges[lost].start;
        let surviving_rows = c - base;
        let (mut ids, scores) =
            score_topk(&table[base * d..], &query, surviving_rows, k);
        for id in &mut ids {
            *id += base as u32;
        }
        prop_assert_eq!(&merged.0, &ids);
        let merged_bits: Vec<u32> = merged.1.iter().map(|s| s.to_bits()).collect();
        let reference_bits: Vec<u32> = scores.iter().map(|s| s.to_bits()).collect();
        prop_assert_eq!(merged_bits, reference_bits);
    }
}

/// Degenerate inputs the property generators above never quite pin
/// down exactly: these are the literal edge shapes the router can hand
/// the merge, each checked for exact equality with the serial
/// reference (or the empty answer where no reference exists).
mod degenerate {
    use super::*;

    fn table(c: usize, d: usize) -> (Vec<f32>, Vec<f32>) {
        let mut state = 0xfeed_5eed_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        };
        let table: Vec<f32> = (0..c * d).map(|_| next()).collect();
        let query: Vec<f32> = (0..d).map(|_| next()).collect();
        (table, query)
    }

    /// k = 0 asks for nothing and must get exactly nothing — from the
    /// merge and from the serial scan alike, whatever the partials hold.
    #[test]
    fn k_zero_yields_the_empty_answer() {
        let (t, q) = table(40, 4);
        let reference = score_topk(&t, &q, 40, 0);
        assert!(reference.0.is_empty() && reference.1.is_empty());

        let partials = shard_partials(&t, &q, 40, 5, 3);
        let (ids, scores) = merge_shard_topk(&partials, 0);
        assert!(ids.is_empty(), "k=0 returned ids: {ids:?}");
        assert!(scores.is_empty(), "k=0 returned scores: {scores:?}");

        // And with no partials at all.
        let (ids, scores) = merge_shard_topk(&[], 0);
        assert!(ids.is_empty() && scores.is_empty());
    }

    /// Every group present but empty — the shape a router sees when
    /// all shards answered yet none owned a surviving row.
    #[test]
    fn all_empty_groups_yield_the_empty_answer() {
        let partials: Vec<(Vec<u32>, Vec<f32>)> =
            (0..4).map(|_| (Vec::new(), Vec::new())).collect();
        let (ids, scores) = merge_shard_topk(&partials, 21);
        assert!(ids.is_empty(), "empty groups returned ids: {ids:?}");
        assert!(scores.is_empty());
    }

    /// One surviving group among empties: the merge must pass the
    /// survivor's partial through bit-for-bit — same ids, same score
    /// bits, same order as the serial scan over that slice.
    #[test]
    fn single_survivor_passes_through_exactly() {
        let (t, q) = table(60, 6);
        let k = 21;
        let survivor = score_topk(&t, &q, 60, k);
        let partials = vec![
            (Vec::new(), Vec::new()),
            (survivor.0.clone(), survivor.1.clone()),
            (Vec::new(), Vec::new()),
        ];
        let (ids, scores) = merge_shard_topk(&partials, k);
        assert_eq!(ids, survivor.0, "single-survivor ids diverged");
        let bits: Vec<u32> = scores.iter().map(|s| s.to_bits()).collect();
        let ref_bits: Vec<u32> = survivor.1.iter().map(|s| s.to_bits()).collect();
        assert_eq!(bits, ref_bits, "single-survivor score bits diverged");
    }
}
