//! Property tests of the JIT: for randomly generated dataflow graphs,
//! every pass combination must preserve outputs exactly, never increase
//! the modelled cost, and keep the graph well-formed.

use etude_tensor::kernels::{BinOp, UnOp};
use etude_tensor::{jit, Device, Exec, ExecMode, JitOptions, Param, TRef, Tensor};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds a random but well-typed computation over a `[1, d]` input using
/// a seeded RNG, in whichever mode `exec` is in. Returns the output ref.
fn random_program(exec: &mut Exec, input: Tensor, seed: u64, steps: usize) -> TRef {
    let d = input.shape()[1];
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut frontier: Vec<TRef> = vec![exec.input(input).expect("input")];

    // A pool of weights created deterministically from the seed (Params
    // are cached per trace, so eager and traced runs see identical data).
    let weights: Vec<Param> = (0..3)
        .map(|i| {
            let data: Vec<f32> = (0..d * d)
                .map(|j| ((seed as f32 + i as f32 * 31.0 + j as f32) * 0.37).sin() * 0.5)
                .collect();
            Param::new(Tensor::from_vec(data, &[d, d]).expect("weight"))
        })
        .collect();
    let biases: Vec<Param> = (0..2)
        .map(|i| {
            let data: Vec<f32> = (0..d).map(|j| ((i + j) as f32 * 0.21).cos()).collect();
            Param::new(Tensor::from_vec(data, &[d]).expect("bias"))
        })
        .collect();

    for _ in 0..steps {
        let x = *frontier.last().expect("nonempty");
        let choice = rng.gen_range(0..8);
        let y = match choice {
            0 => {
                let w = exec
                    .param(&weights[rng.gen_range(0..weights.len())])
                    .unwrap();
                exec.matmul(x, w).unwrap()
            }
            1 => {
                let b = exec.param(&biases[rng.gen_range(0..biases.len())]).unwrap();
                exec.binary_row(BinOp::Add, x, b).unwrap()
            }
            2 => exec.unary(UnOp::Tanh, x).unwrap(),
            3 => exec.unary(UnOp::Sigmoid, x).unwrap(),
            4 => exec.scalar(BinOp::Mul, x, 0.5 + rng.gen::<f32>()).unwrap(),
            5 => exec.softmax(x).unwrap(),
            6 => {
                // A branch that is consumed twice (fusion must respect it).
                let a = exec.relu(x).unwrap();
                let b = exec.unary(UnOp::Neg, x).unwrap();
                exec.add(a, b).unwrap()
            }
            _ => {
                let w = exec.param(&weights[0]).unwrap();
                let lin = exec.matmul(x, w).unwrap();
                exec.gelu(lin).unwrap()
            }
        };
        frontier.push(y);
    }
    *frontier.last().expect("nonempty")
}

fn input_tensor(d: usize, seed: u64) -> Tensor {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xabcd);
    let data: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    Tensor::from_vec(data, &[1, d]).expect("input")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_pass_combinations_preserve_semantics(
        seed in 0u64..10_000,
        steps in 1usize..10,
        d in 2usize..8,
    ) {
        // Eager reference.
        let mut eager = Exec::new(ExecMode::Real, Device::cpu());
        let out = random_program(&mut eager, input_tensor(d, seed), seed, steps);
        let expected = eager.tensor(out).unwrap().clone();

        // Trace once.
        let mut tracer = Exec::new(ExecMode::Trace, Device::cpu());
        let traced_out = random_program(&mut tracer, input_tensor(d, seed), seed, steps);
        let graph = tracer.finish_trace(traced_out).unwrap();

        for mask in 0u8..16 {
            let options = JitOptions {
                const_fold: mask & 1 != 0,
                pre_transpose: mask & 2 != 0,
                fuse: mask & 4 != 0,
                dce: mask & 8 != 0,
            };
            let compiled = jit::compile(graph.clone(), options).unwrap();
            let (got, _) = compiled.run(&[input_tensor(d, seed)]).unwrap();
            let diff = expected.max_abs_diff(&got).unwrap();
            prop_assert!(
                diff < 1e-4,
                "passes {options:?} diverged by {diff}"
            );
        }
    }

    #[test]
    fn full_jit_never_costs_more_than_no_jit(
        seed in 0u64..10_000,
        steps in 1usize..12,
    ) {
        let d = 6;
        let mut tracer = Exec::new(ExecMode::Trace, Device::cpu());
        let traced_out = random_program(&mut tracer, input_tensor(d, seed), seed, steps);
        let graph = tracer.finish_trace(traced_out).unwrap();
        let base = jit::compile(graph.clone(), JitOptions::none()).unwrap();
        let opt = jit::compile(graph, JitOptions::default()).unwrap();
        let b = base.cost().at_batch(1);
        let o = opt.cost().at_batch(1);
        prop_assert!(o.launches <= b.launches);
        prop_assert!(o.bytes <= b.bytes * 1.0001);
        prop_assert!(o.flops <= b.flops + 1.0);
    }

    #[test]
    fn cost_only_mode_matches_real_mode_for_random_programs(
        seed in 0u64..10_000,
        steps in 1usize..10,
    ) {
        let d = 5;
        let mut real = Exec::new(ExecMode::Real, Device::cpu());
        random_program(&mut real, input_tensor(d, seed), seed, steps);
        let mut phantom = Exec::new(ExecMode::CostOnly, Device::cpu());
        random_program(&mut phantom, input_tensor(d, seed), seed, steps);
        let r = real.cost().total();
        let p = phantom.cost().total();
        prop_assert_eq!(r.launches, p.launches);
        prop_assert!((r.flops - p.flops).abs() < 1e-6);
        prop_assert!((r.bytes - p.bytes).abs() < 1e-6);
    }
}
