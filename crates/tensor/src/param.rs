//! Model parameters (weights).
//!
//! A [`Param`] wraps a shared tensor with a process-unique identity. The
//! identity lets the tracer recognise that the same weight flows into a
//! graph from multiple call sites and register it as a single constant
//! node — a prerequisite for constant folding and weight pre-transposition
//! in the JIT.

use crate::tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_PARAM_ID: AtomicU64 = AtomicU64::new(1);

/// Process-unique identifier of a parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub u64);

/// A shared, immutable model weight.
#[derive(Debug, Clone)]
pub struct Param {
    id: ParamId,
    value: Arc<Tensor>,
}

impl Param {
    /// Wraps a tensor as a parameter with a fresh identity.
    pub fn new(value: Tensor) -> Param {
        Param {
            id: ParamId(NEXT_PARAM_ID.fetch_add(1, Ordering::Relaxed)),
            value: Arc::new(value),
        }
    }

    /// The parameter's identity.
    pub fn id(&self) -> ParamId {
        self.id
    }

    /// The underlying tensor.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// Shared handle to the underlying tensor.
    pub fn shared(&self) -> Arc<Tensor> {
        Arc::clone(&self.value)
    }

    /// The parameter's shape.
    pub fn shape(&self) -> &[usize] {
        self.value.shape()
    }

    /// Size of the parameter in bytes (f32 storage).
    pub fn size_bytes(&self) -> u64 {
        4 * self.value.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_get_distinct_ids() {
        let a = Param::new(Tensor::zeros(&[2]));
        let b = Param::new(Tensor::zeros(&[2]));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn clones_share_identity_and_storage() {
        let a = Param::new(Tensor::zeros(&[4]));
        let b = a.clone();
        assert_eq!(a.id(), b.id());
        assert!(Arc::ptr_eq(&a.shared(), &b.shared()));
    }

    #[test]
    fn size_bytes_counts_f32_storage() {
        let p = Param::new(Tensor::zeros(&[10, 3]));
        assert_eq!(p.size_bytes(), 120);
    }
}
