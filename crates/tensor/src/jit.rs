//! JIT graph optimisation — the stand-in for
//! `torch.jit.optimize_for_inference`.
//!
//! A traced [`Graph`] is rewritten by four passes:
//!
//! 1. **Constant folding** — subgraphs depending only on weights are
//!    evaluated once at compile time and replaced by constants.
//! 2. **Weight pre-transposition** — `MatMul(x, W)` with a constant right
//!    operand becomes `MatMulBT(x, Wᵀ)`, whose dot products walk both
//!    operands contiguously.
//! 3. **Elementwise fusion** — chains of unary/scalar maps (optionally
//!    seeded by a binary combine) collapse into a single [`OpKind::Fused`]
//!    kernel: one launch and one memory pass instead of one per op.
//! 4. **Dead-code elimination** — nodes unreachable from the output are
//!    dropped.
//!
//! Each pass preserves semantics (verified by property tests comparing
//! eager and compiled outputs) while reducing launches and memory traffic,
//! which is exactly how the paper's "JIT optimisation is always
//! beneficial" finding manifests in the cost model.

use crate::cost::{Cost, CostSpec};
use crate::device::DeviceProfile;
use crate::graph::{op_cost, FusedStep, Graph, Node, NodeId, OpKind};
use crate::param::Param;
use crate::tensor::{Tensor, TensorError};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Why a model could not be JIT-compiled.
#[derive(Debug, Clone, PartialEq)]
pub enum JitError {
    /// The forward pass branches on runtime data and cannot be traced.
    /// (The paper hit this with LightSANs.)
    DynamicControlFlow(String),
    /// Tracing or rewriting failed.
    Trace(TensorError),
}

impl fmt::Display for JitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JitError::DynamicControlFlow(what) => {
                write!(f, "dynamic control flow prevents tracing: {what}")
            }
            JitError::Trace(e) => write!(f, "trace failed: {e}"),
        }
    }
}

impl std::error::Error for JitError {}

impl From<TensorError> for JitError {
    fn from(e: TensorError) -> Self {
        if matches!(e, TensorError::NotTraceable { .. }) {
            JitError::DynamicControlFlow("untraceable operation".into())
        } else {
            JitError::Trace(e)
        }
    }
}

/// Which optimisation passes to run (all on by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JitOptions {
    /// Evaluate weight-only subgraphs at compile time.
    pub const_fold: bool,
    /// Rewrite `MatMul(x, W)` to `MatMulBT(x, Wᵀ)`.
    pub pre_transpose: bool,
    /// Fuse elementwise chains into single kernels.
    pub fuse: bool,
    /// Remove unreachable nodes.
    pub dce: bool,
}

impl Default for JitOptions {
    fn default() -> Self {
        JitOptions {
            const_fold: true,
            pre_transpose: true,
            fuse: true,
            dce: true,
        }
    }
}

impl JitOptions {
    /// All passes disabled — compiles the graph verbatim.
    pub fn none() -> JitOptions {
        JitOptions {
            const_fold: false,
            pre_transpose: false,
            fuse: false,
            dce: false,
        }
    }
}

/// An optimised, executable graph with a precomputed cost spec.
#[derive(Debug, Clone)]
pub struct CompiledGraph {
    graph: Graph,
    cost: CostSpec,
}

impl CompiledGraph {
    /// The optimised graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Total batch-parametric cost of one forward pass.
    pub fn cost(&self) -> CostSpec {
        self.cost
    }

    /// Executes the compiled graph.
    pub fn run(&self, inputs: &[Tensor]) -> Result<(Tensor, Cost), TensorError> {
        self.graph.run(inputs)
    }

    /// Executes the compiled graph with per-op timing (see
    /// [`Graph::run_timed`]).
    pub fn run_timed(
        &self,
        inputs: &[Tensor],
    ) -> Result<(Tensor, Cost, crate::graph::OpTimes), TensorError> {
        self.graph.run_timed(inputs)
    }

    /// Latency of a forward pass over `batch` fused requests on `device`.
    pub fn latency(&self, device: &DeviceProfile, batch: usize) -> Duration {
        device.latency(&self.cost.at_batch(batch))
    }
}

/// Compiles a traced graph with the given passes.
pub fn compile(graph: Graph, options: JitOptions) -> Result<CompiledGraph, JitError> {
    let mut g = graph;
    if options.const_fold {
        g = const_fold(g)?;
    }
    if options.pre_transpose {
        g = pre_transpose(g)?;
    }
    if options.fuse {
        g = fuse_elementwise(g)?;
    }
    if options.dce {
        g = dce(g);
    }
    let cost = g.total_cost();
    Ok(CompiledGraph { graph: g, cost })
}

fn node_shapes<'a>(g: &'a Graph, inputs: &[NodeId]) -> Vec<&'a [usize]> {
    inputs
        .iter()
        .map(|&i| g.nodes[i].shape.as_slice())
        .collect()
}

fn recost(g: &Graph, kind: &OpKind, inputs: &[NodeId], shape: &[usize]) -> CostSpec {
    let shapes = node_shapes(g, inputs);
    let const_flags: Vec<bool> = inputs
        .iter()
        .map(|&i| matches!(g.nodes[i].kind, OpKind::Const(_)))
        .collect();
    op_cost(kind, &shapes, &const_flags, shape)
}

/// Evaluates weight-only subgraphs at compile time.
fn const_fold(mut g: Graph) -> Result<Graph, JitError> {
    // values[i] holds the materialised constant for foldable nodes.
    let mut values: HashMap<NodeId, Arc<Tensor>> = HashMap::new();
    for (&id, t) in &g.consts {
        values.insert(id, Arc::clone(t));
    }
    for id in 0..g.nodes.len() {
        let node = &g.nodes[id];
        match &node.kind {
            OpKind::Input(_) | OpKind::Const(_) => continue,
            // Folding TopK/ScoreTopK/HostOp would hide quirk semantics;
            // skip them.
            OpKind::TopK { .. } | OpKind::ScoreTopK { .. } | OpKind::HostOp => continue,
            kind => {
                if !node.inputs.iter().all(|i| values.contains_key(i)) {
                    continue;
                }
                let operand_arcs: Vec<Arc<Tensor>> =
                    node.inputs.iter().map(|i| Arc::clone(&values[i])).collect();
                let operands: Vec<&Tensor> = operand_arcs.iter().map(|a| a.as_ref()).collect();
                let folded = crate::graph::eval(kind, &operands, &node.shape)?;
                let param = Param::new(folded);
                let shape = node.shape.clone();
                g.nodes[id] = Node {
                    kind: OpKind::Const(param.id()),
                    inputs: vec![],
                    shape,
                    cost: CostSpec::default(),
                };
                g.consts.insert(id, param.shared());
                values.insert(id, param.shared());
            }
        }
    }
    Ok(g)
}

/// Rewrites `MatMul(x, W)` with constant `W` into `MatMulBT(x, Wᵀ)`.
fn pre_transpose(mut g: Graph) -> Result<Graph, JitError> {
    for id in 0..g.nodes.len() {
        if g.nodes[id].kind != OpKind::MatMul {
            continue;
        }
        let rhs = g.nodes[id].inputs[1];
        if !matches!(g.nodes[rhs].kind, OpKind::Const(_)) {
            continue;
        }
        // Only transpose weights that feed solely matmuls; a shared weight
        // consumed elsewhere keeps its original layout and we skip it.
        let shared_elsewhere = g.nodes.iter().enumerate().any(|(j, n)| {
            j != id && n.inputs.contains(&rhs) && !(n.kind == OpKind::MatMul && n.inputs[1] == rhs)
        });
        if shared_elsewhere {
            continue;
        }
        let w = Arc::clone(&g.consts[&rhs]);
        let (k, n) = w.dims2("pre_transpose")?;
        // Phantom weights (cost-only model instances) keep phantom
        // transposes; dense weights are transposed for real.
        let wt = if w.is_phantom() {
            Param::new(Tensor::phantom(&[n, k]))
        } else {
            let mut out = vec![0.0; k * n];
            crate::kernels::transpose(w.as_slice()?, &mut out, k, n);
            Param::new(Tensor::from_vec(out, &[n, k])?)
        };
        g.nodes[rhs] = Node {
            kind: OpKind::Const(wt.id()),
            inputs: vec![],
            shape: vec![n, k],
            cost: CostSpec::default(),
        };
        g.consts.insert(rhs, wt.shared());
        let inputs = g.nodes[id].inputs.clone();
        let shape = g.nodes[id].shape.clone();
        let cost = recost(&g, &OpKind::MatMulBT, &inputs, &shape);
        g.nodes[id].kind = OpKind::MatMulBT;
        g.nodes[id].cost = cost;
        // Rewrite sibling matmuls that shared this weight.
        for j in 0..g.nodes.len() {
            if j != id && g.nodes[j].kind == OpKind::MatMul && g.nodes[j].inputs[1] == rhs {
                let inputs = g.nodes[j].inputs.clone();
                let shape = g.nodes[j].shape.clone();
                let cost = recost(&g, &OpKind::MatMulBT, &inputs, &shape);
                g.nodes[j].kind = OpKind::MatMulBT;
                g.nodes[j].cost = cost;
            }
        }
    }
    Ok(g)
}

fn consumer_counts(g: &Graph) -> Vec<usize> {
    let mut counts = vec![0usize; g.nodes.len()];
    for node in &g.nodes {
        for &i in &node.inputs {
            counts[i] += 1;
        }
    }
    counts[g.output] += 1;
    counts
}

/// Fuses elementwise chains into single kernels.
///
/// A chain starts at a `Binary`, `Unary` or `BinaryScalar` node and
/// extends through successive `Unary`/`BinaryScalar` nodes that are each
/// the *sole* consumer of their predecessor. The chain is replaced by one
/// [`OpKind::Fused`] node.
fn fuse_elementwise(g: Graph) -> Result<Graph, JitError> {
    let counts = consumer_counts(&g);
    // For each node, find the node that extends it (its unique elementwise
    // consumer), if any.
    let mut extended_by: Vec<Option<NodeId>> = vec![None; g.nodes.len()];
    for (id, node) in g.nodes.iter().enumerate() {
        if let OpKind::Unary(_) | OpKind::BinaryScalar(..) = node.kind {
            let prev = node.inputs[0];
            if g.nodes[prev].kind.is_elementwise() && counts[prev] == 1 && g.output != prev {
                extended_by[prev] = Some(id);
            }
        }
    }
    // A node is absorbed if some chain passes through it (it has an
    // extension and is itself elementwise).
    let mut absorbed = vec![false; g.nodes.len()];
    for (id, ext) in extended_by.iter().enumerate() {
        if ext.is_some() && g.nodes[id].kind.is_elementwise() {
            absorbed[id] = true;
        }
    }
    // Rebuild: chain heads become Fused nodes placed at the position of the
    // chain's *tail* (so all operands precede them); absorbed nodes vanish.
    let mut new_nodes: Vec<Node> = Vec::with_capacity(g.nodes.len());
    let mut new_consts = HashMap::new();
    let mut remap: Vec<Option<NodeId>> = vec![None; g.nodes.len()];

    for (id, node) in g.nodes.iter().enumerate() {
        if absorbed[id] {
            continue;
        }
        // Is this node the tail of a chain of length >= 2?
        let mut chain = vec![id];
        let mut cur = id;
        while let OpKind::Unary(_) | OpKind::BinaryScalar(..) = g.nodes[cur].kind {
            let prev = g.nodes[cur].inputs[0];
            if absorbed[prev] {
                chain.push(prev);
                cur = prev;
            } else {
                break;
            }
        }
        let new_id = new_nodes.len();
        if chain.len() >= 2 {
            chain.reverse(); // head first
            let head = chain[0];
            let head_node = &g.nodes[head];
            let (seed, mut steps, operands) = match &head_node.kind {
                OpKind::Binary(op) => (Some(*op), Vec::new(), head_node.inputs.clone()),
                OpKind::Unary(u) => (None, vec![FusedStep::Unary(*u)], head_node.inputs.clone()),
                OpKind::BinaryScalar(op, s) => (
                    None,
                    vec![FusedStep::Scalar(*op, *s)],
                    head_node.inputs.clone(),
                ),
                _ => unreachable!("chain heads are elementwise"),
            };
            for &link in &chain[1..] {
                match &g.nodes[link].kind {
                    OpKind::Unary(u) => steps.push(FusedStep::Unary(*u)),
                    OpKind::BinaryScalar(op, s) => steps.push(FusedStep::Scalar(*op, *s)),
                    _ => unreachable!("chain links are unary/scalar"),
                }
            }
            let inputs: Vec<NodeId> = operands
                .iter()
                .map(|&i| remap[i].ok_or(TensorError::InvalidRef { index: i }))
                .collect::<Result<_, _>>()?;
            let kind = OpKind::Fused { seed, steps };
            let shape = node.shape.clone();
            let shapes: Vec<&[usize]> = inputs
                .iter()
                .map(|&i| new_nodes[i].shape.as_slice())
                .collect();
            let const_flags: Vec<bool> = inputs
                .iter()
                .map(|&i| matches!(new_nodes[i].kind, OpKind::Const(_)))
                .collect();
            let cost = op_cost(&kind, &shapes, &const_flags, &shape);
            new_nodes.push(Node {
                kind,
                inputs,
                shape,
                cost,
            });
        } else {
            let inputs: Vec<NodeId> = node
                .inputs
                .iter()
                .map(|&i| remap[i].ok_or(TensorError::InvalidRef { index: i }))
                .collect::<Result<_, _>>()?;
            let mut n = node.clone();
            n.inputs = inputs;
            if let OpKind::Const(_) = n.kind {
                new_consts.insert(new_id, Arc::clone(&g.consts[&id]));
            }
            new_nodes.push(n);
        }
        remap[id] = Some(new_id);
    }
    let output = remap[g.output].ok_or(TensorError::InvalidRef { index: g.output })?;
    Ok(Graph {
        nodes: new_nodes,
        consts: new_consts,
        n_inputs: g.n_inputs,
        output,
    })
}

/// Removes nodes unreachable from the output. Inputs are always retained
/// so graph arity is stable.
fn dce(g: Graph) -> Graph {
    let mut live = vec![false; g.nodes.len()];
    let mut stack = vec![g.output];
    while let Some(id) = stack.pop() {
        if live[id] {
            continue;
        }
        live[id] = true;
        for &i in &g.nodes[id].inputs {
            stack.push(i);
        }
    }
    for (id, node) in g.nodes.iter().enumerate() {
        if matches!(node.kind, OpKind::Input(_)) {
            live[id] = true;
        }
    }
    let mut remap: Vec<Option<NodeId>> = vec![None; g.nodes.len()];
    let mut new_nodes = Vec::new();
    let mut new_consts = HashMap::new();
    for (id, node) in g.nodes.iter().enumerate() {
        if !live[id] {
            continue;
        }
        let new_id = new_nodes.len();
        let mut n = node.clone();
        n.inputs = n
            .inputs
            .iter()
            .map(|&i| remap[i].expect("live inputs"))
            .collect();
        if let OpKind::Const(_) = n.kind {
            new_consts.insert(new_id, Arc::clone(&g.consts[&id]));
        }
        new_nodes.push(n);
        remap[id] = Some(new_id);
    }
    Graph {
        nodes: new_nodes,
        consts: new_consts,
        n_inputs: g.n_inputs,
        output: remap[g.output].expect("output is live"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::exec::{Exec, ExecMode};
    use crate::kernels::{BinOp, UnOp};

    /// Builds `tanh(relu(x*2 + noise_const) @ W)`-style graph exercising
    /// every pass.
    fn sample_graph() -> (Graph, Tensor) {
        let w = Param::new(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        let bias_a = Param::new(Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap());
        let bias_b = Param::new(Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap());
        let mut t = Exec::new(ExecMode::Trace, Device::cpu());
        let x = t.input(Tensor::phantom(&[1, 2])).unwrap();
        // const-foldable subgraph: bias = bias_a + bias_b
        let ba = t.param(&bias_a).unwrap();
        let bb = t.param(&bias_b).unwrap();
        let bias = t.add(ba, bb).unwrap();
        let wr = t.param(&w).unwrap();
        let y = t.matmul(x, wr).unwrap();
        let y = t.binary_row(BinOp::Add, y, bias).unwrap();
        // fusible chain
        let y = t.scalar(BinOp::Mul, y, 0.5).unwrap();
        let y = t.unary(UnOp::Tanh, y).unwrap();
        // dead code
        let _dead = t.relu(y).unwrap();
        let out = t.scalar(BinOp::Add, y, 1.0).unwrap();
        let g = t.finish_trace(out).unwrap();
        let input = Tensor::from_vec(vec![0.3, -0.7], &[1, 2]).unwrap();
        (g, input)
    }

    #[test]
    fn compiled_output_matches_uncompiled() {
        let (g, x) = sample_graph();
        let (expected, _) = g.run(std::slice::from_ref(&x)).unwrap();
        let compiled = compile(g, JitOptions::default()).unwrap();
        let (got, _) = compiled.run(std::slice::from_ref(&x)).unwrap();
        assert!(expected.max_abs_diff(&got).unwrap() < 1e-6);
    }

    #[test]
    fn jit_reduces_launches_and_never_increases_cost() {
        let (g, _) = sample_graph();
        let base = compile(g.clone(), JitOptions::none()).unwrap();
        let opt = compile(g, JitOptions::default()).unwrap();
        let b = base.cost().at_batch(1);
        let o = opt.cost().at_batch(1);
        assert!(o.launches < b.launches, "{} !< {}", o.launches, b.launches);
        assert!(o.bytes <= b.bytes);
        assert!(o.flops <= b.flops + 1.0);
    }

    #[test]
    fn const_fold_removes_weight_only_ops() {
        let (g, _) = sample_graph();
        let folded = const_fold(g).unwrap();
        // bias add became a const
        let const_count = folded
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, OpKind::Const(_)))
            .count();
        assert!(const_count >= 4, "expected folded const, got {const_count}");
        let binary_adds = folded
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, OpKind::Binary(BinOp::Add)))
            .count();
        assert_eq!(binary_adds, 0);
    }

    #[test]
    fn pre_transpose_rewrites_const_matmuls() {
        let (g, x) = sample_graph();
        let (expected, _) = g.run(std::slice::from_ref(&x)).unwrap();
        let g2 = pre_transpose(g).unwrap();
        assert!(g2.nodes.iter().any(|n| n.kind == OpKind::MatMulBT));
        assert!(!g2.nodes.iter().any(|n| n.kind == OpKind::MatMul));
        let (got, _) = g2.run(&[x]).unwrap();
        assert!(expected.max_abs_diff(&got).unwrap() < 1e-6);
    }

    #[test]
    fn fusion_preserves_semantics_on_branching_graphs() {
        // y is consumed twice: chain must NOT absorb it.
        let mut t = Exec::new(ExecMode::Trace, Device::cpu());
        let x = t.input(Tensor::phantom(&[4])).unwrap();
        let y = t.relu(x).unwrap();
        let a = t.tanh(y).unwrap();
        let b = t.sigmoid(y).unwrap();
        let out = t.add(a, b).unwrap();
        let g = t.finish_trace(out).unwrap();
        let input = Tensor::from_vec(vec![-1.0, 0.0, 0.5, 2.0], &[4]).unwrap();
        let (expected, _) = g.run(std::slice::from_ref(&input)).unwrap();
        let fused = fuse_elementwise(g).unwrap();
        let (got, _) = fused.run(&[input]).unwrap();
        assert!(expected.max_abs_diff(&got).unwrap() < 1e-6);
    }

    #[test]
    fn dce_drops_dead_nodes_only() {
        let (g, x) = sample_graph();
        let before = g.nodes.len();
        let (expected, _) = g.run(std::slice::from_ref(&x)).unwrap();
        let g2 = dce(g);
        assert!(g2.nodes.len() < before);
        let (got, _) = g2.run(&[x]).unwrap();
        assert!(expected.max_abs_diff(&got).unwrap() < 1e-6);
    }

    #[test]
    fn compiled_latency_scales_with_batch_sublinearly_on_gpu() {
        // A weight-dominated graph should amortise across a batch.
        let w = Param::new(Tensor::zeros(&[512, 512]));
        let mut t = Exec::new(ExecMode::Trace, Device::t4());
        let x = t.input(Tensor::phantom(&[1, 512])).unwrap();
        let wr = t.param(&w).unwrap();
        let y = t.matmul(x, wr).unwrap();
        let g = t.finish_trace(y).unwrap();
        let c = compile(g, JitOptions::default()).unwrap();
        let t4 = crate::device::DeviceProfile::gpu_t4();
        let l1 = c.latency(&t4, 1).as_secs_f64();
        let l64 = c.latency(&t4, 64).as_secs_f64();
        assert!(
            l64 < 64.0 * l1 * 0.25,
            "batching should amortise: {l1} vs {l64}"
        );
    }
}
