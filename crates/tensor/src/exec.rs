//! Execution context: eager, cost-only and tracing modes.
//!
//! Model forward passes are written once against [`Exec`]'s operator
//! methods and run in three modes:
//!
//! * [`ExecMode::Real`] — kernels execute immediately on dense data
//!   (PyTorch "eager" execution in the paper's terms),
//! * [`ExecMode::CostOnly`] — shapes propagate, costs accumulate, no data
//!   is touched; this is how catalogs of 10–20M items are priced without
//!   allocating their embedding tables,
//! * [`ExecMode::Trace`] — operations are recorded into a [`Graph`] for
//!   JIT optimisation (the analogue of `torch.jit.trace`).
//!
//! Data-dependent control flow ([`Exec::item`]) works in `Real` mode but
//! poisons tracing — exactly the reason the paper found LightSANs
//! impossible to JIT-optimise.

use crate::cost::CostTracker;
use crate::device::Device;
use crate::graph::{self, Graph, Node, OpKind, OpTimes};
use crate::kernels::{BinOp, UnOp};
use crate::param::{Param, ParamId};
use crate::tensor::{Tensor, TensorError};
use std::collections::HashMap;
use std::sync::Arc;

/// Execution mode of an [`Exec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Eager execution on dense data.
    Real,
    /// Shape/cost propagation without data.
    CostOnly,
    /// Graph capture.
    Trace,
}

/// Tunables for an [`Exec`] context.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// Intra-op parallelism request for the process-wide kernel pool
    /// (`None` keeps `ETUDE_THREADS` / detected parallelism). The pool
    /// is built once per process: the first context to run a kernel
    /// freezes the width, later requests are ignored.
    pub intra_op_threads: Option<usize>,
}

/// Handle to a tensor inside an [`Exec`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TRef(usize);

/// The standard inputs of an SBR model forward pass: a padded item-id
/// sequence, its validity mask and the index of the last real item.
#[derive(Debug, Clone, Copy)]
pub struct SessionInput {
    /// `[max_len]` bit-cast item ids (padded positions hold item 0).
    pub items: TRef,
    /// `[max_len]` mask: 1.0 for real positions, 0.0 for padding.
    pub mask: TRef,
    /// `[1]` bit-cast index of the last real position.
    pub last: TRef,
}

struct Entry {
    tensor: Arc<Tensor>,
    is_const: bool,
}

/// An execution context holding intermediate tensors and, in trace mode,
/// the graph being captured.
pub struct Exec {
    mode: ExecMode,
    device: Device,
    arena: Vec<Entry>,
    tracker: CostTracker,
    // Trace state: node per arena slot, plus captured const payloads.
    nodes: Vec<Node>,
    consts: HashMap<usize, Arc<Tensor>>,
    const_cache: HashMap<ParamId, TRef>,
    n_inputs: usize,
    // Per-op wall-time accounting, off unless enabled (Real mode only).
    op_times: Option<OpTimes>,
}

impl Exec {
    /// Creates an execution context with explicit [`ExecOptions`].
    pub fn with_options(mode: ExecMode, device: Device, options: ExecOptions) -> Exec {
        if let Some(threads) = options.intra_op_threads {
            crate::pool::configure_threads(threads);
        }
        Exec::new(mode, device)
    }

    /// Creates an execution context.
    pub fn new(mode: ExecMode, device: Device) -> Exec {
        Exec {
            mode,
            device,
            arena: Vec::new(),
            tracker: CostTracker::new(),
            nodes: Vec::new(),
            consts: HashMap::new(),
            const_cache: HashMap::new(),
            n_inputs: 0,
            op_times: None,
        }
    }

    /// Turns on per-op wall-time accounting ([`Exec::op_times`]). Only
    /// meaningful in [`ExecMode::Real`]; the other modes never execute
    /// kernels, so their buckets stay zero.
    pub fn enable_op_timing(&mut self) {
        self.op_times = Some(OpTimes::default());
    }

    /// Accumulated per-op wall time since [`Exec::enable_op_timing`], or
    /// `None` if timing was never enabled.
    pub fn op_times(&self) -> Option<OpTimes> {
        self.op_times
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The device this context models.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Accumulated cost of all executed operations (Real/CostOnly modes).
    pub fn cost(&self) -> &CostTracker {
        &self.tracker
    }

    /// Resets accumulated cost without discarding tensors.
    pub fn reset_cost(&mut self) {
        self.tracker.reset();
    }

    /// Borrows a tensor from the arena.
    pub fn tensor(&self, r: TRef) -> Result<&Tensor, TensorError> {
        self.arena
            .get(r.0)
            .map(|e| e.tensor.as_ref())
            .ok_or(TensorError::InvalidRef { index: r.0 })
    }

    /// Registers an external input tensor.
    pub fn input(&mut self, t: Tensor) -> Result<TRef, TensorError> {
        let pos = self.n_inputs;
        self.n_inputs += 1;
        let t = if self.mode == ExecMode::CostOnly {
            Tensor::phantom(t.shape())
        } else {
            t
        };
        let shape = t.shape().to_vec();
        let r = self.push_entry(Arc::new(t), false);
        if self.mode == ExecMode::Trace {
            self.nodes.push(Node {
                kind: OpKind::Input(pos),
                inputs: vec![],
                shape,
                cost: Default::default(),
            });
        }
        Ok(r)
    }

    /// Registers a model weight. In trace mode repeated registration of the
    /// same parameter returns the same constant node.
    pub fn param(&mut self, p: &Param) -> Result<TRef, TensorError> {
        if self.mode == ExecMode::Trace {
            if let Some(&r) = self.const_cache.get(&p.id()) {
                return Ok(r);
            }
        }
        let r = self.push_entry(p.shared(), true);
        if self.mode == ExecMode::Trace {
            self.nodes.push(Node {
                kind: OpKind::Const(p.id()),
                inputs: vec![],
                shape: p.shape().to_vec(),
                cost: Default::default(),
            });
            self.consts.insert(r.0, p.shared());
            self.const_cache.insert(p.id(), r);
        }
        Ok(r)
    }

    fn push_entry(&mut self, tensor: Arc<Tensor>, is_const: bool) -> TRef {
        self.arena.push(Entry { tensor, is_const });
        TRef(self.arena.len() - 1)
    }

    /// Core operator application shared by all op methods.
    pub fn apply(&mut self, kind: OpKind, operands: &[TRef]) -> Result<TRef, TensorError> {
        let shapes: Vec<&[usize]> = operands
            .iter()
            .map(|&r| self.tensor(r).map(|t| t.shape()))
            .collect::<Result<_, _>>()?;
        let out_shape = graph::infer_shape(&kind, &shapes)?;
        let const_flags: Vec<bool> = operands.iter().map(|&r| self.arena[r.0].is_const).collect();
        let cost = graph::op_cost(&kind, &shapes, &const_flags, &out_shape);

        match self.mode {
            ExecMode::Real | ExecMode::CostOnly => {
                self.tracker.record(cost);
                let inputs: Vec<&Tensor> = operands
                    .iter()
                    .map(|&r| self.arena[r.0].tensor.as_ref())
                    .collect();
                let timed_start = self.op_times.is_some().then(std::time::Instant::now);
                let out = if self.mode == ExecMode::CostOnly {
                    Tensor::phantom(&out_shape)
                } else {
                    graph::eval(&kind, &inputs, &out_shape)?
                };
                if let (Some(start), Some(times)) = (timed_start, self.op_times.as_mut()) {
                    times.add(&kind, start.elapsed());
                }
                Ok(self.push_entry(Arc::new(out), false))
            }
            ExecMode::Trace => {
                let node_inputs: Vec<usize> = operands.iter().map(|r| r.0).collect();
                self.nodes.push(Node {
                    kind,
                    inputs: node_inputs,
                    shape: out_shape.clone(),
                    cost,
                });
                Ok(self.push_entry(Arc::new(Tensor::phantom(&out_shape)), false))
            }
        }
    }

    /// Finalises tracing and returns the captured graph with `output` as
    /// its result node.
    pub fn finish_trace(self, output: TRef) -> Result<Graph, TensorError> {
        if self.mode != ExecMode::Trace {
            return Err(TensorError::Invalid("finish_trace requires Trace mode"));
        }
        if output.0 >= self.nodes.len() {
            return Err(TensorError::InvalidRef { index: output.0 });
        }
        Ok(Graph {
            nodes: self.nodes,
            consts: self.consts,
            n_inputs: self.n_inputs,
            output: output.0,
        })
    }

    /// Reads a scalar out of a tensor — data-dependent control flow.
    ///
    /// * `Real`: returns the value.
    /// * `CostOnly`: returns `0.0` (control flow proceeds along the
    ///   default branch; documented behaviour for cost estimation).
    /// * `Trace`: fails with [`TensorError::NotTraceable`] — a graph cannot
    ///   capture a branch on runtime data. This is the mechanism behind
    ///   the paper's LightSANs JIT failure.
    pub fn item(&self, r: TRef, index: usize) -> Result<f32, TensorError> {
        match self.mode {
            ExecMode::Real => self.tensor(r)?.get(index),
            ExecMode::CostOnly => Ok(0.0),
            ExecMode::Trace => Err(TensorError::NotTraceable { op: "item" }),
        }
    }

    // ------------------------------------------------------------------
    // Operator sugar.
    // ------------------------------------------------------------------

    /// Matrix multiplication `[m,k] x [k,n]`.
    pub fn matmul(&mut self, a: TRef, b: TRef) -> Result<TRef, TensorError> {
        self.apply(OpKind::MatMul, &[a, b])
    }

    /// Matrix multiplication with pre-transposed right operand `[n,k]`.
    pub fn matmul_bt(&mut self, a: TRef, bt: TRef) -> Result<TRef, TensorError> {
        self.apply(OpKind::MatMulBT, &[a, bt])
    }

    /// Elementwise addition.
    pub fn add(&mut self, a: TRef, b: TRef) -> Result<TRef, TensorError> {
        self.apply(OpKind::Binary(BinOp::Add), &[a, b])
    }

    /// Elementwise subtraction.
    pub fn sub(&mut self, a: TRef, b: TRef) -> Result<TRef, TensorError> {
        self.apply(OpKind::Binary(BinOp::Sub), &[a, b])
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: TRef, b: TRef) -> Result<TRef, TensorError> {
        self.apply(OpKind::Binary(BinOp::Mul), &[a, b])
    }

    /// Broadcast a row vector over matrix rows with `op`.
    pub fn binary_row(&mut self, op: BinOp, a: TRef, row: TRef) -> Result<TRef, TensorError> {
        self.apply(OpKind::BinaryRow(op), &[a, row])
    }

    /// Elementwise binary against a scalar.
    pub fn scalar(&mut self, op: BinOp, a: TRef, s: f32) -> Result<TRef, TensorError> {
        self.apply(OpKind::BinaryScalar(op, s), &[a])
    }

    /// Elementwise unary function.
    pub fn unary(&mut self, op: UnOp, a: TRef) -> Result<TRef, TensorError> {
        self.apply(OpKind::Unary(op), &[a])
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: TRef) -> Result<TRef, TensorError> {
        self.unary(UnOp::Sigmoid, a)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: TRef) -> Result<TRef, TensorError> {
        self.unary(UnOp::Tanh, a)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: TRef) -> Result<TRef, TensorError> {
        self.unary(UnOp::Relu, a)
    }

    /// Gaussian error linear unit.
    pub fn gelu(&mut self, a: TRef) -> Result<TRef, TensorError> {
        self.unary(UnOp::Gelu, a)
    }

    /// Row-wise softmax.
    pub fn softmax(&mut self, a: TRef) -> Result<TRef, TensorError> {
        self.apply(OpKind::Softmax, &[a])
    }

    /// Row-wise layer normalisation with affine parameters.
    pub fn layernorm(&mut self, a: TRef, gamma: TRef, beta: TRef) -> Result<TRef, TensorError> {
        self.apply(OpKind::LayerNorm { eps: 1e-5 }, &[a, gamma, beta])
    }

    /// Embedding lookup.
    pub fn embedding(&mut self, table: TRef, ids: TRef) -> Result<TRef, TensorError> {
        self.apply(OpKind::Embedding, &[table, ids])
    }

    /// Concatenation along the last dimension.
    pub fn concat(&mut self, a: TRef, b: TRef) -> Result<TRef, TensorError> {
        self.apply(OpKind::Concat, &[a, b])
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: TRef) -> Result<TRef, TensorError> {
        self.apply(OpKind::Transpose, &[a])
    }

    /// Sum over rows of a matrix.
    pub fn sum_rows(&mut self, a: TRef) -> Result<TRef, TensorError> {
        self.apply(OpKind::SumRows, &[a])
    }

    /// Mean over rows of a matrix.
    pub fn mean_rows(&mut self, a: TRef) -> Result<TRef, TensorError> {
        let rows = self.tensor(a)?.shape()[0] as f32;
        let s = self.sum_rows(a)?;
        self.scalar(BinOp::Div, s, rows)
    }

    /// One GRU cell step.
    pub fn gru_cell(
        &mut self,
        x: TRef,
        h: TRef,
        w_ih: TRef,
        w_hh: TRef,
        b_ih: TRef,
        b_hh: TRef,
    ) -> Result<TRef, TensorError> {
        self.apply(OpKind::GruCell, &[x, h, w_ih, w_hh, b_ih, b_hh])
    }

    /// Select a matrix row by a runtime (bit-cast) index tensor.
    pub fn gather_row(&mut self, m: TRef, idx: TRef) -> Result<TRef, TensorError> {
        self.apply(OpKind::GatherRow, &[m, idx])
    }

    /// Top-k over a score vector; returns a `[2,k]` tensor of bit-cast
    /// indices (row 0) and scores (row 1).
    pub fn topk(&mut self, scores: TRef, k: usize) -> Result<TRef, TensorError> {
        self.apply(OpKind::TopK { k }, &[scores])
    }

    /// Fused MIPS decode: scores every row of `table` (`[c,d]`) against
    /// `s` (`[d]`) and selects the top `k` in one streaming pass,
    /// without materialising the `[c]` score vector. Returns the same
    /// `[2,k]` layout as [`Exec::topk`].
    pub fn score_topk(&mut self, table: TRef, s: TRef, k: usize) -> Result<TRef, TensorError> {
        self.apply(OpKind::ScoreTopK { k }, &[table, s])
    }

    /// Dense scatter-add into a full catalog vector (RepeatNet quirk).
    pub fn scatter_add_dense(
        &mut self,
        ids: TRef,
        vals: TRef,
        c: usize,
    ) -> Result<TRef, TensorError> {
        self.apply(OpKind::ScatterAddDense { c }, &[ids, vals])
    }

    /// Marks a value as produced by host-side code (SR-GNN/GC-SAN quirk).
    pub fn host_op(&mut self, a: TRef) -> Result<TRef, TensorError> {
        self.apply(OpKind::HostOp, &[a])
    }

    /// Reshape to a new shape of equal element count.
    pub fn reshape(&mut self, a: TRef, shape: &[usize]) -> Result<TRef, TensorError> {
        self.apply(OpKind::Reshape(shape.to_vec()), &[a])
    }

    /// Contiguous column slice of a matrix.
    pub fn slice_cols(&mut self, a: TRef, start: usize, end: usize) -> Result<TRef, TensorError> {
        self.apply(OpKind::SliceCols { start, end }, &[a])
    }

    /// Contiguous row slice of a matrix.
    pub fn slice_rows(&mut self, a: TRef, start: usize, end: usize) -> Result<TRef, TensorError> {
        self.apply(OpKind::SliceRows { start, end }, &[a])
    }

    /// Builds the session-graph adjacency matrix (SR-GNN / GC-SAN). With
    /// `host`, the construction is modelled as host-side NumPy code.
    pub fn session_graph(
        &mut self,
        ids: TRef,
        mask: TRef,
        outgoing: bool,
        host: bool,
    ) -> Result<TRef, TensorError> {
        self.apply(OpKind::SessionGraph { outgoing, host }, &[ids, mask])
    }

    /// Materialises dense one-hot rows over the catalog (RepeatNet quirk).
    pub fn one_hot_rows(&mut self, ids: TRef, c: usize) -> Result<TRef, TensorError> {
        self.apply(OpKind::OneHotRows { c }, &[ids])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(mode: ExecMode) -> Exec {
        Exec::new(mode, Device::cpu())
    }

    #[test]
    fn eager_matmul_computes() {
        let mut e = ctx(ExecMode::Real);
        let a = e
            .input(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap())
            .unwrap();
        let w = Param::new(Tensor::from_vec(vec![3.0, 0.0, 0.0, 3.0], &[2, 2]).unwrap());
        let wr = e.param(&w).unwrap();
        let y = e.matmul(a, wr).unwrap();
        assert_eq!(e.tensor(y).unwrap().as_slice().unwrap(), &[3.0, 6.0]);
        assert_eq!(e.cost().ops(), 1);
        assert!(e.cost().total().flops > 0.0);
    }

    #[test]
    fn cost_only_mode_never_touches_data() {
        let mut e = ctx(ExecMode::CostOnly);
        // A "huge" input that would be expensive to materialise is passed
        // as phantom via input() conversion.
        let a = e.input(Tensor::phantom(&[1, 64])).unwrap();
        let w = Param::new(Tensor::zeros(&[64, 64]));
        let wr = e.param(&w).unwrap();
        let y = e.matmul(a, wr).unwrap();
        assert!(e.tensor(y).unwrap().is_phantom());
        assert!(e.cost().total().flops > 0.0);
    }

    #[test]
    fn cost_only_matches_real_cost() {
        let run = |mode: ExecMode| {
            let mut e = ctx(mode);
            let a = e
                .input(Tensor::from_vec(vec![0.5; 8], &[1, 8]).unwrap())
                .unwrap();
            let w = Param::new(Tensor::zeros(&[8, 8]));
            let wr = e.param(&w).unwrap();
            let y = e.matmul(a, wr).unwrap();
            let y = e.sigmoid(y).unwrap();
            let _ = y;
            e.cost().total()
        };
        let real = run(ExecMode::Real);
        let phantom = run(ExecMode::CostOnly);
        assert_eq!(real, phantom);
    }

    #[test]
    fn trace_captures_graph_and_replays() {
        let w = Param::new(Tensor::from_vec(vec![2.0, 0.0, 0.0, 2.0], &[2, 2]).unwrap());
        let mut t = ctx(ExecMode::Trace);
        let x = t.input(Tensor::phantom(&[1, 2])).unwrap();
        let wr = t.param(&w).unwrap();
        let y = t.matmul(x, wr).unwrap();
        let y = t.relu(y).unwrap();
        let g = t.finish_trace(y).unwrap();
        assert_eq!(g.n_inputs, 1);
        let (out, cost) = g
            .run(&[Tensor::from_vec(vec![-1.0, 3.0], &[1, 2]).unwrap()])
            .unwrap();
        assert_eq!(out.as_slice().unwrap(), &[0.0, 6.0]);
        assert_eq!(cost.launches, 2);
    }

    #[test]
    fn trace_dedups_repeated_params() {
        let w = Param::new(Tensor::zeros(&[2, 2]));
        let mut t = ctx(ExecMode::Trace);
        let a = t.param(&w).unwrap();
        let b = t.param(&w).unwrap();
        assert_eq!(a, b);
        let g = t.finish_trace(a).unwrap();
        assert_eq!(g.nodes.len(), 1);
    }

    #[test]
    fn item_reads_in_real_mode_only() {
        let mut r = ctx(ExecMode::Real);
        let x = r.input(Tensor::from_vec(vec![7.0], &[1]).unwrap()).unwrap();
        assert_eq!(r.item(x, 0).unwrap(), 7.0);

        let mut c = ctx(ExecMode::CostOnly);
        let x = c.input(Tensor::zeros(&[1])).unwrap();
        assert_eq!(c.item(x, 0).unwrap(), 0.0);

        let mut t = ctx(ExecMode::Trace);
        let x = t.input(Tensor::zeros(&[1])).unwrap();
        assert!(matches!(
            t.item(x, 0),
            Err(TensorError::NotTraceable { .. })
        ));
    }

    #[test]
    fn traced_graph_cost_matches_eager_cost() {
        let w = Param::new(Tensor::zeros(&[4, 4]));
        let build = |e: &mut Exec| {
            let x = e.input(Tensor::zeros(&[1, 4])).unwrap();
            let wr = e.param(&w).unwrap();
            let y = e.matmul(x, wr).unwrap();
            e.tanh(y).unwrap()
        };
        let mut eager = ctx(ExecMode::Real);
        build(&mut eager);
        let mut tr = ctx(ExecMode::Trace);
        let out = build(&mut tr);
        let g = tr.finish_trace(out).unwrap();
        let eager_cost = eager.cost().total();
        let graph_cost = g.total_cost().at_batch(1);
        assert_eq!(eager_cost.flops, graph_cost.flops);
        assert_eq!(eager_cost.launches, graph_cost.launches);
        assert_eq!(eager_cost.bytes, graph_cost.bytes);
    }

    #[test]
    fn mean_rows_divides_by_row_count() {
        let mut e = ctx(ExecMode::Real);
        let a = e
            .input(Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[2, 2]).unwrap())
            .unwrap();
        let m = e.mean_rows(a).unwrap();
        assert_eq!(e.tensor(m).unwrap().as_slice().unwrap(), &[3.0, 5.0]);
    }

    #[test]
    fn topk_returns_bitcast_indices() {
        let mut e = ctx(ExecMode::Real);
        let s = e
            .input(Tensor::from_vec(vec![0.2, 0.9, 0.4], &[3]).unwrap())
            .unwrap();
        let t = e.topk(s, 2).unwrap();
        let out = e.tensor(t).unwrap();
        assert_eq!(out.shape(), &[2, 2]);
        let ids: Vec<u32> = out.as_slice().unwrap()[..2]
            .iter()
            .map(|&x| crate::f32_to_id(x))
            .collect();
        assert_eq!(ids, vec![1, 2]);
    }
}
