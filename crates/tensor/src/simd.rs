//! Explicit-width SIMD kernel layer.
//!
//! The MIPS hot path (`score · catalog row` over millions of rows) cannot
//! rely on the autovectorizer: the seed kernels compile against the
//! x86-64 *baseline* (SSE2, no FMA), so the scan runs 4-wide without
//! fused multiply-adds. This module provides the explicit lane layer the
//! rest of `etude-tensor` builds on:
//!
//! * every kernel is written **once** against fixed-width
//!   `[f32; LANES]` blocks (a shape the vectorizer cannot miss), as an
//!   `#[inline(always)]` generic implementation,
//! * the implementation is instantiated twice: a plain build (the
//!   *scalar* backend — `f32::mul_add` per lane) and inside
//!   `#[target_feature(enable = "avx2,fma")]` wrappers (the *wide*
//!   backend — the same code compiled to 8-wide `vfmadd`),
//! * the backend is picked **once per process** ([`active`]): runtime
//!   CPU detection, overridable with `ETUDE_SIMD=scalar|wide|auto`, and
//!   the detected ISA name / lane width are recorded for cost tracking
//!   and bench metadata.
//!
//! ## Determinism contract
//!
//! Both backends execute the *identical* sequence of IEEE-754
//! operations: `f32::mul_add` is a single-rounding fused multiply-add on
//! every backend (libm `fmaf` is correctly rounded, hardware `vfmadd` is
//! the same function), blocks use a fixed two-accumulator layout with a
//! fixed pairwise reduction tree, and odd lengths are handled by **one
//! zero-padded masked epilogue block** (`fma(0, 0, acc) == acc`) rather
//! than a per-element scalar tail. Consequently `dot`, `matmul`,
//! `matmul_bt` and the fused [`score_rows`] scan are **bit-identical**
//! across backends and across each other for a shared `(row, query)`
//! pair — the top-k selection downstream needs no tolerance gate.
//!
//! Transcendentals ([`exp_f32`], [`sigmoid_f32`], [`tanh_f32`],
//! [`gelu_f32`]) are shared polynomial implementations (Cephes-style
//! `expf`, ~2 ulp) used by *both* the vectorized elementwise kernels and
//! the scalar `UnOp::apply` path (JIT fusion), so eager, fused and wide
//! execution agree bitwise. Accuracy vs `std` (`x.exp()` etc.) is
//! bounded at ≤ 4 ulp — the tolerance policy documented in DESIGN.md
//! §12 and enforced by the `simd_equivalence` proptests.

use std::ops::Range;
use std::sync::OnceLock;

use crate::kernels::{BinOp, UnOp};

/// Lane count of one SIMD block: 8 × f32 = one AVX2 `ymm` register.
/// The scalar backend processes the same 8-wide blocks one lane at a
/// time, which is what makes the two backends bit-identical.
pub const LANES: usize = 8;

/// One fixed-width register block.
type Block = [f32; LANES];

/// Maximum reduction length for which the int8 dot's f32-lane
/// accumulation is exact: every partial sum of `i8 × i8` products stays
/// below 2^24 (`1024 · 127 · 127 < 2^24`), so FMA order cannot round.
/// Longer rows fall back to a plain `i32` loop.
pub const Q8_EXACT_DIM: usize = 1024;

// ----------------------------------------------------------------------
// Backend selection.
// ----------------------------------------------------------------------

/// Instruction-set backend the process dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Portable fallback: same block algorithm, one lane at a time.
    Scalar,
    /// AVX2 + FMA, 8 × f32 per instruction (x86-64 only).
    Avx2Fma,
}

impl Isa {
    /// Stable name for logs / bench metadata.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2Fma => "avx2+fma",
        }
    }

    /// Effective f32 lanes per instruction (1 for the scalar backend).
    pub fn lanes(self) -> usize {
        match self {
            Isa::Scalar => 1,
            Isa::Avx2Fma => LANES,
        }
    }
}

static ACTIVE: OnceLock<Isa> = OnceLock::new();

/// The backend every kernel in this module dispatches to, detected once
/// per process. `ETUDE_SIMD=scalar` forces the fallback; `wide`/`auto`
/// use the widest ISA the CPU supports (forcing `wide` on unsupported
/// hardware would be UB, so it degrades to detection).
pub fn active() -> Isa {
    *ACTIVE.get_or_init(detect)
}

fn detect() -> Isa {
    if let Ok(v) = std::env::var("ETUDE_SIMD") {
        if matches!(v.trim(), "scalar" | "off" | "0") {
            return Isa::Scalar;
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Isa::Avx2Fma;
        }
    }
    Isa::Scalar
}

/// Name of the active backend (recorded in cost tracking and benches).
pub fn isa_name() -> &'static str {
    active().name()
}

/// Effective lane width of the active backend.
pub fn lane_width() -> usize {
    active().lanes()
}

// ----------------------------------------------------------------------
// Block primitives (shared by both backends).
// ----------------------------------------------------------------------

#[inline(always)]
fn load_block(src: &[f32], p: usize) -> Block {
    let mut b = [0.0f32; LANES];
    b.copy_from_slice(&src[p..p + LANES]);
    b
}

/// Zero-padded partial block: the masked epilogue load. Padding lanes
/// contribute `fma(0, 0, acc) == acc` to the accumulators, so one
/// full-width FMA step replaces the per-element tail branch.
#[inline(always)]
fn load_block_tail(src: &[f32], p: usize, len: usize) -> Block {
    let mut b = [0.0f32; LANES];
    b[..len - p].copy_from_slice(&src[p..len]);
    b
}

#[inline(always)]
fn fma_block(acc: &mut Block, a: &Block, b: &Block) {
    for l in 0..LANES {
        acc[l] = a[l].mul_add(b[l], acc[l]);
    }
}

/// Fixed pairwise reduction tree over one block; part of the
/// determinism contract (never reassociated).
#[inline(always)]
fn hsum_block(acc: &Block) -> f32 {
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))
}

/// Core reduction: `R` row slices against one shared right-hand fetch.
/// Two independent accumulator blocks per row break the FMA latency
/// chain; `fetch` supplies a full block at `p`, `fetch_tail` the
/// zero-padded final block. Register tiling (`R = 4` in [`matmul_bt`]
/// and the fused scan) amortises the right-hand loads across rows
/// without changing any row's accumulation order.
#[inline(always)]
fn dot_rows_core<const R: usize>(
    rows: &[&[f32]; R],
    len: usize,
    fetch: impl Fn(usize) -> Block,
    fetch_tail: impl Fn(usize) -> Block,
) -> [f32; R] {
    let mut acc0 = [[0.0f32; LANES]; R];
    let mut acc1 = [[0.0f32; LANES]; R];
    let mut p = 0;
    while p + 2 * LANES <= len {
        let b0 = fetch(p);
        let b1 = fetch(p + LANES);
        for r in 0..R {
            fma_block(&mut acc0[r], &load_block(rows[r], p), &b0);
            fma_block(&mut acc1[r], &load_block(rows[r], p + LANES), &b1);
        }
        p += 2 * LANES;
    }
    if p + LANES <= len {
        let b0 = fetch(p);
        for r in 0..R {
            fma_block(&mut acc0[r], &load_block(rows[r], p), &b0);
        }
        p += LANES;
    }
    if p < len {
        let bt = fetch_tail(p);
        for r in 0..R {
            fma_block(&mut acc1[r], &load_block_tail(rows[r], p, len), &bt);
        }
    }
    let mut out = [0.0f32; R];
    for r in 0..R {
        for l in 0..LANES {
            acc0[r][l] += acc1[r][l];
        }
        out[r] = hsum_block(&acc0[r]);
    }
    out
}

#[inline(always)]
fn dot_impl(a: &[f32], b: &[f32]) -> f32 {
    let len = a.len();
    dot_rows_core(
        &[a],
        len,
        |p| load_block(b, p),
        |p| load_block_tail(b, p, len),
    )[0]
}

#[inline(always)]
fn dot4_impl(rows: &[&[f32]; 4], b: &[f32]) -> [f32; 4] {
    let len = b.len();
    dot_rows_core(
        rows,
        len,
        |p| load_block(b, p),
        |p| load_block_tail(b, p, len),
    )
}

/// `Σ a[p] · b[offset + p·stride]`: the column-strided case of
/// [`matmul`](crate::kernels::matmul), gathered into blocks so the
/// accumulation order equals the contiguous [`dot`].
#[inline(always)]
fn dot_strided_impl(a: &[f32], b: &[f32], offset: usize, stride: usize) -> f32 {
    let len = a.len();
    let gather = |p: usize| {
        let mut blk = [0.0f32; LANES];
        for (l, v) in blk.iter_mut().enumerate() {
            *v = b[offset + (p + l) * stride];
        }
        blk
    };
    let gather_tail = |p: usize| {
        let mut blk = [0.0f32; LANES];
        for (l, v) in blk.iter_mut().enumerate().take(len - p) {
            *v = b[offset + (p + l) * stride];
        }
        blk
    };
    dot_rows_core(&[a], len, gather, gather_tail)[0]
}

/// Streaming scan: `sink(i, row_i · query)` for every row in `rows`, in
/// ascending row order. Rows are tiled four at a time so the query
/// blocks are fetched once per tile; each row's sum is bit-identical to
/// [`dot`]. This is the kernel under the fused score+top-k — the sink
/// maintains the running heap, so the C-length score vector is never
/// materialised.
#[inline(always)]
fn score_rows_impl(
    table: &[f32],
    d: usize,
    query: &[f32],
    rows: Range<usize>,
    sink: &mut impl FnMut(usize, f32),
) {
    let mut i = rows.start;
    while i + 4 <= rows.end {
        let base = i * d;
        let s = dot4_impl(
            &[
                &table[base..base + d],
                &table[base + d..base + 2 * d],
                &table[base + 2 * d..base + 3 * d],
                &table[base + 3 * d..base + 4 * d],
            ],
            query,
        );
        sink(i, s[0]);
        sink(i + 1, s[1]);
        sink(i + 2, s[2]);
        sink(i + 3, s[3]);
        i += 4;
    }
    while i < rows.end {
        sink(i, dot_impl(&table[i * d..(i + 1) * d], query));
        i += 1;
    }
}

/// Int8 row scan for the quantized index: `sink(i, Σ row[p]·q[p])` with
/// the products accumulated in f32 lanes. All intermediates are exact
/// integers below 2^24 (guarded by [`Q8_EXACT_DIM`] in the caller), so
/// the result equals the reference `i32` accumulation bit-for-bit.
#[inline(always)]
fn score_rows_q8_impl(
    data: &[i8],
    d: usize,
    q: &[i32],
    rows: Range<usize>,
    sink: &mut impl FnMut(usize, f32),
) {
    // Stack-resident zero-padded f32 copy of the query: keeps the scan
    // allocation-free (the serving path guarantees zero steady-state
    // allocations) and gives the tail a full zero block to multiply.
    assert!(d <= Q8_EXACT_DIM, "q8 kernel requires d <= {Q8_EXACT_DIM}");
    let mut qf = [0.0f32; Q8_EXACT_DIM + LANES];
    for (dst, &v) in qf.iter_mut().zip(q) {
        *dst = v as f32;
    }
    for i in rows {
        let row = &data[i * d..(i + 1) * d];
        let mut acc = [0.0f32; LANES];
        let mut p = 0;
        while p + LANES <= d {
            for l in 0..LANES {
                acc[l] = (row[p + l] as f32).mul_add(qf[p + l], acc[l]);
            }
            p += LANES;
        }
        if p < d {
            let mut blk = [0.0f32; LANES];
            for (l, v) in blk.iter_mut().enumerate().take(d - p) {
                *v = row[p + l] as f32;
            }
            // qf is zero-padded to a full block, so this is the same
            // masked epilogue as the f32 kernels.
            for l in 0..LANES {
                acc[l] = blk[l].mul_add(qf[p + l], acc[l]);
            }
        }
        sink(i, hsum_block(&acc));
    }
}

#[inline(always)]
fn matmul_bt_impl(a: &[f32], b_t: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for j in 0..n {
        let brow = &b_t[j * k..(j + 1) * k];
        let mut i = 0;
        while i + 4 <= m {
            let s = dot4_impl(
                &[
                    &a[i * k..(i + 1) * k],
                    &a[(i + 1) * k..(i + 2) * k],
                    &a[(i + 2) * k..(i + 3) * k],
                    &a[(i + 3) * k..(i + 4) * k],
                ],
                brow,
            );
            for (r, &v) in s.iter().enumerate() {
                out[(i + r) * n + j] = v;
            }
            i += 4;
        }
        while i < m {
            out[i * n + j] = dot_impl(&a[i * k..(i + 1) * k], brow);
            i += 1;
        }
    }
}

#[inline(always)]
fn matmul_strided_impl(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert!(n > 1);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            out[i * n + j] = dot_strided_impl(arow, b, j, n);
        }
    }
}

// ----------------------------------------------------------------------
// Shared polynomial transcendentals.
// ----------------------------------------------------------------------

/// Branch-free Cephes-style `expf` (~2 ulp), used by every backend and
/// by `UnOp::apply`, so eager, vectorized and JIT-fused paths agree
/// bitwise. Inputs are clamped to `[-87, 88]` (results saturate at
/// ~1.6e-38 / ~1.65e38 instead of producing denormals / `inf`).
#[inline(always)]
pub fn exp_f32(x: f32) -> f32 {
    const LOG2EF: f32 = std::f32::consts::LOG2_E;
    // Exact hi/lo split of ln(2): the hi part is 0x1.63p-1, written out
    // in full so the split stays visibly exact.
    #[allow(clippy::excessive_precision)]
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    // 1.5·2^23: adding and subtracting rounds to the nearest integer
    // (ties-to-even) without a rounding instruction, so the sequence
    // vectorizes on every backend.
    const ROUND_MAGIC: f32 = 12_582_912.0;
    let x = x.clamp(-87.0, 88.0);
    let n = (x * LOG2EF + ROUND_MAGIC) - ROUND_MAGIC;
    let r = n.mul_add(-LN2_HI, x);
    let r = n.mul_add(-LN2_LO, r);
    let mut p = 1.987_569_1e-4f32;
    p = p.mul_add(r, 1.398_199_9e-3);
    p = p.mul_add(r, 8.333_452e-3);
    p = p.mul_add(r, 4.166_579_6e-2);
    p = p.mul_add(r, 1.666_666_6e-1);
    p = p.mul_add(r, 0.5);
    let y = p.mul_add(r * r, r) + 1.0;
    let scale = f32::from_bits((((n as i32) + 127) as u32) << 23);
    y * scale
}

/// Logistic sigmoid on the shared [`exp_f32`].
#[inline(always)]
pub fn sigmoid_f32(x: f32) -> f32 {
    1.0 / (1.0 + exp_f32(-x))
}

/// Hyperbolic tangent on the shared [`exp_f32`]; saturates to ±1.
#[inline(always)]
pub fn tanh_f32(x: f32) -> f32 {
    let e = exp_f32(2.0 * x);
    (e - 1.0) / (e + 1.0)
}

/// GELU (tanh approximation) on the shared [`tanh_f32`].
#[inline(always)]
pub fn gelu_f32(x: f32) -> f32 {
    let c = (2.0f32 / std::f32::consts::PI).sqrt();
    0.5 * x * (1.0 + tanh_f32(c * (x + 0.044_715 * x * x * x)))
}

// ----------------------------------------------------------------------
// Elementwise map cores.
// ----------------------------------------------------------------------

#[inline(always)]
fn unary_impl(op: UnOp, a: &[f32], out: &mut [f32]) {
    // One match per call (not per element): each arm is a clean
    // vectorizable loop over a single scalar function.
    match op {
        UnOp::Sigmoid => map(a, out, sigmoid_f32),
        UnOp::Tanh => map(a, out, tanh_f32),
        UnOp::Relu => map(a, out, |x| x.max(0.0)),
        UnOp::Gelu => map(a, out, gelu_f32),
        UnOp::Exp => map(a, out, exp_f32),
        UnOp::Neg => map(a, out, |x| -x),
        UnOp::Sqrt => map(a, out, |x| x.sqrt()),
        UnOp::Recip => map(a, out, |x| 1.0 / x),
    }
}

#[inline(always)]
fn map(a: &[f32], out: &mut [f32], f: impl Fn(f32) -> f32) {
    for (o, &x) in out.iter_mut().zip(a) {
        *o = f(x);
    }
}

#[inline(always)]
fn binary_impl(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
    match op {
        BinOp::Add => zip(a, b, out, |x, y| x + y),
        BinOp::Sub => zip(a, b, out, |x, y| x - y),
        BinOp::Mul => zip(a, b, out, |x, y| x * y),
        BinOp::Div => zip(a, b, out, |x, y| x / y),
        BinOp::Max => zip(a, b, out, |x, y| x.max(y)),
    }
}

#[inline(always)]
fn zip(a: &[f32], b: &[f32], out: &mut [f32], f: impl Fn(f32, f32) -> f32) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = f(x, y);
    }
}

#[inline(always)]
fn binary_scalar_impl(op: BinOp, a: &[f32], s: f32, out: &mut [f32]) {
    match op {
        BinOp::Add => map(a, out, |x| x + s),
        BinOp::Sub => map(a, out, |x| x - s),
        BinOp::Mul => map(a, out, |x| x * s),
        BinOp::Div => map(a, out, |x| x / s),
        BinOp::Max => map(a, out, |x| x.max(s)),
    }
}

#[inline(always)]
fn exp_sub_impl(a: &[f32], max: f32, out: &mut [f32]) {
    map(a, out, |x| exp_f32(x - max));
}

#[inline(always)]
fn div_inplace_impl(buf: &mut [f32], s: f32) {
    for v in buf.iter_mut() {
        *v /= s;
    }
}

/// `out[j] = (a[j] - mean) * inv * gamma[j] + beta[j]`: the layernorm
/// affine pass, per-element identical to the pre-SIMD kernel.
#[inline(always)]
fn layernorm_affine_impl(
    a: &[f32],
    gamma: &[f32],
    beta: &[f32],
    out: &mut [f32],
    mean: f32,
    inv: f32,
) {
    for (j, (o, &x)) in out.iter_mut().zip(a).enumerate() {
        *o = (x - mean) * inv * gamma[j] + beta[j];
    }
}

// ----------------------------------------------------------------------
// Wide backend: the same implementations compiled with AVX2+FMA.
// ----------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod wide {
    use super::*;

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        dot_impl(a, b)
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn score_rows<F: FnMut(usize, f32)>(
        table: &[f32],
        d: usize,
        query: &[f32],
        rows: Range<usize>,
        sink: &mut F,
    ) {
        score_rows_impl(table, d, query, rows, sink)
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn score_rows_q8<F: FnMut(usize, f32)>(
        data: &[i8],
        d: usize,
        q: &[i32],
        rows: Range<usize>,
        sink: &mut F,
    ) {
        score_rows_q8_impl(data, d, q, rows, sink)
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn matmul_bt(a: &[f32], b_t: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        matmul_bt_impl(a, b_t, out, m, k, n)
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn matmul_strided(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        matmul_strided_impl(a, b, out, m, k, n)
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn unary(op: UnOp, a: &[f32], out: &mut [f32]) {
        unary_impl(op, a, out)
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn binary(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
        binary_impl(op, a, b, out)
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn binary_scalar(op: BinOp, a: &[f32], s: f32, out: &mut [f32]) {
        binary_scalar_impl(op, a, s, out)
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn exp_sub(a: &[f32], max: f32, out: &mut [f32]) {
        exp_sub_impl(a, max, out)
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn div_inplace(buf: &mut [f32], s: f32) {
        div_inplace_impl(buf, s)
    }

    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn layernorm_affine(
        a: &[f32],
        gamma: &[f32],
        beta: &[f32],
        out: &mut [f32],
        mean: f32,
        inv: f32,
    ) {
        layernorm_affine_impl(a, gamma, beta, out, mean, inv)
    }
}

// ----------------------------------------------------------------------
// Dispatched public API.
// ----------------------------------------------------------------------

macro_rules! dispatch {
    ($wide:expr, $fallback:expr) => {
        match active() {
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2Fma => unsafe { $wide },
            _ => $fallback,
        }
    };
}

/// Fused-multiply-add dot product; bit-identical across backends.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    dispatch!(wide::dot(a, b), dot_impl(a, b))
}

/// The scalar-backend [`dot`]: the bit-identity reference used by the
/// equivalence proptests regardless of the dispatched backend.
#[inline]
pub fn dot_scalar_ref(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    dot_impl(a, b)
}

/// Streaming row scores over `table[rows]` (row-major `[c, d]`), in
/// ascending row order; see `score_rows_impl` for the tiling.
#[inline]
pub fn score_rows(
    table: &[f32],
    d: usize,
    query: &[f32],
    rows: Range<usize>,
    mut sink: impl FnMut(usize, f32),
) {
    debug_assert_eq!(query.len(), d);
    debug_assert!(rows.end * d <= table.len());
    dispatch!(
        wide::score_rows(table, d, query, rows, &mut sink),
        score_rows_impl(table, d, query, rows, &mut sink)
    )
}

/// Scalar-backend [`score_rows`] reference for the equivalence tests.
#[inline]
pub fn score_rows_scalar_ref(
    table: &[f32],
    d: usize,
    query: &[f32],
    rows: Range<usize>,
    mut sink: impl FnMut(usize, f32),
) {
    score_rows_impl(table, d, query, rows, &mut sink)
}

/// Streaming int8 row scores (raw `Σ row·q` as an exact-integer f32);
/// callers must guard `d <= Q8_EXACT_DIM` (checked here in debug).
#[inline]
pub fn score_rows_q8(
    data: &[i8],
    d: usize,
    q: &[i32],
    rows: Range<usize>,
    mut sink: impl FnMut(usize, f32),
) {
    debug_assert!(d <= Q8_EXACT_DIM);
    debug_assert_eq!(q.len(), d);
    dispatch!(
        wide::score_rows_q8(data, d, q, rows, &mut sink),
        score_rows_q8_impl(data, d, q, rows, &mut sink)
    )
}

/// `out[m,n] = a[m,k] · b_t[n,k]^T`, 4-row register tiled.
#[inline]
pub fn matmul_bt(a: &[f32], b_t: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    dispatch!(
        wide::matmul_bt(a, b_t, out, m, k, n),
        matmul_bt_impl(a, b_t, out, m, k, n)
    )
}

/// `out[m,n] = a[m,k] · b[k,n]` for `n > 1` (column gathers); `n == 1`
/// is routed through [`score_rows`] by the caller.
#[inline]
pub fn matmul_strided(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    dispatch!(
        wide::matmul_strided(a, b, out, m, k, n),
        matmul_strided_impl(a, b, out, m, k, n)
    )
}

/// Vectorized elementwise unary map (same scalar functions as
/// `UnOp::apply`, so results are backend-independent).
#[inline]
pub fn unary(op: UnOp, a: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    dispatch!(wide::unary(op, a, out), unary_impl(op, a, out))
}

/// Vectorized elementwise binary map.
#[inline]
pub fn binary(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    dispatch!(wide::binary(op, a, b, out), binary_impl(op, a, b, out))
}

/// Vectorized elementwise op against a broadcast scalar.
#[inline]
pub fn binary_scalar(op: BinOp, a: &[f32], s: f32, out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    dispatch!(
        wide::binary_scalar(op, a, s, out),
        binary_scalar_impl(op, a, s, out)
    )
}

/// `out[i] = exp(a[i] - max)`: the softmax numerator pass.
#[inline]
pub fn exp_sub(a: &[f32], max: f32, out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    dispatch!(wide::exp_sub(a, max, out), exp_sub_impl(a, max, out))
}

/// In-place division by a scalar: the softmax normalisation pass.
#[inline]
pub fn div_inplace(buf: &mut [f32], s: f32) {
    dispatch!(wide::div_inplace(buf, s), div_inplace_impl(buf, s))
}

/// The layernorm affine pass (normalise + scale + shift).
#[inline]
pub fn layernorm_affine(
    a: &[f32],
    gamma: &[f32],
    beta: &[f32],
    out: &mut [f32],
    mean: f32,
    inv: f32,
) {
    debug_assert_eq!(a.len(), out.len());
    dispatch!(
        wide::layernorm_affine(a, gamma, beta, out, mean, inv),
        layernorm_affine_impl(a, gamma, beta, out, mean, inv)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ulp_diff(a: f32, b: f32) -> u32 {
        if a == b {
            return 0;
        }
        let (ia, ib) = (a.to_bits() as i64, b.to_bits() as i64);
        // Map the sign-magnitude bit patterns onto a monotonic line.
        let fix = |i: i64| if i < 0 { i64::MIN - i } else { i };
        fix(ia).abs_diff(fix(ib)).min(u32::MAX as u64) as u32
    }

    #[test]
    fn detection_reports_consistent_metadata() {
        let isa = active();
        assert_eq!(isa.name(), isa_name());
        assert_eq!(isa.lanes(), lane_width());
        assert!(isa.lanes() == 1 || isa.lanes() == LANES);
    }

    #[test]
    fn dispatched_dot_is_bit_identical_to_scalar_ref() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.37).sin()).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.91).cos()).collect();
            assert_eq!(
                dot(&a, &b).to_bits(),
                dot_scalar_ref(&a, &b).to_bits(),
                "len={len}"
            );
        }
    }

    #[test]
    fn dot_matches_naive_sum_closely() {
        let a: Vec<f32> = (0..37).map(|i| (i as f32) * 0.11 - 2.0).collect();
        let b: Vec<f32> = (0..37).map(|i| 1.5 - (i as f32) * 0.07).collect();
        let naive: f64 = a.iter().zip(&b).map(|(&x, &y)| x as f64 * y as f64).sum();
        assert!((dot(&a, &b) as f64 - naive).abs() < 1e-4);
    }

    #[test]
    fn score_rows_visits_rows_in_order_and_matches_dot() {
        let d = 13;
        let c = 11;
        let table: Vec<f32> = (0..c * d).map(|i| ((i * 31 % 17) as f32) - 8.0).collect();
        let q: Vec<f32> = (0..d).map(|i| (i as f32) * 0.3 - 1.0).collect();
        let mut seen = Vec::new();
        score_rows(&table, d, &q, 0..c, |i, s| seen.push((i, s)));
        assert_eq!(seen.len(), c);
        for (pos, &(i, s)) in seen.iter().enumerate() {
            assert_eq!(i, pos);
            assert_eq!(s.to_bits(), dot(&table[i * d..(i + 1) * d], &q).to_bits());
        }
    }

    #[test]
    fn q8_scan_equals_i32_reference_exactly() {
        let d = 67;
        let c = 9;
        let data: Vec<i8> = (0..c * d).map(|i| ((i * 37) % 255) as i8).collect();
        let q: Vec<i32> = (0..d).map(|i| (i as i32 * 13 % 255) - 127).collect();
        let mut got = vec![0.0f32; c];
        score_rows_q8(&data, d, &q, 0..c, |i, s| got[i] = s);
        for i in 0..c {
            let acc: i32 = data[i * d..(i + 1) * d]
                .iter()
                .zip(&q)
                .map(|(&x, &y)| x as i32 * y)
                .sum();
            assert_eq!(got[i], acc as f32, "row {i}");
        }
    }

    #[test]
    fn exp_poly_stays_within_4_ulp_of_std() {
        for i in -800..=800 {
            let x = i as f32 * 0.1;
            let (got, want) = (exp_f32(x), x.exp());
            assert!(ulp_diff(got, want) <= 4, "exp({x}): {got} vs {want}");
        }
    }

    #[test]
    fn transcendentals_hit_exact_anchor_points() {
        assert_eq!(exp_f32(0.0), 1.0);
        assert_eq!(sigmoid_f32(0.0), 0.5);
        assert_eq!(tanh_f32(0.0), 0.0);
        assert_eq!(gelu_f32(0.0), 0.0);
        assert!((tanh_f32(100.0) - 1.0).abs() < 1e-6);
        assert!((tanh_f32(-100.0) + 1.0).abs() < 1e-6);
        assert!(sigmoid_f32(40.0) <= 1.0 && sigmoid_f32(-40.0) >= 0.0);
    }

    #[test]
    fn strided_matmul_equals_contiguous_dot_order() {
        let (m, k, n) = (3usize, 21usize, 5usize);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.13).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.29).cos()).collect();
        let mut out = vec![0.0f32; m * n];
        matmul_strided(&a, &b, &mut out, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let col: Vec<f32> = (0..k).map(|p| b[p * n + j]).collect();
                let want = dot(&a[i * k..(i + 1) * k], &col);
                assert_eq!(out[i * n + j].to_bits(), want.to_bits(), "({i},{j})");
            }
        }
    }
}
