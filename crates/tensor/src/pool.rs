//! Persistent intra-op worker pool for sharded kernels.
//!
//! The full-catalog MIPS (`E·s` followed by top-k) is the latency
//! bottleneck of every SBR model, and it is embarrassingly parallel over
//! catalog rows. This module provides the process-wide, long-lived
//! thread pool those kernels shard onto:
//!
//! * workers are spawned **once** (first use) and parked on a crossbeam
//!   channel between requests — no per-request thread creation,
//! * work is dispatched as *scoped shard jobs*: the caller's borrowed
//!   closure runs on worker threads while the caller blocks (and itself
//!   executes shards), so no `'static` bound and no per-shard boxing,
//! * steady-state dispatch performs **no heap allocation**: the wake
//!   channel's ring buffer and the shared task slot are reused across
//!   requests.
//!
//! Sizing: `ETUDE_THREADS` (environment) takes precedence, then
//! [`configure_threads`] (e.g. from `ExecOptions`), then
//! `std::thread::available_parallelism`. A pool of one thread degrades
//! to plain serial execution with zero synchronisation.
//!
//! Shard *counts* are chosen by the callers independently of worker
//! count, so sharded kernels are testable for bit-identical results on
//! any machine, including single-core CI.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Inputs smaller than this many rows/elements never shard: below it the
/// dispatch overhead dwarfs the win and the serial kernel is fastest
/// (`C = 10^4` catalogs intentionally stay on this path).
pub const PAR_THRESHOLD: usize = 32_768;

/// Minimum rows/elements per shard once an op does parallelise; caps the
/// shard count for mid-sized inputs so shards stay cache-friendly.
pub const MIN_SHARD: usize = 8_192;

/// Upper bound on pool size; a guard against absurd `ETUDE_THREADS`.
const MAX_THREADS: usize = 256;

type ShardFn<'a> = &'a (dyn Fn(usize) + Sync);

/// The current parallel section, shared between the submitting thread
/// and the workers. `job` is a lifetime-erased borrow of the caller's
/// closure; the submitter clears it before `run_shards` returns, and
/// blocks until `completed == shards`, so workers never observe a
/// dangling closure.
struct TaskState {
    job: Option<ShardFn<'static>>,
    next_shard: usize,
    shards: usize,
    completed: usize,
    panicked: bool,
}

struct Shared {
    state: Mutex<TaskState>,
    done: Condvar,
}

/// Wake-up token delivered to parked workers.
enum Wake {
    Work,
    Shutdown,
}

/// A long-lived pool of `threads - 1` workers plus the submitting
/// thread itself.
pub struct ThreadPool {
    shared: std::sync::Arc<Shared>,
    wake_tx: Sender<Wake>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    /// Serialises parallel sections: a second thread arriving while one
    /// is in flight falls back to inline serial execution instead of
    /// queueing (handler threads already provide request parallelism).
    submit: Mutex<()>,
}

impl ThreadPool {
    /// Builds a pool that executes shard jobs on `threads` threads in
    /// total (the submitter counts as one; `threads <= 1` spawns no
    /// workers and runs everything inline).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.clamp(1, MAX_THREADS);
        let shared = std::sync::Arc::new(Shared {
            state: Mutex::new(TaskState {
                job: None,
                next_shard: 0,
                shards: 0,
                completed: 0,
                panicked: false,
            }),
            done: Condvar::new(),
        });
        // Unbounded so dispatch never blocks on stale wake tokens; the
        // queue stays bounded in practice (one token per worker per
        // section, drained before the next section completes).
        let (wake_tx, wake_rx) = unbounded::<Wake>();
        let mut workers = Vec::new();
        for i in 0..threads - 1 {
            let shared = std::sync::Arc::clone(&shared);
            let rx: Receiver<Wake> = wake_rx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("etude-intraop-{i}"))
                    .spawn(move || worker_loop(rx, shared))
                    .expect("spawn intra-op worker"),
            );
        }
        ThreadPool {
            shared,
            wake_tx,
            workers,
            threads,
            submit: Mutex::new(()),
        }
    }

    /// Total threads participating in parallel sections (workers + the
    /// submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(shard)` for every `shard in 0..shards`, distributing
    /// shards over the pool; returns when all shards completed.
    ///
    /// The caller participates, so a one-thread pool is plain serial
    /// execution. Nested or concurrent calls degrade to inline serial
    /// execution rather than deadlocking. A panicking shard poisons the
    /// section: remaining shards still run (results are never observed),
    /// and the panic is re-raised on the calling thread.
    pub fn run_shards(&self, shards: usize, job: &(dyn Fn(usize) + Sync)) {
        if shards <= 1 || self.threads <= 1 {
            for s in 0..shards {
                job(s);
            }
            return;
        }
        let Ok(_submit) = self.submit.try_lock() else {
            // Another parallel section is in flight (or this is a nested
            // call from inside one): run inline.
            for s in 0..shards {
                job(s);
            }
            return;
        };

        // Erase the borrow lifetime so the shared slot can hold it. The
        // wait loop below keeps the referent alive until every shard is
        // done.
        let job_static: ShardFn<'static> = unsafe { std::mem::transmute(job) };
        {
            let mut st = self.shared.state.lock().expect("pool state");
            st.job = Some(job_static);
            st.next_shard = 0;
            st.shards = shards;
            st.completed = 0;
            st.panicked = false;
        }
        let wakes = (self.threads - 1).min(shards - 1);
        for _ in 0..wakes {
            let _ = self.wake_tx.send(Wake::Work);
        }

        run_claimed_shards(&self.shared);

        let mut st = self.shared.state.lock().expect("pool state");
        while st.completed < st.shards {
            st = self.shared.done.wait(st).expect("pool state");
        }
        st.job = None;
        let panicked = st.panicked;
        drop(st);
        if panicked {
            panic!("a shard job panicked inside pool::run_shards");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for _ in 0..self.workers.len() {
            let _ = self.wake_tx.send(Wake::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Claims and executes shards of the current section until none remain.
fn run_claimed_shards(shared: &Shared) {
    loop {
        let (job, shard) = {
            let mut st = shared.state.lock().expect("pool state");
            let Some(job) = st.job else { return };
            if st.next_shard >= st.shards {
                return;
            }
            let shard = st.next_shard;
            st.next_shard += 1;
            (job, shard)
        };
        let result = catch_unwind(AssertUnwindSafe(|| job(shard)));
        let mut st = shared.state.lock().expect("pool state");
        st.completed += 1;
        if result.is_err() {
            st.panicked = true;
        }
        if st.completed >= st.shards {
            shared.done.notify_all();
        }
    }
}

fn worker_loop(rx: Receiver<Wake>, shared: std::sync::Arc<Shared>) {
    loop {
        match rx.recv() {
            Ok(Wake::Work) => run_claimed_shards(&shared),
            Ok(Wake::Shutdown) | Err(_) => return,
        }
    }
}

// ----------------------------------------------------------------------
// Process-wide pool.
// ----------------------------------------------------------------------

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// Requests a pool size before first use (e.g. from
/// `ExecOptions::intra_op_threads`). `ETUDE_THREADS` still wins.
/// Returns the size the global pool will have (or already has — the
/// pool is built once and never resized).
pub fn configure_threads(threads: usize) -> usize {
    CONFIGURED.store(threads.clamp(1, MAX_THREADS), Ordering::SeqCst);
    match GLOBAL.get() {
        Some(pool) => pool.threads(),
        None => resolve_threads(),
    }
}

fn resolve_threads() -> usize {
    if let Ok(v) = std::env::var("ETUDE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(MAX_THREADS);
            }
        }
    }
    let configured = CONFIGURED.load(Ordering::SeqCst);
    if configured >= 1 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// The process-wide pool, created on first use.
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(resolve_threads()))
}

/// Threads the global pool (would) run with, without forcing creation.
pub fn current_threads() -> usize {
    match GLOBAL.get() {
        Some(pool) => pool.threads(),
        None => resolve_threads(),
    }
}

// ----------------------------------------------------------------------
// Sharding helpers.
// ----------------------------------------------------------------------

/// Splits `0..n` into `parts` near-equal contiguous ranges (the first
/// `n % parts` ranges are one longer). Empty ranges never occur for
/// `parts <= n`.
pub fn shard_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Shard count for an op over `n` rows/elements on `threads` threads:
/// `1` (serial) below [`PAR_THRESHOLD`], otherwise at most one shard per
/// thread with at least [`MIN_SHARD`] rows each.
pub fn shard_count(n: usize, threads: usize) -> usize {
    if n < PAR_THRESHOLD || threads <= 1 {
        1
    } else {
        threads.min(n / MIN_SHARD).max(1)
    }
}

/// Thread-and-size-adaptive shard count against the *global* pool: the
/// crossover guard behind `topk_auto` / `score_topk_auto`. Returns `1`
/// (serial — by construction never slower than serial) whenever the
/// pool has one thread or `n` is below the measured [`PAR_THRESHOLD`]
/// crossover; otherwise shards are sized to the pool width with at
/// least [`MIN_SHARD`] rows each.
pub fn auto_shards(n: usize) -> usize {
    if n < PAR_THRESHOLD {
        // Early out before consulting the pool: sub-crossover scans are
        // the serving steady state and must not re-resolve thread config
        // (which reads the environment — an allocation) per request.
        return 1;
    }
    shard_count(n, global().threads())
}

/// Raw base pointer that may cross threads; soundness comes from the
/// disjointness of the per-shard ranges derived from it. The pointer is
/// only reachable through [`SendPtr::get`], so closures capture the
/// `Sync` wrapper rather than the raw pointer field.
pub(crate) struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    pub(crate) fn new(ptr: *mut T) -> SendPtr<T> {
        SendPtr(ptr)
    }

    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

/// Fills `out` (logically `rows x width`, row-major) by running
/// `fill(row_range, chunk)` over row shards of the global pool, where
/// `chunk` is exactly the rows of `row_range`. Runs serially (one call
/// covering everything) when `rows` is under [`PAR_THRESHOLD`] or the
/// pool has one thread.
pub fn parallel_rows<F>(out: &mut [f32], rows: usize, width: usize, fill: F)
where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    assert_eq!(out.len(), rows * width, "output/shape mismatch");
    let pool = global();
    let parts = shard_count(rows, pool.threads());
    if parts <= 1 {
        fill(0..rows, out);
        return;
    }
    let ranges = shard_ranges(rows, parts);
    let base = SendPtr::new(out.as_mut_ptr());
    pool.run_shards(parts, &|shard| {
        let range = ranges[shard].clone();
        // Disjoint row ranges make the aliasing sound.
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(base.get().add(range.start * width), range.len() * width)
        };
        fill(range, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let hits = AtomicU32::new(0);
        pool.run_shards(5, &|_s| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn all_shards_run_exactly_once() {
        let pool = ThreadPool::new(4);
        for shards in [1usize, 2, 3, 7, 16, 33] {
            let hits: Vec<AtomicU32> = (0..shards).map(|_| AtomicU32::new(0)).collect();
            pool.run_shards(shards, &|s| {
                hits[s].fetch_add(1, Ordering::SeqCst);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
        }
    }

    #[test]
    fn pool_is_reusable_across_many_sections() {
        let pool = ThreadPool::new(3);
        let total = AtomicU32::new(0);
        for _ in 0..200 {
            pool.run_shards(6, &|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 1200);
    }

    #[test]
    fn borrowed_state_is_visible_and_mutable_via_shards() {
        let pool = ThreadPool::new(4);
        let mut out = vec![0.0f32; 100];
        let ranges = shard_ranges(out.len(), 4);
        {
            let base = SendPtr::new(out.as_mut_ptr());
            let ranges = &ranges;
            pool.run_shards(4, &|s| {
                let r = ranges[s].clone();
                let chunk =
                    unsafe { std::slice::from_raw_parts_mut(base.get().add(r.start), r.len()) };
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = (r.start + i) as f32;
                }
            });
        }
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn shard_panics_propagate_to_the_caller() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_shards(4, &|s| {
                if s == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool survives a panicked section.
        let ok = AtomicU32::new(0);
        pool.run_shards(3, &|_| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn shard_ranges_cover_without_overlap() {
        for n in [0usize, 1, 7, 100, 1001] {
            for parts in [1usize, 2, 3, 8] {
                let ranges = shard_ranges(n, parts);
                let mut covered = 0;
                for r in &ranges {
                    assert_eq!(r.start, covered);
                    covered = r.end;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn shard_count_keeps_small_inputs_serial() {
        assert_eq!(shard_count(10_000, 8), 1);
        assert_eq!(shard_count(PAR_THRESHOLD, 8), 4);
        assert_eq!(shard_count(1_000_000, 8), 8);
        assert_eq!(shard_count(1_000_000, 1), 1);
    }

    #[test]
    fn nested_sections_run_inline_without_deadlock() {
        let pool = ThreadPool::new(2);
        let inner_hits = AtomicU32::new(0);
        pool.run_shards(2, &|_outer| {
            pool.run_shards(3, &|_inner| {
                inner_hits.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(inner_hits.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn parallel_rows_fills_every_row() {
        let rows = PAR_THRESHOLD + 100;
        let mut out = vec![0.0f32; rows * 2];
        parallel_rows(&mut out, rows, 2, |range, chunk| {
            for (i, row) in chunk.chunks_exact_mut(2).enumerate() {
                let r = (range.start + i) as f32;
                row[0] = r;
                row[1] = -r;
            }
        });
        for (i, row) in out.chunks_exact(2).enumerate() {
            assert_eq!(row[0], i as f32);
            assert_eq!(row[1], -(i as f32));
        }
    }
}
