//! Operation cost accounting.
//!
//! Every kernel reports a [`CostSpec`]: how much arithmetic it performs and
//! how many bytes it moves, split into a *shared* part (paid once per
//! launch, e.g. streaming a weight matrix) and a *per-item* part (paid per
//! element of a request batch). The split is what makes GPU request
//! batching profitable in the model — the catalog-wide embedding table is
//! read once per batch, not once per request — mirroring the behaviour of
//! a batched GEMM on real hardware.

use std::ops::{Add, AddAssign};

/// Aggregate execution cost of one or more operations at a fixed batch size.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    /// Floating point operations performed.
    pub flops: f64,
    /// Bytes read from and written to device memory.
    pub bytes: f64,
    /// Number of kernel launches (dispatch overheads).
    pub launches: u64,
    /// Number of host<->device synchronisation round-trips.
    pub transfers: u64,
    /// Bytes moved across the host<->device interconnect.
    pub transfer_bytes: f64,
}

impl Cost {
    /// A zero cost.
    pub const ZERO: Cost = Cost {
        flops: 0.0,
        bytes: 0.0,
        launches: 0,
        transfers: 0,
        transfer_bytes: 0.0,
    };

    /// Cost of a single kernel launch with the given arithmetic and traffic.
    pub fn launch(flops: f64, bytes: f64) -> Cost {
        Cost {
            flops,
            bytes,
            launches: 1,
            transfers: 0,
            transfer_bytes: 0.0,
        }
    }

    /// Cost of a host<->device synchronisation moving `bytes` each way.
    pub fn transfer(bytes: f64) -> Cost {
        Cost {
            flops: 0.0,
            bytes: 0.0,
            launches: 0,
            transfers: 1,
            transfer_bytes: bytes,
        }
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            flops: self.flops + rhs.flops,
            bytes: self.bytes + rhs.bytes,
            launches: self.launches + rhs.launches,
            transfers: self.transfers + rhs.transfers,
            transfer_bytes: self.transfer_bytes + rhs.transfer_bytes,
        }
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

/// Batch-parametric cost of a single operation.
///
/// The realised [`Cost`] at batch size `b` is:
/// `launches` launches, `flops_per_item * b` FLOPs, and
/// `shared_bytes + per_item_bytes * b` bytes of memory traffic.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostSpec {
    /// FLOPs per batched request.
    pub flops_per_item: f64,
    /// Bytes of traffic paid once per launch regardless of batch size
    /// (typically weight/embedding matrices streamed from memory).
    pub shared_bytes: f64,
    /// Bytes of traffic paid per batched request (activations).
    pub per_item_bytes: f64,
    /// Kernel launches per invocation (independent of batch size).
    pub launches: u64,
    /// Host<->device round-trips forced per *request* (RecBole quirks).
    pub transfers_per_item: u64,
    /// Bytes moved per forced round-trip.
    pub transfer_bytes_per_item: f64,
}

impl CostSpec {
    /// A spec for one launch with purely per-item arithmetic and traffic.
    pub fn per_item(flops: f64, bytes: f64) -> CostSpec {
        CostSpec {
            flops_per_item: flops,
            per_item_bytes: bytes,
            shared_bytes: 0.0,
            launches: 1,
            transfers_per_item: 0,
            transfer_bytes_per_item: 0.0,
        }
    }

    /// A spec for one launch that additionally streams `shared` bytes once.
    pub fn with_shared(flops: f64, per_item: f64, shared: f64) -> CostSpec {
        CostSpec {
            flops_per_item: flops,
            per_item_bytes: per_item,
            shared_bytes: shared,
            launches: 1,
            transfers_per_item: 0,
            transfer_bytes_per_item: 0.0,
        }
    }

    /// Realises the cost at batch size `batch`.
    pub fn at_batch(&self, batch: usize) -> Cost {
        let b = batch as f64;
        Cost {
            flops: self.flops_per_item * b,
            bytes: self.shared_bytes + self.per_item_bytes * b,
            launches: self.launches,
            transfers: self.transfers_per_item * batch as u64,
            transfer_bytes: self.transfer_bytes_per_item * b,
        }
    }
}

impl Add for CostSpec {
    type Output = CostSpec;
    fn add(self, rhs: CostSpec) -> CostSpec {
        CostSpec {
            flops_per_item: self.flops_per_item + rhs.flops_per_item,
            shared_bytes: self.shared_bytes + rhs.shared_bytes,
            per_item_bytes: self.per_item_bytes + rhs.per_item_bytes,
            launches: self.launches + rhs.launches,
            transfers_per_item: self.transfers_per_item + rhs.transfers_per_item,
            transfer_bytes_per_item: self.transfer_bytes_per_item + rhs.transfer_bytes_per_item,
        }
    }
}

impl AddAssign for CostSpec {
    fn add_assign(&mut self, rhs: CostSpec) {
        *self = *self + rhs;
    }
}

/// Accumulates costs across the operations of a forward pass.
#[derive(Debug, Clone, Default)]
pub struct CostTracker {
    total: Cost,
    spec: CostSpec,
    ops: u64,
    cpu_threads: usize,
    simd_isa: &'static str,
    simd_lanes: usize,
}

impl CostTracker {
    /// Creates an empty tracker stamped with the intra-op pool width and
    /// the SIMD backend the host kernels run at (the analytic cost model
    /// itself is thread- and ISA-agnostic; the stamps travel into result
    /// records so runs at different `ETUDE_THREADS` / `ETUDE_SIMD`
    /// settings are distinguishable).
    pub fn new() -> Self {
        CostTracker {
            cpu_threads: crate::pool::current_threads(),
            simd_isa: crate::simd::isa_name(),
            simd_lanes: crate::simd::lane_width(),
            ..Self::default()
        }
    }

    /// Intra-op CPU threads recorded for this run.
    pub fn cpu_threads(&self) -> usize {
        self.cpu_threads
    }

    /// SIMD backend name the kernels dispatched to ("scalar", "avx2+fma").
    pub fn simd_isa(&self) -> &'static str {
        self.simd_isa
    }

    /// f32 lanes per SIMD block of the active backend.
    pub fn simd_lanes(&self) -> usize {
        self.simd_lanes
    }

    /// Records one operation at batch size one.
    pub fn record(&mut self, spec: CostSpec) {
        self.total += spec.at_batch(1);
        self.spec += spec;
        self.ops += 1;
    }

    /// Total realised cost (batch size one per recorded op).
    pub fn total(&self) -> Cost {
        self.total
    }

    /// The summed batch-parametric spec of all recorded operations.
    pub fn spec(&self) -> CostSpec {
        self.spec
    }

    /// Number of operations recorded.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Resets the tracker to empty (keeping the thread and ISA stamps).
    pub fn reset(&mut self) {
        *self = CostTracker {
            cpu_threads: self.cpu_threads,
            simd_isa: self.simd_isa,
            simd_lanes: self.simd_lanes,
            ..Self::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_addition_accumulates_all_fields() {
        let a = Cost::launch(10.0, 100.0);
        let b = Cost::transfer(64.0);
        let c = a + b;
        assert_eq!(c.flops, 10.0);
        assert_eq!(c.bytes, 100.0);
        assert_eq!(c.launches, 1);
        assert_eq!(c.transfers, 1);
        assert_eq!(c.transfer_bytes, 64.0);
    }

    #[test]
    fn shared_bytes_amortise_across_batch() {
        // A GEMV streaming a 1 MB matrix with 1 KB of per-request traffic.
        let spec = CostSpec::with_shared(1000.0, 1024.0, 1_048_576.0);
        let one = spec.at_batch(1);
        let many = spec.at_batch(64);
        assert_eq!(one.bytes, 1_048_576.0 + 1024.0);
        assert_eq!(many.bytes, 1_048_576.0 + 64.0 * 1024.0);
        // Per-request traffic at batch 64 is far below 64x the single cost.
        assert!(many.bytes / 64.0 < one.bytes / 2.0);
        assert_eq!(many.flops, 64.0 * 1000.0);
        assert_eq!(many.launches, 1);
    }

    #[test]
    fn tracker_accumulates_specs_and_totals() {
        let mut t = CostTracker::new();
        t.record(CostSpec::per_item(5.0, 8.0));
        t.record(CostSpec::with_shared(2.0, 1.0, 100.0));
        assert_eq!(t.ops(), 2);
        assert_eq!(t.total().flops, 7.0);
        assert_eq!(t.total().bytes, 8.0 + 101.0);
        assert_eq!(t.total().launches, 2);
        let spec = t.spec();
        assert_eq!(spec.at_batch(2).flops, 14.0);
        t.reset();
        assert_eq!(t.ops(), 0);
    }

    #[test]
    fn transfers_scale_with_batch() {
        let spec = CostSpec {
            transfers_per_item: 2,
            transfer_bytes_per_item: 128.0,
            ..CostSpec::default()
        };
        let c = spec.at_batch(3);
        assert_eq!(c.transfers, 6);
        assert_eq!(c.transfer_bytes, 384.0);
    }
}
