//! Dense and phantom tensors.
//!
//! A [`Tensor`] is an n-dimensional, row-major array of `f32`. Its storage
//! is either [`Storage::Dense`] (a real buffer) or [`Storage::Phantom`]
//! (shape-only). Phantom tensors flow through every kernel without data
//! movement, which is what lets the cost model benchmark catalogs of tens
//! of millions of items without allocating their embedding tables.

use std::fmt;

/// Errors produced by tensor construction and kernel shape checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The element count implied by the shape does not match the data length.
    ShapeDataMismatch { shape: Vec<usize>, data_len: usize },
    /// Two operands have incompatible shapes for the attempted operation.
    ShapeMismatch {
        op: &'static str,
        lhs: Vec<usize>,
        rhs: Vec<usize>,
    },
    /// The operation requires a different rank than the operand has.
    RankMismatch {
        op: &'static str,
        expected: usize,
        got: usize,
    },
    /// An index is out of bounds for the tensor it addresses.
    IndexOutOfBounds { index: usize, bound: usize },
    /// A dense value was required but the tensor is phantom (cost-only).
    PhantomData { op: &'static str },
    /// A tensor reference does not exist in the execution arena.
    InvalidRef { index: usize },
    /// Tracing encountered an operation that cannot be captured.
    NotTraceable { op: &'static str },
    /// Generic invalid-argument error with a static description.
    Invalid(&'static str),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { shape, data_len } => write!(
                f,
                "shape {shape:?} implies {} elements but data has {data_len}",
                shape.iter().product::<usize>()
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::RankMismatch { op, expected, got } => {
                write!(f, "{op}: expected rank {expected}, got {got}")
            }
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds ({bound})")
            }
            TensorError::PhantomData { op } => {
                write!(f, "{op}: dense data required but tensor is phantom")
            }
            TensorError::InvalidRef { index } => write!(f, "invalid tensor ref {index}"),
            TensorError::NotTraceable { op } => {
                write!(f, "{op}: operation cannot be captured into a graph")
            }
            TensorError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Tensor storage: real data or shape-only.
#[derive(Debug, Clone, PartialEq)]
pub enum Storage {
    /// A materialised, row-major buffer.
    Dense(Vec<f32>),
    /// No data; only the shape is tracked. Produced by cost-only execution.
    Phantom,
}

/// An n-dimensional, row-major array of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    storage: Storage,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a dense tensor from a flat buffer and a shape.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, TensorError> {
        let n: usize = shape.iter().product();
        if n != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                shape: shape.to_vec(),
                data_len: data.len(),
            });
        }
        Ok(Tensor {
            storage: Storage::Dense(data),
            shape: shape.to_vec(),
        })
    }

    /// Creates a dense tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            storage: Storage::Dense(vec![0.0; n]),
            shape: shape.to_vec(),
        }
    }

    /// Creates a dense tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            storage: Storage::Dense(vec![value; n]),
            shape: shape.to_vec(),
        }
    }

    /// Creates a phantom (shape-only) tensor.
    pub fn phantom(shape: &[usize]) -> Self {
        Tensor {
            storage: Storage::Phantom,
            shape: shape.to_vec(),
        }
    }

    /// Creates a dense rank-1 tensor holding bit-cast item ids.
    pub fn from_ids(ids: &[u32]) -> Self {
        Tensor {
            storage: Storage::Dense(ids.iter().map(|&i| crate::id_to_f32(i)).collect()),
            shape: vec![ids.len()],
        }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.shape.iter().product()
    }

    /// Whether the tensor holds zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Whether the tensor is phantom (shape-only).
    #[inline]
    pub fn is_phantom(&self) -> bool {
        matches!(self.storage, Storage::Phantom)
    }

    /// Borrows the dense buffer, failing on phantom tensors.
    pub fn as_slice(&self) -> Result<&[f32], TensorError> {
        match &self.storage {
            Storage::Dense(v) => Ok(v),
            Storage::Phantom => Err(TensorError::PhantomData { op: "as_slice" }),
        }
    }

    /// Mutably borrows the dense buffer, failing on phantom tensors.
    pub fn as_slice_mut(&mut self) -> Result<&mut [f32], TensorError> {
        match &mut self.storage {
            Storage::Dense(v) => Ok(v),
            Storage::Phantom => Err(TensorError::PhantomData { op: "as_slice_mut" }),
        }
    }

    /// Consumes the tensor and returns its dense buffer.
    pub fn into_vec(self) -> Result<Vec<f32>, TensorError> {
        match self.storage {
            Storage::Dense(v) => Ok(v),
            Storage::Phantom => Err(TensorError::PhantomData { op: "into_vec" }),
        }
    }

    /// Reads a single element of a rank-1 or flattened tensor.
    pub fn get(&self, index: usize) -> Result<f32, TensorError> {
        let data = self.as_slice()?;
        data.get(index)
            .copied()
            .ok_or(TensorError::IndexOutOfBounds {
                index,
                bound: data.len(),
            })
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    pub fn reshape(mut self, shape: &[usize]) -> Result<Self, TensorError> {
        let n: usize = shape.iter().product();
        if n != self.len() {
            return Err(TensorError::ShapeDataMismatch {
                shape: shape.to_vec(),
                data_len: self.len(),
            });
        }
        self.shape = shape.to_vec();
        Ok(self)
    }

    /// Returns the two dimensions of a rank-2 tensor.
    pub fn dims2(&self, op: &'static str) -> Result<(usize, usize), TensorError> {
        if self.shape.len() != 2 {
            return Err(TensorError::RankMismatch {
                op,
                expected: 2,
                got: self.shape.len(),
            });
        }
        Ok((self.shape[0], self.shape[1]))
    }

    /// Returns the single dimension of a rank-1 tensor.
    pub fn dims1(&self, op: &'static str) -> Result<usize, TensorError> {
        if self.shape.len() != 1 {
            return Err(TensorError::RankMismatch {
                op,
                expected: 1,
                got: self.shape.len(),
            });
        }
        Ok(self.shape[0])
    }

    /// Interprets the buffer as bit-cast item ids (see [`crate::f32_to_id`]).
    pub fn to_ids(&self) -> Result<Vec<u32>, TensorError> {
        Ok(self
            .as_slice()?
            .iter()
            .map(|&x| crate::f32_to_id(x))
            .collect())
    }

    /// Maximum absolute difference to another tensor of the same shape.
    ///
    /// Used pervasively in tests to compare eager and compiled outputs.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "max_abs_diff",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        let a = self.as_slice()?;
        let b = other.as_slice()?;
        Ok(a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_shape() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[2]).is_ok());
        assert!(matches!(
            Tensor::from_vec(vec![1.0, 2.0], &[3]),
            Err(TensorError::ShapeDataMismatch { .. })
        ));
    }

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.as_slice().unwrap().iter().all(|&x| x == 0.0));
        let f = Tensor::full(&[4], 2.5);
        assert!(f.as_slice().unwrap().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn phantom_rejects_data_access() {
        let p = Tensor::phantom(&[3, 3]);
        assert!(p.is_phantom());
        assert_eq!(p.len(), 9);
        assert!(matches!(p.as_slice(), Err(TensorError::PhantomData { .. })));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        let t = t.reshape(&[2, 2]).unwrap();
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.as_slice().unwrap(), &[1.0, 2.0, 3.0, 4.0]);
        assert!(t.clone().reshape(&[3]).is_err());
    }

    #[test]
    fn ids_roundtrip_through_tensor() {
        let ids = vec![0u32, 7, 16_777_217, 19_999_999];
        let t = Tensor::from_ids(&ids);
        assert_eq!(t.to_ids().unwrap(), ids);
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.5], &[2]).unwrap();
        assert!((a.max_abs_diff(&b).unwrap() - 0.5).abs() < 1e-6);
        let c = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        assert!(a.max_abs_diff(&c).is_err());
    }

    #[test]
    fn dims_accessors_enforce_rank() {
        let m = Tensor::zeros(&[2, 3]);
        assert_eq!(m.dims2("t").unwrap(), (2, 3));
        assert!(m.dims1("t").is_err());
        let v = Tensor::zeros(&[5]);
        assert_eq!(v.dims1("t").unwrap(), 5);
        assert!(v.dims2("t").is_err());
    }
}
