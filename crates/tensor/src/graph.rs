//! Dataflow graph IR: captured by tracing, optimised by [`crate::jit`],
//! executed by [`Graph::run`].
//!
//! A graph is a topologically ordered list of [`Node`]s. Each node carries
//! its operator, operand node ids, inferred output shape and a
//! batch-parametric [`CostSpec`]. Because SBR inference is shape-static
//! (sessions are padded to a fixed maximum length, as RecBole does), a
//! traced graph is reusable across requests, and its *total cost spec* can
//! be evaluated without walking the graph — which is what lets the
//! discrete-event serving simulation price millions of requests cheaply.

use crate::cost::{Cost, CostSpec};
use crate::kernels::{self, BinOp, UnOp};
use crate::param::ParamId;
use crate::tensor::{Tensor, TensorError};
use crate::topk;
use std::collections::HashMap;
use std::sync::Arc;

/// Index of a node within its graph.
pub type NodeId = usize;

/// One step of a fused elementwise kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusedStep {
    /// Apply a unary function.
    Unary(UnOp),
    /// Apply a binary function against a fixed scalar.
    Scalar(BinOp, f32),
}

impl FusedStep {
    /// Applies the step to a scalar lane.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            FusedStep::Unary(u) => u.apply(x),
            FusedStep::Scalar(b, s) => b.apply(x, s),
        }
    }
}

/// Operator kinds of the IR.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// The `i`-th external graph input.
    Input(usize),
    /// A captured model weight.
    Const(ParamId),
    /// `[m,k] x [k,n] -> [m,n]`.
    MatMul,
    /// `[m,k] x [n,k] -> [m,n]` with a pre-transposed right operand.
    MatMulBT,
    /// Elementwise binary over equal shapes.
    Binary(BinOp),
    /// `[m,n] op [n]`: broadcast a row vector over matrix rows.
    BinaryRow(BinOp),
    /// Elementwise binary against a compile-time scalar.
    BinaryScalar(BinOp, f32),
    /// Elementwise unary.
    Unary(UnOp),
    /// Row-wise softmax (rank-1 tensors are one row).
    Softmax,
    /// Row-wise layer normalisation: `(x, gamma, beta)`.
    LayerNorm {
        /// Numerical stabiliser added to the variance.
        eps: f32,
    },
    /// `(table [c,d], ids [l]) -> [l,d]` with bit-cast ids.
    Embedding,
    /// Concatenate along the last dimension.
    Concat,
    /// `[m,n] -> [n,m]`.
    Transpose,
    /// `[m,n] -> [n]`: sum over rows.
    SumRows,
    /// One GRU step: `(x, h, w_ih, w_hh, b_ih, b_hh) -> h'`.
    GruCell,
    /// `(matrix [l,d], idx [1]) -> [d]`: select a row by bit-cast index.
    GatherRow,
    /// `scores [c] -> [2,k]`: row 0 bit-cast indices, row 1 scores.
    TopK {
        /// Number of items to return.
        k: usize,
    },
    /// `(table [c,d], s [d]) -> [2,k]`: fused MIPS decode — scores all
    /// `c` catalog rows against `s` and maintains the running top-k in
    /// one streaming SIMD pass (row 0 bit-cast indices, row 1 scores).
    /// Unlike `MatMul` + `TopK`, the `[c]` score vector is never
    /// materialised, halving memory traffic on large catalogs.
    ScoreTopK {
        /// Number of items to return.
        k: usize,
    },
    /// `(ids [l], vals [l]) -> [c]`: dense scatter-add into a full-catalog
    /// vector (the RepeatNet RecBole quirk).
    ScatterAddDense {
        /// Catalog size.
        c: usize,
    },
    /// Identity executed on the *host*: on GPU devices this forces a
    /// device-to-host-and-back round-trip (the SR-GNN / GC-SAN quirk,
    /// where NumPy code runs inside the inference path).
    HostOp,
    /// View with a new shape (free).
    Reshape(Vec<usize>),
    /// `[m,n] -> [m, end-start]`: contiguous column slice.
    SliceCols {
        /// First column (inclusive).
        start: usize,
        /// Last column (exclusive).
        end: usize,
    },
    /// `[m,n] -> [end-start, n]`: contiguous row slice.
    SliceRows {
        /// First row (inclusive).
        start: usize,
        /// Last row (exclusive).
        end: usize,
    },
    /// `(ids [l], mask [l]) -> [l,l]`: row-normalised session-graph
    /// adjacency over consecutive interactions (SR-GNN / GC-SAN).
    ///
    /// With `host: true` the construction runs on the host — the RecBole
    /// quirk where NumPy code sits inside the inference path, forcing
    /// device-to-host round-trips on GPUs.
    SessionGraph {
        /// Outgoing (`true`) or incoming (`false`) edges.
        outgoing: bool,
        /// Whether the op executes on the host (quirk enabled).
        host: bool,
    },
    /// `ids [l] -> [l,c]`: dense one-hot rows over the full catalog — the
    /// RepeatNet RecBole quirk (sparse structure materialised densely).
    OneHotRows {
        /// Catalog size.
        c: usize,
    },
    /// JIT-fused elementwise chain (optionally seeded by a binary op over
    /// two inputs, then a pipeline of scalar steps).
    Fused {
        /// Optional leading binary combine of two operands.
        seed: Option<BinOp>,
        /// Elementwise pipeline applied after the seed (or to the single
        /// operand when there is no seed).
        steps: Vec<FusedStep>,
    },
}

impl OpKind {
    /// Human-readable operator name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Input(_) => "input",
            OpKind::Const(_) => "const",
            OpKind::MatMul => "matmul",
            OpKind::MatMulBT => "matmul_bt",
            OpKind::Binary(_) => "binary",
            OpKind::BinaryRow(_) => "binary_row",
            OpKind::BinaryScalar(..) => "binary_scalar",
            OpKind::Unary(_) => "unary",
            OpKind::Softmax => "softmax",
            OpKind::LayerNorm { .. } => "layernorm",
            OpKind::Embedding => "embedding",
            OpKind::Concat => "concat",
            OpKind::Transpose => "transpose",
            OpKind::SumRows => "sum_rows",
            OpKind::GruCell => "gru_cell",
            OpKind::GatherRow => "gather_row",
            OpKind::TopK { .. } => "topk",
            OpKind::ScoreTopK { .. } => "score_topk",
            OpKind::ScatterAddDense { .. } => "scatter_add_dense",
            OpKind::HostOp => "host_op",
            OpKind::Reshape(_) => "reshape",
            OpKind::SliceCols { .. } => "slice_cols",
            OpKind::SliceRows { .. } => "slice_rows",
            OpKind::SessionGraph { .. } => "session_graph",
            OpKind::OneHotRows { .. } => "one_hot_rows",
            OpKind::Fused { .. } => "fused",
        }
    }

    /// Whether the op is a pure elementwise map (fusion candidate).
    pub fn is_elementwise(&self) -> bool {
        matches!(
            self,
            OpKind::Unary(_) | OpKind::BinaryScalar(..) | OpKind::Binary(_)
        )
    }
}

/// Infers the output shape of `kind` applied to operands of `shapes`.
pub fn infer_shape(kind: &OpKind, shapes: &[&[usize]]) -> Result<Vec<usize>, TensorError> {
    let need = |n: usize| -> Result<(), TensorError> {
        if shapes.len() != n {
            return Err(TensorError::Invalid("wrong operand count"));
        }
        Ok(())
    };
    match kind {
        OpKind::Input(_) | OpKind::Const(_) => Err(TensorError::Invalid(
            "input/const shapes are set at creation",
        )),
        OpKind::MatMul => {
            need(2)?;
            let (a, b) = (shapes[0], shapes[1]);
            if a.len() != 2 || b.len() != 2 || a[1] != b[0] {
                return Err(TensorError::ShapeMismatch {
                    op: "matmul",
                    lhs: a.to_vec(),
                    rhs: b.to_vec(),
                });
            }
            Ok(vec![a[0], b[1]])
        }
        OpKind::MatMulBT => {
            need(2)?;
            let (a, b) = (shapes[0], shapes[1]);
            if a.len() != 2 || b.len() != 2 || a[1] != b[1] {
                return Err(TensorError::ShapeMismatch {
                    op: "matmul_bt",
                    lhs: a.to_vec(),
                    rhs: b.to_vec(),
                });
            }
            Ok(vec![a[0], b[0]])
        }
        OpKind::Binary(op) => {
            need(2)?;
            if shapes[0] != shapes[1] {
                return Err(TensorError::ShapeMismatch {
                    op: op.name(),
                    lhs: shapes[0].to_vec(),
                    rhs: shapes[1].to_vec(),
                });
            }
            Ok(shapes[0].to_vec())
        }
        OpKind::BinaryRow(op) => {
            need(2)?;
            let (a, r) = (shapes[0], shapes[1]);
            let n = *a.last().unwrap_or(&0);
            if r.len() != 1 || r[0] != n {
                return Err(TensorError::ShapeMismatch {
                    op: op.name(),
                    lhs: a.to_vec(),
                    rhs: r.to_vec(),
                });
            }
            Ok(a.to_vec())
        }
        OpKind::BinaryScalar(..) | OpKind::Unary(_) | OpKind::HostOp => {
            need(1)?;
            Ok(shapes[0].to_vec())
        }
        OpKind::Softmax => {
            need(1)?;
            Ok(shapes[0].to_vec())
        }
        OpKind::LayerNorm { .. } => {
            need(3)?;
            let n = *shapes[0].last().unwrap_or(&0);
            if shapes[1] != [n] || shapes[2] != [n] {
                return Err(TensorError::ShapeMismatch {
                    op: "layernorm",
                    lhs: shapes[0].to_vec(),
                    rhs: shapes[1].to_vec(),
                });
            }
            Ok(shapes[0].to_vec())
        }
        OpKind::Embedding => {
            need(2)?;
            let (t, ids) = (shapes[0], shapes[1]);
            if t.len() != 2 || ids.len() != 1 {
                return Err(TensorError::ShapeMismatch {
                    op: "embedding",
                    lhs: t.to_vec(),
                    rhs: ids.to_vec(),
                });
            }
            Ok(vec![ids[0], t[1]])
        }
        OpKind::Concat => {
            need(2)?;
            let (a, b) = (shapes[0], shapes[1]);
            match (a.len(), b.len()) {
                (1, 1) => Ok(vec![a[0] + b[0]]),
                (2, 2) if a[0] == b[0] => Ok(vec![a[0], a[1] + b[1]]),
                _ => Err(TensorError::ShapeMismatch {
                    op: "concat",
                    lhs: a.to_vec(),
                    rhs: b.to_vec(),
                }),
            }
        }
        OpKind::Transpose => {
            need(1)?;
            let a = shapes[0];
            if a.len() != 2 {
                return Err(TensorError::RankMismatch {
                    op: "transpose",
                    expected: 2,
                    got: a.len(),
                });
            }
            Ok(vec![a[1], a[0]])
        }
        OpKind::SumRows => {
            need(1)?;
            let a = shapes[0];
            if a.len() != 2 {
                return Err(TensorError::RankMismatch {
                    op: "sum_rows",
                    expected: 2,
                    got: a.len(),
                });
            }
            Ok(vec![a[1]])
        }
        OpKind::GruCell => {
            need(6)?;
            let h = shapes[1];
            if h.len() != 1 {
                return Err(TensorError::RankMismatch {
                    op: "gru_cell",
                    expected: 1,
                    got: h.len(),
                });
            }
            Ok(h.to_vec())
        }
        OpKind::GatherRow => {
            need(2)?;
            let m = shapes[0];
            if m.len() != 2 || shapes[1] != [1] {
                return Err(TensorError::ShapeMismatch {
                    op: "gather_row",
                    lhs: m.to_vec(),
                    rhs: shapes[1].to_vec(),
                });
            }
            Ok(vec![m[1]])
        }
        OpKind::TopK { k } => {
            need(1)?;
            let a = shapes[0];
            if a.len() != 1 {
                return Err(TensorError::RankMismatch {
                    op: "topk",
                    expected: 1,
                    got: a.len(),
                });
            }
            Ok(vec![2, (*k).min(a[0])])
        }
        OpKind::ScoreTopK { k } => {
            need(2)?;
            let (t, s) = (shapes[0], shapes[1]);
            if t.len() != 2 || s.len() != 1 || s[0] != t[1] {
                return Err(TensorError::ShapeMismatch {
                    op: "score_topk",
                    lhs: t.to_vec(),
                    rhs: s.to_vec(),
                });
            }
            Ok(vec![2, (*k).min(t[0])])
        }
        OpKind::ScatterAddDense { c } => {
            need(2)?;
            if shapes[0] != shapes[1] || shapes[0].len() != 1 {
                return Err(TensorError::ShapeMismatch {
                    op: "scatter_add_dense",
                    lhs: shapes[0].to_vec(),
                    rhs: shapes[1].to_vec(),
                });
            }
            Ok(vec![*c])
        }
        OpKind::Reshape(shape) => {
            need(1)?;
            let n: usize = shapes[0].iter().product();
            let m: usize = shape.iter().product();
            if n != m {
                return Err(TensorError::ShapeDataMismatch {
                    shape: shape.clone(),
                    data_len: n,
                });
            }
            Ok(shape.clone())
        }
        OpKind::SliceCols { start, end } => {
            need(1)?;
            let a = shapes[0];
            if a.len() != 2 || *end > a[1] || start >= end {
                return Err(TensorError::Invalid("invalid column slice"));
            }
            Ok(vec![a[0], end - start])
        }
        OpKind::SliceRows { start, end } => {
            need(1)?;
            let a = shapes[0];
            if a.len() != 2 || *end > a[0] || start >= end {
                return Err(TensorError::Invalid("invalid row slice"));
            }
            Ok(vec![end - start, a[1]])
        }
        OpKind::SessionGraph { .. } => {
            need(2)?;
            let (ids, mask) = (shapes[0], shapes[1]);
            if ids.len() != 1 || mask != ids {
                return Err(TensorError::ShapeMismatch {
                    op: "session_graph",
                    lhs: ids.to_vec(),
                    rhs: mask.to_vec(),
                });
            }
            Ok(vec![ids[0], ids[0]])
        }
        OpKind::OneHotRows { c } => {
            need(1)?;
            let ids = shapes[0];
            if ids.len() != 1 {
                return Err(TensorError::RankMismatch {
                    op: "one_hot_rows",
                    expected: 1,
                    got: ids.len(),
                });
            }
            Ok(vec![ids[0], *c])
        }
        OpKind::Fused { seed, .. } => {
            if seed.is_some() {
                need(2)?;
                if shapes[0] != shapes[1] {
                    return Err(TensorError::ShapeMismatch {
                        op: "fused",
                        lhs: shapes[0].to_vec(),
                        rhs: shapes[1].to_vec(),
                    });
                }
            } else {
                need(1)?;
            }
            Ok(shapes[0].to_vec())
        }
    }
}

const F32: f64 = 4.0;

/// Computes the batch-parametric cost of `kind`.
///
/// `const_input[i]` marks operands that are captured weights; their memory
/// traffic is *shared* across a request batch (a batched GEMM streams the
/// weight matrix once), while activation traffic is per-item.
pub fn op_cost(
    kind: &OpKind,
    shapes: &[&[usize]],
    const_input: &[bool],
    out_shape: &[usize],
) -> CostSpec {
    let numel = |s: &[usize]| s.iter().product::<usize>() as f64;
    let out_n = numel(out_shape);
    // Split operand read traffic into shared (const) and per-item parts.
    let mut shared = 0.0;
    let mut per_item = out_n * F32; // output write
    for (s, &is_const) in shapes.iter().zip(const_input) {
        let b = numel(s) * F32;
        if is_const {
            shared += b;
        } else {
            per_item += b;
        }
    }
    match kind {
        OpKind::Input(_) | OpKind::Const(_) | OpKind::Reshape(_) => CostSpec::default(),
        OpKind::MatMul | OpKind::MatMulBT => {
            let (m, k) = (shapes[0][0] as f64, shapes[0][1] as f64);
            let n = out_shape[1] as f64;
            CostSpec {
                flops_per_item: 2.0 * m * k * n,
                shared_bytes: shared,
                per_item_bytes: per_item,
                launches: 1,
                ..CostSpec::default()
            }
        }
        OpKind::GruCell => {
            let h = out_shape[0] as f64;
            let i = shapes[0][0] as f64;
            CostSpec {
                flops_per_item: 6.0 * h * i + 6.0 * h * h + 12.0 * h,
                shared_bytes: shared,
                per_item_bytes: per_item,
                launches: 1,
                ..CostSpec::default()
            }
        }
        OpKind::Softmax => CostSpec {
            flops_per_item: 4.0 * out_n,
            shared_bytes: shared,
            per_item_bytes: per_item,
            launches: 1,
            ..CostSpec::default()
        },
        OpKind::LayerNorm { .. } => CostSpec {
            flops_per_item: 8.0 * out_n,
            shared_bytes: shared,
            per_item_bytes: per_item,
            launches: 1,
            ..CostSpec::default()
        },
        OpKind::Embedding => {
            // Only the selected rows are touched, not the whole table.
            let touched = out_n * F32;
            CostSpec {
                flops_per_item: 0.0,
                shared_bytes: 0.0,
                per_item_bytes: touched * 2.0 + numel(shapes[1]) * F32,
                launches: 1,
                ..CostSpec::default()
            }
        }
        OpKind::TopK { .. } => {
            let c = numel(shapes[0]);
            CostSpec {
                flops_per_item: 2.0 * c,
                shared_bytes: 0.0,
                per_item_bytes: c * F32 + out_n * F32,
                launches: 1,
                ..CostSpec::default()
            }
        }
        OpKind::ScoreTopK { .. } => {
            let (c, d) = (shapes[0][0] as f64, shapes[0][1] as f64);
            CostSpec {
                // 2cd scoring + 2c heap maintenance. The generic split
                // already covers table (shared when const), query and
                // output traffic; crucially there is no `[c]` score
                // vector written or re-read — that is the fusion saving
                // over a MatMul + TopK pair.
                flops_per_item: 2.0 * c * d + 2.0 * c,
                shared_bytes: shared,
                per_item_bytes: per_item,
                launches: 1,
                ..CostSpec::default()
            }
        }
        OpKind::ScatterAddDense { c } => CostSpec {
            flops_per_item: numel(shapes[0]),
            shared_bytes: 0.0,
            // The dense catalog-wide vector is zeroed and written per
            // request — this is exactly why the quirk is expensive.
            per_item_bytes: 2.0 * *c as f64 * F32 + numel(shapes[0]) * 2.0 * F32,
            launches: 1,
            ..CostSpec::default()
        },
        OpKind::HostOp => {
            let b = numel(shapes[0]) * F32;
            CostSpec {
                flops_per_item: 0.0,
                shared_bytes: 0.0,
                per_item_bytes: 0.0,
                launches: 0,
                transfers_per_item: 2,
                transfer_bytes_per_item: 2.0 * b,
            }
        }
        OpKind::SessionGraph { host, .. } => {
            let l = shapes[0][0] as f64;
            let base = CostSpec {
                flops_per_item: 4.0 * l * l,
                shared_bytes: 0.0,
                per_item_bytes: (l * l + 2.0 * l) * F32,
                launches: 1,
                ..CostSpec::default()
            };
            if *host {
                // Built "in NumPy": the RecBole code assembles the
                // adjacency row by row in Python, so every session
                // position costs a host<->device round-trip and the
                // device pipeline stalls for each — the root cause of
                // the paper's "repeated data transfers between CPU and
                // GPU at inference time".
                CostSpec {
                    transfers_per_item: shapes[0][0] as u64,
                    transfer_bytes_per_item: (l + l * l) * F32,
                    ..base
                }
            } else {
                base
            }
        }
        OpKind::OneHotRows { c } => {
            let l = numel(shapes[0]);
            CostSpec {
                flops_per_item: 0.0,
                shared_bytes: 0.0,
                // The full dense [l, C] matrix is zero-filled and written.
                per_item_bytes: l * *c as f64 * F32 + l * F32,
                launches: 1,
                ..CostSpec::default()
            }
        }
        OpKind::Fused { seed, steps } => {
            // One flop per step per lane — the same rate the unfused
            // elementwise ops are charged, so fusion saves launches and
            // intermediate traffic but never changes arithmetic.
            let ops_per_lane = steps.len() as f64 + if seed.is_some() { 1.0 } else { 0.0 };
            CostSpec {
                flops_per_item: ops_per_lane * out_n,
                shared_bytes: shared,
                per_item_bytes: per_item,
                launches: 1,
                ..CostSpec::default()
            }
        }
        // Remaining ops are memory-movement dominated: one launch, traffic
        // as computed, roughly one flop per output lane.
        _ => CostSpec {
            flops_per_item: out_n,
            shared_bytes: shared,
            per_item_bytes: per_item,
            launches: 1,
            ..CostSpec::default()
        },
    }
}

/// Evaluates `kind` on dense operands, producing a dense output.
pub fn eval(kind: &OpKind, inputs: &[&Tensor], out_shape: &[usize]) -> Result<Tensor, TensorError> {
    // Phantom propagation: if any operand lacks data, so does the result.
    if inputs.iter().any(|t| t.is_phantom()) {
        return Ok(Tensor::phantom(out_shape));
    }
    let out = match kind {
        OpKind::Input(_) | OpKind::Const(_) => {
            return Err(TensorError::Invalid("input/const nodes are not evaluated"))
        }
        OpKind::MatMul => {
            let (m, k) = inputs[0].dims2("matmul")?;
            let (_, n) = inputs[1].dims2("matmul")?;
            let mut out = vec![0.0; m * n];
            let (a, b) = (inputs[0].as_slice()?, inputs[1].as_slice()?);
            // Row-shard large left operands (the [C,d] x [d,1] MIPS
            // shape) over the intra-op pool; rows are independent, so
            // per-shard kernel calls are bit-identical to one serial call.
            crate::pool::parallel_rows(&mut out, m, n, |rows, chunk| {
                kernels::matmul(&a[rows.start * k..rows.end * k], b, chunk, rows.len(), k, n);
            });
            Tensor::from_vec(out, &[m, n])?
        }
        OpKind::MatMulBT => {
            let (m, k) = inputs[0].dims2("matmul_bt")?;
            let (n, _) = inputs[1].dims2("matmul_bt")?;
            let mut out = vec![0.0; m * n];
            let (a, bt) = (inputs[0].as_slice()?, inputs[1].as_slice()?);
            crate::pool::parallel_rows(&mut out, m, n, |rows, chunk| {
                kernels::matmul_bt(
                    &a[rows.start * k..rows.end * k],
                    bt,
                    chunk,
                    rows.len(),
                    k,
                    n,
                );
            });
            Tensor::from_vec(out, &[m, n])?
        }
        OpKind::Binary(op) => {
            let mut out = vec![0.0; inputs[0].len()];
            kernels::binary(*op, inputs[0].as_slice()?, inputs[1].as_slice()?, &mut out);
            Tensor::from_vec(out, out_shape)?
        }
        OpKind::BinaryRow(op) => {
            let mut out = vec![0.0; inputs[0].len()];
            kernels::binary_rowbcast(*op, inputs[0].as_slice()?, inputs[1].as_slice()?, &mut out);
            Tensor::from_vec(out, out_shape)?
        }
        OpKind::BinaryScalar(op, s) => {
            let mut out = vec![0.0; inputs[0].len()];
            kernels::binary_scalar(*op, inputs[0].as_slice()?, *s, &mut out);
            Tensor::from_vec(out, out_shape)?
        }
        OpKind::Unary(op) => {
            let mut out = vec![0.0; inputs[0].len()];
            kernels::unary(*op, inputs[0].as_slice()?, &mut out);
            Tensor::from_vec(out, out_shape)?
        }
        OpKind::Softmax => {
            let n = *inputs[0].shape().last().unwrap_or(&1);
            let mut out = vec![0.0; inputs[0].len()];
            kernels::softmax_rows(inputs[0].as_slice()?, &mut out, n.max(1));
            Tensor::from_vec(out, out_shape)?
        }
        OpKind::LayerNorm { eps } => {
            let n = *inputs[0].shape().last().unwrap_or(&1);
            let mut out = vec![0.0; inputs[0].len()];
            kernels::layernorm_rows(
                inputs[0].as_slice()?,
                inputs[1].as_slice()?,
                inputs[2].as_slice()?,
                &mut out,
                n,
                *eps,
            );
            Tensor::from_vec(out, out_shape)?
        }
        OpKind::Embedding => {
            let (c, d) = inputs[0].dims2("embedding")?;
            let l = inputs[1].dims1("embedding")?;
            // Ids are runtime data from the request path: validate them
            // here so a hostile or buggy id yields an error response, not
            // a panicked worker thread.
            for &idf in inputs[1].as_slice()? {
                let id = crate::f32_to_id(idf) as usize;
                if id >= c {
                    return Err(TensorError::IndexOutOfBounds {
                        index: id,
                        bound: c,
                    });
                }
            }
            let mut out = vec![0.0; l * d];
            kernels::embedding(inputs[0].as_slice()?, inputs[1].as_slice()?, &mut out, d);
            Tensor::from_vec(out, out_shape)?
        }
        OpKind::Concat => {
            let a = inputs[0];
            let b = inputs[1];
            if a.rank() == 1 {
                let mut out = a.as_slice()?.to_vec();
                out.extend_from_slice(b.as_slice()?);
                Tensor::from_vec(out, out_shape)?
            } else {
                let (m, n1) = a.dims2("concat")?;
                let (_, n2) = b.dims2("concat")?;
                let mut out = Vec::with_capacity(m * (n1 + n2));
                for i in 0..m {
                    out.extend_from_slice(&a.as_slice()?[i * n1..(i + 1) * n1]);
                    out.extend_from_slice(&b.as_slice()?[i * n2..(i + 1) * n2]);
                }
                Tensor::from_vec(out, out_shape)?
            }
        }
        OpKind::Transpose => {
            let (m, n) = inputs[0].dims2("transpose")?;
            let mut out = vec![0.0; m * n];
            kernels::transpose(inputs[0].as_slice()?, &mut out, m, n);
            Tensor::from_vec(out, out_shape)?
        }
        OpKind::SumRows => {
            let (_, n) = inputs[0].dims2("sum_rows")?;
            let mut out = vec![0.0; n];
            kernels::sum_rows(inputs[0].as_slice()?, &mut out, n);
            Tensor::from_vec(out, out_shape)?
        }
        OpKind::GruCell => {
            let hidden = inputs[1].dims1("gru_cell")?;
            let input = inputs[0].dims1("gru_cell")?;
            let mut out = vec![0.0; hidden];
            kernels::gru_cell(
                inputs[0].as_slice()?,
                inputs[1].as_slice()?,
                inputs[2].as_slice()?,
                inputs[3].as_slice()?,
                inputs[4].as_slice()?,
                inputs[5].as_slice()?,
                &mut out,
                hidden,
                input,
            );
            Tensor::from_vec(out, out_shape)?
        }
        OpKind::GatherRow => {
            let (l, d) = inputs[0].dims2("gather_row")?;
            let idx = crate::f32_to_id(inputs[1].get(0)?) as usize;
            if idx >= l {
                return Err(TensorError::IndexOutOfBounds {
                    index: idx,
                    bound: l,
                });
            }
            let row = inputs[0].as_slice()?[idx * d..(idx + 1) * d].to_vec();
            Tensor::from_vec(row, out_shape)?
        }
        OpKind::TopK { k } => {
            let (idx, scores) = topk::topk_auto(inputs[0].as_slice()?, *k);
            let kk = idx.len();
            let mut out = Vec::with_capacity(2 * kk);
            out.extend(idx.iter().map(|&i| crate::id_to_f32(i)));
            out.extend_from_slice(&scores);
            Tensor::from_vec(out, &[2, kk])?
        }
        OpKind::ScoreTopK { k } => {
            let (c, _d) = inputs[0].dims2("score_topk")?;
            let (idx, scores) =
                topk::score_topk(inputs[0].as_slice()?, inputs[1].as_slice()?, c, *k);
            let kk = idx.len();
            let mut out = Vec::with_capacity(2 * kk);
            out.extend(idx.iter().map(|&i| crate::id_to_f32(i)));
            out.extend_from_slice(&scores);
            Tensor::from_vec(out, &[2, kk])?
        }
        OpKind::ScatterAddDense { c } => {
            let mut out = vec![0.0; *c];
            kernels::scatter_add_dense(inputs[0].as_slice()?, inputs[1].as_slice()?, &mut out);
            Tensor::from_vec(out, out_shape)?
        }
        OpKind::HostOp => inputs[0].clone(),
        OpKind::Reshape(shape) => inputs[0].clone().reshape(shape)?,
        OpKind::SliceCols { start, end } => {
            let (m, n) = inputs[0].dims2("slice_cols")?;
            let w = end - start;
            let mut out = Vec::with_capacity(m * w);
            let src = inputs[0].as_slice()?;
            for i in 0..m {
                out.extend_from_slice(&src[i * n + start..i * n + end]);
            }
            Tensor::from_vec(out, out_shape)?
        }
        OpKind::SliceRows { start, end } => {
            let (_, n) = inputs[0].dims2("slice_rows")?;
            let src = inputs[0].as_slice()?;
            Tensor::from_vec(src[start * n..end * n].to_vec(), out_shape)?
        }
        OpKind::SessionGraph { outgoing, .. } => {
            let l = inputs[0].dims1("session_graph")?;
            let ids = inputs[0].as_slice()?;
            let mask = inputs[1].as_slice()?;
            let mut adj = vec![0.0f32; l * l];
            // Edges between consecutive valid interactions. Repeated item
            // pairs accumulate, as in SR-GNN's weighted session graph.
            for i in 0..l.saturating_sub(1) {
                if mask[i] > 0.0 && mask[i + 1] > 0.0 && ids[i] != ids[i + 1] {
                    if *outgoing {
                        adj[i * l + (i + 1)] += 1.0;
                    } else {
                        adj[(i + 1) * l + i] += 1.0;
                    }
                }
            }
            // Row-normalise (out-degree / in-degree normalisation).
            for row in adj.chunks_mut(l) {
                let s: f32 = row.iter().sum();
                if s > 0.0 {
                    for v in row.iter_mut() {
                        *v /= s;
                    }
                }
            }
            Tensor::from_vec(adj, out_shape)?
        }
        OpKind::OneHotRows { c } => {
            let l = inputs[0].dims1("one_hot_rows")?;
            let ids = inputs[0].as_slice()?;
            let mut out = vec![0.0f32; l * *c];
            for (i, &idf) in ids.iter().enumerate() {
                let id = crate::f32_to_id(idf) as usize;
                if id < *c {
                    out[i * *c + id] = 1.0;
                }
            }
            Tensor::from_vec(out, out_shape)?
        }
        OpKind::Fused { seed, steps } => {
            let a = inputs[0].as_slice()?;
            let mut out = vec![0.0; a.len()];
            match seed {
                Some(op) => {
                    let b = inputs[1].as_slice()?;
                    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                        let mut v = op.apply(x, y);
                        for s in steps {
                            v = s.apply(v);
                        }
                        *o = v;
                    }
                }
                None => {
                    for (o, &x) in out.iter_mut().zip(a) {
                        let mut v = x;
                        for s in steps {
                            v = s.apply(v);
                        }
                        *o = v;
                    }
                }
            }
            Tensor::from_vec(out, out_shape)?
        }
    };
    Ok(out)
}

/// A node of the dataflow graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// The operator.
    pub kind: OpKind,
    /// Operand node ids (always earlier in the node list).
    pub inputs: Vec<NodeId>,
    /// Inferred output shape.
    pub shape: Vec<usize>,
    /// Batch-parametric cost of the node.
    pub cost: CostSpec,
}

/// A traced, shape-static dataflow graph.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    /// Topologically ordered nodes.
    pub nodes: Vec<Node>,
    /// Constant payloads of `Const` nodes.
    pub consts: HashMap<NodeId, Arc<Tensor>>,
    /// Number of external inputs (positions `0..n_inputs`).
    pub n_inputs: usize,
    /// The node whose value is the graph result.
    pub output: NodeId,
}

impl Graph {
    /// Sums the cost specs of all nodes.
    pub fn total_cost(&self) -> CostSpec {
        let mut total = CostSpec::default();
        for node in &self.nodes {
            total += node.cost;
        }
        total
    }

    /// Number of non-trivial (launch-bearing) operations.
    pub fn launch_count(&self) -> u64 {
        self.nodes.iter().map(|n| n.cost.launches).sum()
    }

    /// Executes the graph on dense (or phantom) inputs.
    ///
    /// Returns the output tensor and the realised cost at batch size one.
    pub fn run(&self, inputs: &[Tensor]) -> Result<(Tensor, Cost), TensorError> {
        self.run_inner(inputs, None)
    }

    /// Executes the graph while timing each op, bucketed into top-k vs
    /// everything else (see [`OpTimes`]).
    ///
    /// Timing adds two `Instant` reads per op — negligible next to the
    /// ops themselves, but kept off [`Graph::run`] so the default path
    /// pays nothing.
    pub fn run_timed(&self, inputs: &[Tensor]) -> Result<(Tensor, Cost, OpTimes), TensorError> {
        let mut times = OpTimes::default();
        let (out, cost) = self.run_inner(inputs, Some(&mut times))?;
        Ok((out, cost, times))
    }

    fn run_inner(
        &self,
        inputs: &[Tensor],
        mut times: Option<&mut OpTimes>,
    ) -> Result<(Tensor, Cost), TensorError> {
        let mut values: Vec<Option<Arc<Tensor>>> = vec![None; self.nodes.len()];
        let mut cost = Cost::ZERO;
        for (id, node) in self.nodes.iter().enumerate() {
            let value = match &node.kind {
                OpKind::Input(pos) => {
                    let t = inputs
                        .get(*pos)
                        .ok_or(TensorError::Invalid("missing graph input"))?;
                    if t.shape() != node.shape.as_slice() {
                        return Err(TensorError::ShapeMismatch {
                            op: "graph input",
                            lhs: t.shape().to_vec(),
                            rhs: node.shape.clone(),
                        });
                    }
                    Arc::new(t.clone())
                }
                OpKind::Const(_) => Arc::clone(
                    self.consts
                        .get(&id)
                        .ok_or(TensorError::Invalid("missing const payload"))?,
                ),
                kind => {
                    let operand_arcs: Vec<&Arc<Tensor>> = node
                        .inputs
                        .iter()
                        .map(|&i| {
                            values[i]
                                .as_ref()
                                .ok_or(TensorError::InvalidRef { index: i })
                        })
                        .collect::<Result<_, _>>()?;
                    let operands: Vec<&Tensor> = operand_arcs.iter().map(|a| a.as_ref()).collect();
                    cost += node.cost.at_batch(1);
                    match times.as_deref_mut() {
                        Some(t) => {
                            let start = std::time::Instant::now();
                            let out = eval(kind, &operands, &node.shape)?;
                            t.add(kind, start.elapsed());
                            Arc::new(out)
                        }
                        None => Arc::new(eval(kind, &operands, &node.shape)?),
                    }
                }
            };
            values[id] = Some(value);
        }
        let out = values[self.output]
            .take()
            .ok_or(TensorError::InvalidRef { index: self.output })?;
        Ok((Arc::try_unwrap(out).unwrap_or_else(|a| (*a).clone()), cost))
    }
}

/// Wall time spent executing graph ops, split into the top-k selection
/// over the catalogue versus the rest of the forward pass.
///
/// The serving layer needs this split because top-k runs *inside* the
/// forward graph (it is an [`OpKind::TopK`] node), yet the paper reports
/// it as its own pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpTimes {
    /// Time spent in `TopK` and fused `ScoreTopK` ops.
    pub topk: std::time::Duration,
    /// Time spent in every other op.
    pub other: std::time::Duration,
}

impl OpTimes {
    /// Attributes one op's elapsed time to the right bucket.
    pub fn add(&mut self, kind: &OpKind, elapsed: std::time::Duration) {
        match kind {
            OpKind::TopK { .. } | OpKind::ScoreTopK { .. } => self.topk += elapsed,
            _ => self.other += elapsed,
        }
    }

    /// Sum of both buckets.
    pub fn total(&self) -> std::time::Duration {
        self.topk + self.other
    }

    /// Accumulates another measurement into this one.
    pub fn merge(&mut self, other: &OpTimes) {
        self.topk += other.topk;
        self.other += other.other;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;

    fn leaf(kind: OpKind, shape: &[usize]) -> Node {
        Node {
            kind,
            inputs: vec![],
            shape: shape.to_vec(),
            cost: CostSpec::default(),
        }
    }

    fn op_node(kind: OpKind, inputs: Vec<NodeId>, shapes: &[&[usize]]) -> Node {
        let shape = infer_shape(&kind, shapes).unwrap();
        let consts = vec![false; shapes.len()];
        let cost = op_cost(&kind, shapes, &consts, &shape);
        Node {
            kind,
            inputs,
            shape,
            cost,
        }
    }

    #[test]
    fn infer_shapes_for_core_ops() {
        assert_eq!(
            infer_shape(&OpKind::MatMul, &[&[2, 3], &[3, 4]]).unwrap(),
            vec![2, 4]
        );
        assert!(infer_shape(&OpKind::MatMul, &[&[2, 3], &[4, 4]]).is_err());
        assert_eq!(
            infer_shape(&OpKind::Embedding, &[&[100, 8], &[5]]).unwrap(),
            vec![5, 8]
        );
        assert_eq!(
            infer_shape(&OpKind::TopK { k: 3 }, &[&[10]]).unwrap(),
            vec![2, 3]
        );
        assert_eq!(
            infer_shape(&OpKind::Concat, &[&[4], &[6]]).unwrap(),
            vec![10]
        );
        assert_eq!(
            infer_shape(&OpKind::SliceCols { start: 1, end: 3 }, &[&[5, 4]]).unwrap(),
            vec![5, 2]
        );
    }

    #[test]
    fn matmul_cost_distinguishes_const_operands() {
        let shapes: Vec<&[usize]> = vec![&[1000, 32], &[32, 1]];
        let out = vec![1000, 1];
        let act = op_cost(&OpKind::MatMul, &shapes, &[false, false], &out);
        let wgt = op_cost(&OpKind::MatMul, &shapes, &[true, false], &out);
        assert_eq!(act.shared_bytes, 0.0);
        assert!(wgt.shared_bytes > 0.0);
        assert_eq!(
            act.flops_per_item, wgt.flops_per_item,
            "flops do not depend on const-ness"
        );
        // Total single-request traffic is identical either way.
        assert!(
            (act.at_batch(1).bytes - wgt.at_batch(1).bytes).abs() < 1e-6,
            "{} vs {}",
            act.at_batch(1).bytes,
            wgt.at_batch(1).bytes
        );
    }

    #[test]
    fn graph_runs_a_tiny_pipeline() {
        // y = sigmoid(x * W), x: [1,2], W: [2,2]
        let w = Param::new(Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap());
        let mut g = Graph::default();
        g.nodes.push(leaf(OpKind::Input(0), &[1, 2]));
        g.nodes.push(leaf(OpKind::Const(w.id()), &[2, 2]));
        g.consts.insert(1, w.shared());
        g.nodes
            .push(op_node(OpKind::MatMul, vec![0, 1], &[&[1, 2], &[2, 2]]));
        g.nodes
            .push(op_node(OpKind::Unary(UnOp::Sigmoid), vec![2], &[&[1, 2]]));
        g.n_inputs = 1;
        g.output = 3;
        let x = Tensor::from_vec(vec![0.0, 100.0], &[1, 2]).unwrap();
        let (y, cost) = g.run(&[x]).unwrap();
        let v = y.as_slice().unwrap();
        assert!((v[0] - 0.5).abs() < 1e-6);
        assert!((v[1] - 1.0).abs() < 1e-4);
        assert_eq!(cost.launches, 2);
    }

    #[test]
    fn graph_phantom_inputs_produce_phantom_output_with_cost() {
        let mut g = Graph::default();
        g.nodes.push(leaf(OpKind::Input(0), &[4]));
        g.nodes
            .push(op_node(OpKind::Unary(UnOp::Relu), vec![0], &[&[4]]));
        g.n_inputs = 1;
        g.output = 1;
        let (y, cost) = g.run(&[Tensor::phantom(&[4])]).unwrap();
        assert!(y.is_phantom());
        assert!(cost.bytes > 0.0);
    }

    #[test]
    fn graph_input_shape_mismatch_is_rejected() {
        let mut g = Graph::default();
        g.nodes.push(leaf(OpKind::Input(0), &[4]));
        g.n_inputs = 1;
        g.output = 0;
        assert!(g.run(&[Tensor::zeros(&[5])]).is_err());
    }

    #[test]
    fn fused_chain_matches_unfused_ops() {
        let x = Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3]).unwrap();
        let fused = OpKind::Fused {
            seed: None,
            steps: vec![
                FusedStep::Scalar(BinOp::Mul, 2.0),
                FusedStep::Unary(UnOp::Tanh),
            ],
        };
        let y = eval(&fused, &[&x], &[3]).unwrap();
        for (a, &b) in y.as_slice().unwrap().iter().zip(x.as_slice().unwrap()) {
            assert!((a - (2.0 * b).tanh()).abs() < 1e-6);
        }
    }

    #[test]
    fn fused_seed_combines_two_operands() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, -1.0], &[2]).unwrap();
        let fused = OpKind::Fused {
            seed: Some(BinOp::Add),
            steps: vec![FusedStep::Unary(UnOp::Relu)],
        };
        let y = eval(&fused, &[&a, &b], &[2]).unwrap();
        assert_eq!(y.as_slice().unwrap(), &[4.0, 1.0]);
    }

    #[test]
    fn host_op_costs_transfers_only() {
        let shapes: Vec<&[usize]> = vec![&[64]];
        let c = op_cost(&OpKind::HostOp, &shapes, &[false], &[64]);
        assert_eq!(c.launches, 0);
        assert_eq!(c.transfers_per_item, 2);
        assert!(c.transfer_bytes_per_item > 0.0);
    }

    #[test]
    fn scatter_add_dense_cost_scales_with_catalog() {
        let shapes: Vec<&[usize]> = vec![&[10], &[10]];
        let small = op_cost(
            &OpKind::ScatterAddDense { c: 1_000 },
            &shapes,
            &[false, false],
            &[1_000],
        );
        let big = op_cost(
            &OpKind::ScatterAddDense { c: 1_000_000 },
            &shapes,
            &[false, false],
            &[1_000_000],
        );
        assert!(big.per_item_bytes > 500.0 * small.per_item_bytes);
    }
}
