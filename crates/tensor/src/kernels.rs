//! Raw computational kernels on `f32` slices.
//!
//! These functions implement the arithmetic shared by eager execution
//! ([`crate::exec::Exec`]) and compiled-graph execution
//! ([`crate::jit::CompiledGraph`]). They are deliberately straightforward
//! loops: the reproduction models *framework* behaviour (eager dispatch vs
//! JIT fusion, CPU vs accelerator rooflines), not hand-tuned BLAS.
//! Shape checking happens in the callers; kernels assume consistent sizes.

/// The pre-SIMD 8-accumulator reduction, kept (as [`dot_autovec`]) as
/// the *scalar baseline* for the `parallel_mips` bench: it is what the
/// autovectorizer produces against the x86-64 baseline ISA (SSE2, no
/// FMA), i.e. the kernel the explicit [`crate::simd`] layer replaces.
#[inline(always)]
fn dot_gather(a: &[f32], fetch: impl Fn(usize) -> f32) -> f32 {
    let len = a.len();
    let mut acc = [0.0f32; 8];
    let mut p = 0;
    while p + 8 <= len {
        acc[0] += a[p] * fetch(p);
        acc[1] += a[p + 1] * fetch(p + 1);
        acc[2] += a[p + 2] * fetch(p + 2);
        acc[3] += a[p + 3] * fetch(p + 3);
        acc[4] += a[p + 4] * fetch(p + 4);
        acc[5] += a[p + 5] * fetch(p + 5);
        acc[6] += a[p + 6] * fetch(p + 6);
        acc[7] += a[p + 7] * fetch(p + 7);
        p += 8;
    }
    let mut tail = 0.0f32;
    while p < len {
        tail += a[p] * fetch(p);
        p += 1;
    }
    let lo = (acc[0] + acc[4]) + (acc[1] + acc[5]);
    let hi = (acc[2] + acc[6]) + (acc[3] + acc[7]);
    (lo + hi) + tail
}

/// `out[m*n] = a[m*k] * b[k*n]` (row-major).
///
/// Every matmul variant reduces through the same
/// [`crate::simd`] block core, so `matmul`, [`matmul_bt`] and [`dot`]
/// produce **bit-identical** sums for a given `(row, column)` pair. For
/// `n == 1` — the full-catalog MIPS shape `[C,d] x [d,1]` — the column
/// is contiguous and this is the 4-row-tiled streaming scan; `n > 1`
/// gathers the strided columns into blocks.
pub fn matmul(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if n == 1 {
        crate::simd::score_rows(a, k, b, 0..m, |i, s| out[i] = s);
    } else {
        crate::simd::matmul_strided(a, b, out, m, k, n);
    }
}

/// `out[m*n] = a[m*k] * b^T` where `b` is stored as `[n, k]` (row-major).
///
/// This layout is the JIT weight pre-transposition target: dot products
/// walk both operands contiguously, register-tiled four rows at a time.
pub fn matmul_bt(a: &[f32], b_t: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b_t.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    crate::simd::matmul_bt(a, b_t, out, m, k, n);
}

/// Dot product of two equally sized slices (explicit-SIMD, FMA).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    crate::simd::dot(a, b)
}

/// The pre-SIMD autovectorized dot kernel (no FMA, baseline ISA): the
/// "scalar" baseline the `parallel_mips` bench sweeps against.
#[inline]
pub fn dot_autovec(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    dot_gather(a, |p| b[p])
}

/// `out[n*m] = a^T` for `a: [m, n]`.
pub fn transpose(a: &[f32], out: &mut [f32], m: usize, n: usize) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a[i * n + j];
        }
    }
}

/// Elementwise binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// `max(a, b)`
    Max,
}

impl BinOp {
    /// Applies the operation to a pair of scalars.
    #[inline]
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Max => a.max(b),
        }
    }

    /// Stable name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Max => "max",
        }
    }
}

/// Elementwise unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// Natural exponential.
    Exp,
    /// Negation.
    Neg,
    /// Square root.
    Sqrt,
    /// Reciprocal.
    Recip,
}

impl UnOp {
    /// Applies the operation to a scalar.
    ///
    /// Transcendentals delegate to the shared [`crate::simd`] polynomial
    /// implementations, so this scalar path (used by JIT elementwise
    /// fusion) is bit-identical to the vectorized [`unary`] kernel.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            UnOp::Sigmoid => crate::simd::sigmoid_f32(x),
            UnOp::Tanh => crate::simd::tanh_f32(x),
            UnOp::Relu => x.max(0.0),
            UnOp::Gelu => crate::simd::gelu_f32(x),
            UnOp::Exp => crate::simd::exp_f32(x),
            UnOp::Neg => -x,
            UnOp::Sqrt => x.sqrt(),
            UnOp::Recip => 1.0 / x,
        }
    }

    /// Stable name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            UnOp::Sigmoid => "sigmoid",
            UnOp::Tanh => "tanh",
            UnOp::Relu => "relu",
            UnOp::Gelu => "gelu",
            UnOp::Exp => "exp",
            UnOp::Neg => "neg",
            UnOp::Sqrt => "sqrt",
            UnOp::Recip => "recip",
        }
    }
}

/// `out = op(a, b)` elementwise over equally sized slices (vectorized).
pub fn binary(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    crate::simd::binary(op, a, b, out);
}

/// `out[i*n + j] = op(a[i*n + j], row[j])`: broadcast `row` over rows of `a`.
pub fn binary_rowbcast(op: BinOp, a: &[f32], row: &[f32], out: &mut [f32]) {
    let n = row.len();
    debug_assert_eq!(a.len(), out.len());
    debug_assert!(n > 0 && a.len().is_multiple_of(n));
    for (orow, arow) in out.chunks_mut(n).zip(a.chunks(n)) {
        crate::simd::binary(op, arow, row, orow);
    }
}

/// `out = op(a, scalar)` elementwise (vectorized).
pub fn binary_scalar(op: BinOp, a: &[f32], scalar: f32, out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    crate::simd::binary_scalar(op, a, scalar, out);
}

/// `out = op(a)` elementwise (vectorized; bit-identical to per-element
/// [`UnOp::apply`] — both use the shared [`crate::simd`] scalar math).
pub fn unary(op: UnOp, a: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    crate::simd::unary(op, a, out);
}

/// Numerically stable softmax over each row of an `[m, n]` matrix.
///
/// The max and sum passes stay sequential (deterministic regardless of
/// backend); the exponential pass — the dominant cost — runs on the
/// vectorized polynomial `exp`. The sequential `sum += e` matches the
/// seed kernel's accumulation order exactly.
pub fn softmax_rows(a: &[f32], out: &mut [f32], n: usize) {
    debug_assert_eq!(a.len(), out.len());
    debug_assert!(n > 0 && a.len().is_multiple_of(n));
    for (orow, arow) in out.chunks_mut(n).zip(a.chunks(n)) {
        let max = arow.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        crate::simd::exp_sub(arow, max, orow);
        let mut sum = 0.0f32;
        for &e in orow.iter() {
            sum += e;
        }
        if sum > 0.0 {
            crate::simd::div_inplace(orow, sum);
        }
    }
}

/// Layer normalisation over each row of an `[m, n]` matrix with affine
/// parameters `gamma`, `beta` of length `n`. The mean/variance passes
/// stay sequential; the affine pass is vectorized with per-element
/// arithmetic identical to the seed kernel (bit-identical output).
pub fn layernorm_rows(a: &[f32], gamma: &[f32], beta: &[f32], out: &mut [f32], n: usize, eps: f32) {
    debug_assert_eq!(a.len(), out.len());
    debug_assert_eq!(gamma.len(), n);
    debug_assert_eq!(beta.len(), n);
    for (orow, arow) in out.chunks_mut(n).zip(a.chunks(n)) {
        let mean = arow.iter().sum::<f32>() / n as f32;
        let var = arow.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        let inv = 1.0 / (var + eps).sqrt();
        crate::simd::layernorm_affine(arow, gamma, beta, orow, mean, inv);
    }
}

/// Embedding lookup: `out[i] = table[ids[i]]` with bit-cast ids.
///
/// `table` is `[c, d]` row-major; `ids` holds `l` bit-cast `u32` ids;
/// `out` is `[l, d]`.
pub fn embedding(table: &[f32], ids: &[f32], out: &mut [f32], d: usize) {
    debug_assert_eq!(out.len(), ids.len() * d);
    for (row, &idf) in out.chunks_mut(d).zip(ids) {
        let id = crate::f32_to_id(idf) as usize;
        let src = &table[id * d..(id + 1) * d];
        row.copy_from_slice(src);
    }
}

/// Sum of the rows of an `[m, n]` matrix into a length-`n` vector.
pub fn sum_rows(a: &[f32], out: &mut [f32], n: usize) {
    debug_assert!(n > 0 && a.len().is_multiple_of(n));
    debug_assert_eq!(out.len(), n);
    out.fill(0.0);
    for row in a.chunks(n) {
        for (o, &x) in out.iter_mut().zip(row) {
            *o += x;
        }
    }
}

/// A single GRU cell step.
///
/// Gate layout follows PyTorch: `w_ih: [3h, in]`, `w_hh: [3h, h]`,
/// `b_ih`, `b_hh: [3h]` with gates ordered reset (r), update (z), new (n):
///
/// ```text
/// r = sigmoid(W_ir x + b_ir + W_hr h + b_hr)
/// z = sigmoid(W_iz x + b_iz + W_hz h + b_hz)
/// n = tanh(W_in x + b_in + r * (W_hn h + b_hn))
/// h' = (1 - z) * n + z * h
/// ```
#[allow(clippy::too_many_arguments)]
pub fn gru_cell(
    x: &[f32],
    h: &[f32],
    w_ih: &[f32],
    w_hh: &[f32],
    b_ih: &[f32],
    b_hh: &[f32],
    out: &mut [f32],
    hidden: usize,
    input: usize,
) {
    debug_assert_eq!(x.len(), input);
    debug_assert_eq!(h.len(), hidden);
    debug_assert_eq!(w_ih.len(), 3 * hidden * input);
    debug_assert_eq!(w_hh.len(), 3 * hidden * hidden);
    debug_assert_eq!(b_ih.len(), 3 * hidden);
    debug_assert_eq!(b_hh.len(), 3 * hidden);
    debug_assert_eq!(out.len(), hidden);
    for j in 0..hidden {
        let gi = |g: usize| -> f32 {
            let row = &w_ih[(g * hidden + j) * input..(g * hidden + j + 1) * input];
            dot(row, x) + b_ih[g * hidden + j]
        };
        let gh = |g: usize| -> f32 {
            let row = &w_hh[(g * hidden + j) * hidden..(g * hidden + j + 1) * hidden];
            dot(row, h) + b_hh[g * hidden + j]
        };
        let r = UnOp::Sigmoid.apply(gi(0) + gh(0));
        let z = UnOp::Sigmoid.apply(gi(1) + gh(1));
        let n = crate::simd::tanh_f32(gi(2) + r * gh(2));
        out[j] = (1.0 - z) * n + z * h[j];
    }
}

/// Scatter-add of `vals` at bit-cast `ids` into a dense length-`c` vector.
///
/// This is the kernel behind the RepeatNet RecBole quirk: a handful of
/// session scores are materialised into (and subsequently processed as) a
/// full catalog-wide dense vector.
pub fn scatter_add_dense(ids: &[f32], vals: &[f32], out: &mut [f32]) {
    debug_assert_eq!(ids.len(), vals.len());
    out.fill(0.0);
    for (&idf, &v) in ids.iter().zip(vals) {
        let id = crate::f32_to_id(idf) as usize;
        if id < out.len() {
            out[id] += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() <= tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn matmul_matches_hand_computed() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut out = [0.0; 4];
        matmul(&a, &b, &mut out, 2, 2, 2);
        assert_close(&out, &[19.0, 22.0, 43.0, 50.0], 1e-6);
    }

    #[test]
    fn matmul_bt_equals_matmul_with_transpose() {
        let m = 3;
        let k = 4;
        let n = 5;
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32) * 0.3 - 1.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * 0.1 - 0.7).collect();
        let mut expected = vec![0.0; m * n];
        matmul(&a, &b, &mut expected, m, k, n);
        let mut bt = vec![0.0; k * n];
        transpose(&b, &mut bt, k, n);
        let mut got = vec![0.0; m * n];
        matmul_bt(&a, &bt, &mut got, m, k, n);
        assert_close(&got, &expected, 1e-5);
    }

    #[test]
    fn transpose_involutes() {
        let a: Vec<f32> = (0..6).map(|i| i as f32).collect();
        let mut t = vec![0.0; 6];
        transpose(&a, &mut t, 2, 3);
        let mut tt = vec![0.0; 6];
        transpose(&t, &mut tt, 3, 2);
        assert_close(&tt, &a, 0.0);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserving() {
        let a = [1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        let mut out = [0.0; 6];
        softmax_rows(&a, &mut out, 3);
        for row in out.chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(row[0] < row[1] && row[1] < row[2]);
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let a = [1000.0, 1001.0];
        let mut out = [0.0; 2];
        softmax_rows(&a, &mut out, 2);
        assert!(out.iter().all(|x| x.is_finite()));
        assert!((out.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn layernorm_produces_zero_mean_unit_variance() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let gamma = [1.0; 4];
        let beta = [0.0; 4];
        let mut out = [0.0; 4];
        layernorm_rows(&a, &gamma, &beta, &mut out, 4, 1e-5);
        let mean: f32 = out.iter().sum::<f32>() / 4.0;
        let var: f32 = out.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn embedding_gathers_rows() {
        let table = [0.0, 0.1, 1.0, 1.1, 2.0, 2.1]; // 3 items, d = 2
        let ids = [crate::id_to_f32(2), crate::id_to_f32(0)];
        let mut out = [0.0; 4];
        embedding(&table, &ids, &mut out, 2);
        assert_close(&out, &[2.0, 2.1, 0.0, 0.1], 0.0);
    }

    #[test]
    fn gru_cell_respects_gating_extremes() {
        // With weights at zero and b_ih update-gate bias very negative,
        // z ~= 0 so h' ~= tanh(b_in).
        let hidden = 2;
        let input = 2;
        let x = [0.5, -0.5];
        let h = [0.9, -0.9];
        let w_ih = vec![0.0; 3 * hidden * input];
        let w_hh = vec![0.0; 3 * hidden * hidden];
        let mut b_ih = vec![0.0; 3 * hidden];
        let b_hh = vec![0.0; 3 * hidden];
        b_ih[hidden] = -100.0; // z gate bias for unit 0
        b_ih[hidden + 1] = -100.0;
        b_ih[2 * hidden] = 0.7; // n gate bias
        let mut out = [0.0; 2];
        gru_cell(&x, &h, &w_ih, &w_hh, &b_ih, &b_hh, &mut out, hidden, input);
        assert!((out[0] - 0.7f32.tanh()).abs() < 1e-4);
        assert!((out[1] - 0.0).abs() < 1e-4);
    }

    #[test]
    fn gru_cell_with_saturated_update_gate_keeps_state() {
        let hidden = 1;
        let input = 1;
        let x = [3.0];
        let h = [0.42];
        let w_ih = vec![0.0; 3];
        let w_hh = vec![0.0; 3];
        let mut b_ih = vec![0.0; 3];
        b_ih[1] = 100.0; // z ~= 1 keeps previous hidden state
        let b_hh = vec![0.0; 3];
        let mut out = [0.0];
        gru_cell(&x, &h, &w_ih, &w_hh, &b_ih, &b_hh, &mut out, hidden, input);
        assert!((out[0] - 0.42).abs() < 1e-5);
    }

    #[test]
    fn scatter_add_accumulates_duplicates() {
        let ids = [
            crate::id_to_f32(1),
            crate::id_to_f32(1),
            crate::id_to_f32(3),
        ];
        let vals = [0.5, 0.25, 1.0];
        let mut out = vec![9.0; 5];
        scatter_add_dense(&ids, &vals, &mut out);
        assert_close(&out, &[0.0, 0.75, 0.0, 1.0, 0.0], 1e-6);
    }

    #[test]
    fn binary_ops_elementwise() {
        let a = [1.0, 4.0, -2.0];
        let b = [2.0, 2.0, 2.0];
        let mut out = [0.0; 3];
        binary(BinOp::Div, &a, &b, &mut out);
        assert_close(&out, &[0.5, 2.0, -1.0], 1e-6);
        binary(BinOp::Max, &a, &b, &mut out);
        assert_close(&out, &[2.0, 4.0, 2.0], 1e-6);
    }

    #[test]
    fn rowbcast_applies_per_row() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let row = [10.0, 20.0];
        let mut out = [0.0; 4];
        binary_rowbcast(BinOp::Add, &a, &row, &mut out);
        assert_close(&out, &[11.0, 22.0, 13.0, 24.0], 1e-6);
    }

    #[test]
    fn unary_gelu_and_sigmoid_bounds() {
        let xs = [-5.0, -1.0, 0.0, 1.0, 5.0];
        let mut out = [0.0; 5];
        unary(UnOp::Sigmoid, &xs, &mut out);
        assert!(out.iter().all(|&y| (0.0..=1.0).contains(&y)));
        assert!((out[2] - 0.5).abs() < 1e-6);
        unary(UnOp::Gelu, &xs, &mut out);
        assert!(out[2].abs() < 1e-6);
        assert!((out[4] - 5.0).abs() < 1e-2); // gelu(x) -> x for large x
    }

    #[test]
    fn sum_rows_reduces_axis_zero() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = [0.0; 2];
        sum_rows(&a, &mut out, 2);
        assert_close(&out, &[9.0, 12.0], 1e-6);
    }
}
