//! Top-k selection over catalog score vectors.
//!
//! Every SBR model ends inference with a maximum-inner-product search: the
//! session representation is scored against all `C` catalog items and the
//! `k` best are returned. This module provides the `O(C log k)` bounded
//! min-heap selection used by the [`crate::exec::Exec::topk`] operation,
//! in three flavours sharing one selection core:
//!
//! * [`topk`] — serial reference implementation,
//! * [`topk_sharded`] — per-shard heaps merged with the same
//!   deterministic tie-break, **bit-identical** to [`topk`] for every
//!   shard count (the union of per-shard top-k is a superset of the
//!   global top-k, and the merge comparator equals the serial one),
//! * [`topk_into`] — allocation-free variant writing into reusable
//!   buffers ([`TopkScratch`]), the steady-state serving path.
//!
//! [`topk_auto`] picks serial or sharded based on input size and the
//! global [`crate::pool`] width ([`crate::pool::auto_shards`]): serial
//! below the measured crossover or on a one-thread pool, so the
//! adaptive path never loses to serial by construction.
//!
//! The **fused** family ([`score_topk`], [`score_topk_into`],
//! [`score_topk_q8_into`]) goes one step further: it scores catalog
//! rows with the [`crate::simd`] streaming scan and feeds each score
//! straight into the running heap, never materialising the `C`-length
//! score vector — the serving hot path for `ExactIndex` /
//! `QuantizedIndex` and the `ScoreTopK` graph op. Scores are the same
//! SIMD dot products and the heap update sequence is identical, so the
//! fused results are bit-identical to scoring-then-[`topk`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::ops::Range;

/// A `(score, index)` candidate ordered for a min-heap by score.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    score: f32,
    index: u32,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering turns std's max-heap into a min-heap on score;
        // ties broken by index so the result is fully deterministic.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.index.cmp(&other.index))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Never selected: worst possible score with the largest index, used to
/// pad per-shard candidate slots in the sharded merge.
const SENTINEL: Candidate = Candidate {
    score: f32::NEG_INFINITY,
    index: u32::MAX,
};

/// Descending result order: score desc, index asc. Total because NaN
/// scores are mapped to `NEG_INFINITY` at selection time.
#[inline]
fn result_order(a: &Candidate, b: &Candidate) -> Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(Ordering::Equal)
        .then_with(|| a.index.cmp(&b.index))
}

/// Core bounded-heap selection of the `k` best entries of `scores`,
/// reported with indices offset by `base`. Results land **unsorted** in
/// `buf` (cleared first); `buf`'s capacity is reused, so a warm buffer
/// makes this allocation-free.
fn select_candidates_into(scores: &[f32], base: u32, k: usize, buf: &mut Vec<Candidate>) {
    buf.clear();
    let k = k.min(scores.len());
    if k == 0 {
        return;
    }
    buf.reserve(k + 1);
    // Moving the buffer through BinaryHeap keeps its allocation.
    let mut heap = BinaryHeap::from(std::mem::take(buf));
    for (i, &s) in scores.iter().enumerate() {
        offer(&mut heap, k, base + i as u32, s);
    }
    *buf = heap.into_vec();
}

/// One heap update of the bounded selection: the *only* place scores
/// enter the heap, shared by the score-vector and fused paths so their
/// update sequences are identical. NaN scores map to `NEG_INFINITY`
/// (total order, deterministic rejection).
#[inline(always)]
fn offer(heap: &mut BinaryHeap<Candidate>, k: usize, index: u32, score: f32) {
    let s = if score.is_nan() {
        f32::NEG_INFINITY
    } else {
        score
    };
    let c = Candidate { score: s, index };
    if heap.len() < k {
        heap.push(c);
    } else if let Some(min) = heap.peek() {
        // Replace the current minimum if strictly better, or equal with
        // a smaller index (deterministic tie-break).
        let better = s > min.score || (s == min.score && c.index < min.index);
        if better {
            heap.pop();
            heap.push(c);
        }
    }
}

/// Fused selection over `rows` of a `[c, d]` table: scores stream from
/// the SIMD scan straight into the heap. `k` must already be clamped;
/// `buf`'s capacity is reused.
fn select_scored_into(
    table: &[f32],
    d: usize,
    query: &[f32],
    rows: Range<usize>,
    k: usize,
    buf: &mut Vec<Candidate>,
) {
    buf.clear();
    if k == 0 {
        return;
    }
    buf.reserve(k + 1);
    let mut heap = BinaryHeap::from(std::mem::take(buf));
    crate::simd::score_rows(table, d, query, rows, |i, s| {
        offer(&mut heap, k, i as u32, s);
    });
    *buf = heap.into_vec();
}

/// Fused int8 selection: raw integer dots are dequantised in-register
/// (`raw * scales[i] * qscale`, matching the unfused kernel's exact
/// expression) before entering the heap. Rows longer than
/// [`crate::simd::Q8_EXACT_DIM`] fall back to a plain `i32` loop so the
/// accumulation stays exact.
#[allow(clippy::too_many_arguments)]
fn select_scored_q8_into(
    data: &[i8],
    d: usize,
    scales: &[f32],
    q8: &[i32],
    qscale: f32,
    rows: Range<usize>,
    k: usize,
    buf: &mut Vec<Candidate>,
) {
    buf.clear();
    if k == 0 {
        return;
    }
    buf.reserve(k + 1);
    let mut heap = BinaryHeap::from(std::mem::take(buf));
    if d <= crate::simd::Q8_EXACT_DIM {
        crate::simd::score_rows_q8(data, d, q8, rows, |i, raw| {
            offer(&mut heap, k, i as u32, raw * scales[i] * qscale);
        });
    } else {
        for i in rows {
            let row = &data[i * d..(i + 1) * d];
            let acc: i32 = row.iter().zip(q8).map(|(&a, &b)| a as i32 * b).sum();
            offer(&mut heap, k, i as u32, acc as f32 * scales[i] * qscale);
        }
    }
    *buf = heap.into_vec();
}

fn unzip_candidates(items: &[Candidate]) -> (Vec<u32>, Vec<f32>) {
    let indices = items.iter().map(|c| c.index).collect();
    let scores = items.iter().map(|c| c.score).collect();
    (indices, scores)
}

/// Returns the indices and scores of the `k` largest entries of `scores`,
/// in descending score order. Ties are broken towards the lower index.
pub fn topk(scores: &[f32], k: usize) -> (Vec<u32>, Vec<f32>) {
    let mut items = Vec::new();
    select_candidates_into(scores, 0, k, &mut items);
    items.sort_unstable_by(result_order);
    unzip_candidates(&items)
}

/// Sharded [`topk`]: splits `scores` into `shards` contiguous ranges,
/// selects each range's `k` best on the global [`crate::pool`], then
/// merges with the serial comparator. Bit-identical to [`topk`] for any
/// `shards >= 1`.
pub fn topk_sharded(scores: &[f32], k: usize, shards: usize) -> (Vec<u32>, Vec<f32>) {
    let k = k.min(scores.len());
    if k == 0 {
        return (Vec::new(), Vec::new());
    }
    let shards = shards.clamp(1, scores.len());
    if shards == 1 {
        return topk(scores, k);
    }
    let mut partials = vec![SENTINEL; shards * k];
    fill_partials(scores, k, shards, &mut partials);
    partials.sort_unstable_by(result_order);
    partials.truncate(k);
    unzip_candidates(&partials)
}

/// Runs per-shard selection into `partials` (length `shards * k`,
/// sentinel-padded) on the global pool.
fn fill_partials(scores: &[f32], k: usize, shards: usize, partials: &mut [Candidate]) {
    debug_assert_eq!(partials.len(), shards * k);
    let ranges = crate::pool::shard_ranges(scores.len(), shards);
    let base = crate::pool::SendPtr::new(partials.as_mut_ptr());
    crate::pool::global().run_shards(shards, &|shard| {
        let range = ranges[shard].clone();
        // Each shard owns partials[shard*k .. (shard+1)*k]: disjoint.
        let slot = unsafe { std::slice::from_raw_parts_mut(base.get().add(shard * k), k) };
        let mut found = Vec::with_capacity(k + 1);
        select_candidates_into(&scores[range.clone()], range.start as u32, k, &mut found);
        slot[..found.len()].copy_from_slice(&found);
        slot[found.len()..].fill(SENTINEL);
    });
}

/// Serial-or-sharded [`topk`] based on input size and pool width; the
/// decision thresholds live in [`crate::pool::shard_count`].
pub fn topk_auto(scores: &[f32], k: usize) -> (Vec<u32>, Vec<f32>) {
    let shards = crate::pool::shard_count(scores.len(), crate::pool::current_threads());
    if shards <= 1 {
        topk(scores, k)
    } else {
        topk_sharded(scores, k, shards)
    }
}

/// Reusable selection state for [`topk_into`] and the fused
/// `score_topk_*` family: holds the candidate heap buffer (and, on
/// multi-thread pools, the per-shard partials) so steady-state
/// selection performs no heap allocation.
#[derive(Debug, Default)]
pub struct TopkScratch {
    candidates: Vec<Candidate>,
    partials: Vec<Candidate>,
}

/// Allocation-free [`topk`]: selects serially using `scratch`'s reused
/// buffers and writes the results into `out_indices` / `out_scores`
/// (cleared first). Output is bit-identical to [`topk`].
pub fn topk_into(
    scores: &[f32],
    k: usize,
    scratch: &mut TopkScratch,
    out_indices: &mut Vec<u32>,
    out_scores: &mut Vec<f32>,
) {
    out_indices.clear();
    out_scores.clear();
    select_candidates_into(scores, 0, k, &mut scratch.candidates);
    scratch.candidates.sort_unstable_by(result_order);
    out_indices.extend(scratch.candidates.iter().map(|c| c.index));
    out_scores.extend(scratch.candidates.iter().map(|c| c.score));
}

// ----------------------------------------------------------------------
// Fused score + top-k.
// ----------------------------------------------------------------------

/// Fused MIPS: the `k` best rows of a `[c, d]` table by inner product
/// with `query`, scored and selected in one streaming pass (the
/// `C`-length score vector is never materialised). Bit-identical to
/// `topk(scores, k)` over per-row [`crate::simd::dot`] scores.
/// Shard count adapts to catalog size and pool width.
pub fn score_topk(table: &[f32], query: &[f32], c: usize, k: usize) -> (Vec<u32>, Vec<f32>) {
    let mut ids = Vec::new();
    let mut scores = Vec::new();
    let mut scratch = TopkScratch::default();
    score_topk_into(table, query, c, k, &mut scratch, &mut ids, &mut scores);
    (ids, scores)
}

/// [`score_topk`] with an explicit shard count (bench sweeps); results
/// are bit-identical for any `shards >= 1`.
pub fn score_topk_sharded(
    table: &[f32],
    query: &[f32],
    c: usize,
    k: usize,
    shards: usize,
) -> (Vec<u32>, Vec<f32>) {
    let mut ids = Vec::new();
    let mut scores = Vec::new();
    let mut scratch = TopkScratch::default();
    score_topk_dispatch(
        table,
        query,
        c,
        k,
        shards.clamp(1, c.max(1)),
        &mut scratch,
        &mut ids,
        &mut scores,
    );
    (ids, scores)
}

/// Allocation-free fused MIPS with thread-and-size-adaptive sharding
/// ([`crate::pool::auto_shards`]): serial below the crossover or on a
/// one-thread pool — never slower than serial by construction.
pub fn score_topk_into(
    table: &[f32],
    query: &[f32],
    c: usize,
    k: usize,
    scratch: &mut TopkScratch,
    out_indices: &mut Vec<u32>,
    out_scores: &mut Vec<f32>,
) {
    etude_obs::profile_scope!("tensor::score_topk");
    score_topk_dispatch(
        table,
        query,
        c,
        k,
        crate::pool::auto_shards(c),
        scratch,
        out_indices,
        out_scores,
    );
}

#[allow(clippy::too_many_arguments)]
fn score_topk_dispatch(
    table: &[f32],
    query: &[f32],
    c: usize,
    k: usize,
    shards: usize,
    scratch: &mut TopkScratch,
    out_indices: &mut Vec<u32>,
    out_scores: &mut Vec<f32>,
) {
    let d = query.len();
    debug_assert_eq!(table.len(), c * d, "table shape mismatch");
    out_indices.clear();
    out_scores.clear();
    let k = k.min(c);
    if k == 0 {
        return;
    }
    if shards <= 1 {
        select_scored_into(table, d, query, 0..c, k, &mut scratch.candidates);
        scratch.candidates.sort_unstable_by(result_order);
        out_indices.extend(scratch.candidates.iter().map(|c| c.index));
        out_scores.extend(scratch.candidates.iter().map(|c| c.score));
        return;
    }
    let ranges = crate::pool::shard_ranges(c, shards);
    scratch.partials.clear();
    scratch.partials.resize(shards * k, SENTINEL);
    let base = crate::pool::SendPtr::new(scratch.partials.as_mut_ptr());
    crate::pool::global().run_shards(shards, &|shard| {
        // Each shard owns partials[shard*k .. (shard+1)*k]: disjoint.
        let slot = unsafe { std::slice::from_raw_parts_mut(base.get().add(shard * k), k) };
        let mut found = Vec::with_capacity(k + 1);
        select_scored_into(table, d, query, ranges[shard].clone(), k, &mut found);
        slot[..found.len()].copy_from_slice(&found);
        slot[found.len()..].fill(SENTINEL);
    });
    scratch.partials.sort_unstable_by(result_order);
    out_indices.extend(scratch.partials[..k].iter().map(|c| c.index));
    out_scores.extend(scratch.partials[..k].iter().map(|c| c.score));
}

/// Allocation-free fused int8 MIPS over a `[c, d]` quantised table with
/// per-row `scales` and a pre-quantised query `q8` (per-tensor scale
/// `qscale`): dequantisation happens in-register per score. Sharding is
/// adaptive like [`score_topk_into`].
#[allow(clippy::too_many_arguments)]
pub fn score_topk_q8_into(
    data: &[i8],
    scales: &[f32],
    q8: &[i32],
    qscale: f32,
    c: usize,
    k: usize,
    scratch: &mut TopkScratch,
    out_indices: &mut Vec<u32>,
    out_scores: &mut Vec<f32>,
) {
    etude_obs::profile_scope!("tensor::score_topk_q8");
    let d = q8.len();
    debug_assert_eq!(data.len(), c * d, "table shape mismatch");
    debug_assert_eq!(scales.len(), c, "per-row scales mismatch");
    out_indices.clear();
    out_scores.clear();
    let k = k.min(c);
    if k == 0 {
        return;
    }
    let shards = crate::pool::auto_shards(c);
    if shards <= 1 {
        select_scored_q8_into(
            data,
            d,
            scales,
            q8,
            qscale,
            0..c,
            k,
            &mut scratch.candidates,
        );
        scratch.candidates.sort_unstable_by(result_order);
        out_indices.extend(scratch.candidates.iter().map(|c| c.index));
        out_scores.extend(scratch.candidates.iter().map(|c| c.score));
        return;
    }
    let ranges = crate::pool::shard_ranges(c, shards);
    scratch.partials.clear();
    scratch.partials.resize(shards * k, SENTINEL);
    let base = crate::pool::SendPtr::new(scratch.partials.as_mut_ptr());
    crate::pool::global().run_shards(shards, &|shard| {
        let slot = unsafe { std::slice::from_raw_parts_mut(base.get().add(shard * k), k) };
        let mut found = Vec::with_capacity(k + 1);
        select_scored_q8_into(
            data,
            d,
            scales,
            q8,
            qscale,
            ranges[shard].clone(),
            k,
            &mut found,
        );
        slot[..found.len()].copy_from_slice(&found);
        slot[found.len()..].fill(SENTINEL);
    });
    scratch.partials.sort_unstable_by(result_order);
    out_indices.extend(scratch.partials[..k].iter().map(|c| c.index));
    out_scores.extend(scratch.partials[..k].iter().map(|c| c.score));
}

// ----------------------------------------------------------------------
// Cross-shard merge (scatter/gather serving tier).
// ----------------------------------------------------------------------

/// Merges per-shard top-k partials — `(global_ids, scores)` pairs as
/// produced by a [`score_topk`] scan over a contiguous catalog slice
/// with its ids offset to global row numbers — into the overall top-k.
///
/// The comparator is `result_order`, the same one used by every
/// selection path in this module (score descending, global id ascending
/// on ties, NaN mapped to `NEG_INFINITY`). Because each partial is the
/// complete top-k of its slice and slices tile the catalog, the merged
/// result is **bit-identical** to a single [`score_topk`] over the whole
/// table. Partials may be shorter than `k` (small or empty shards) and
/// any subset of shards may be supplied (the degraded serving path):
/// the merge is then the exact top-k of the surviving slices.
pub fn merge_shard_topk(partials: &[(Vec<u32>, Vec<f32>)], k: usize) -> (Vec<u32>, Vec<f32>) {
    let mut items: Vec<Candidate> = Vec::with_capacity(partials.iter().map(|(i, _)| i.len()).sum());
    for (ids, scores) in partials {
        debug_assert_eq!(ids.len(), scores.len(), "ragged partial");
        for (&index, &score) in ids.iter().zip(scores) {
            let score = if score.is_nan() {
                f32::NEG_INFINITY
            } else {
                score
            };
            items.push(Candidate { score, index });
        }
    }
    items.sort_unstable_by(result_order);
    items.truncate(k);
    unzip_candidates(&items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_largest_in_order() {
        let scores = [0.1, 0.9, 0.5, 0.7, 0.3];
        let (idx, val) = topk(&scores, 3);
        assert_eq!(idx, vec![1, 3, 2]);
        assert_eq!(val, vec![0.9, 0.7, 0.5]);
    }

    #[test]
    fn k_larger_than_input_returns_all_sorted() {
        let scores = [2.0, 1.0, 3.0];
        let (idx, val) = topk(&scores, 10);
        assert_eq!(idx, vec![2, 0, 1]);
        assert_eq!(val, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn k_zero_is_empty() {
        let (idx, val) = topk(&[1.0, 2.0], 0);
        assert!(idx.is_empty() && val.is_empty());
    }

    #[test]
    fn ties_break_towards_lower_index() {
        let scores = [1.0, 1.0, 1.0, 1.0];
        let (idx, _) = topk(&scores, 2);
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn matches_full_sort_on_random_input() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        for _ in 0..20 {
            let n = rng.gen_range(1..200);
            let k = rng.gen_range(1..=n);
            let scores: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let (idx, val) = topk(&scores, k);
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                scores[b]
                    .partial_cmp(&scores[a])
                    .unwrap()
                    .then_with(|| a.cmp(&b))
            });
            let expect_idx: Vec<u32> = order[..k].iter().map(|&i| i as u32).collect();
            assert_eq!(idx, expect_idx);
            for (v, &i) in val.iter().zip(&idx) {
                assert_eq!(*v, scores[i as usize]);
            }
        }
    }

    #[test]
    fn handles_nan_without_panicking() {
        let scores = [0.5, f32::NAN, 0.9];
        let (idx, _) = topk(&scores, 2);
        assert_eq!(idx.len(), 2);
        assert!(idx.contains(&2));
    }

    #[test]
    fn sharded_matches_serial_for_every_shard_count() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        for _ in 0..10 {
            let n = rng.gen_range(1..500);
            let k = rng.gen_range(1..30);
            let scores: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let serial = topk(&scores, k);
            for shards in 1..=8 {
                assert_eq!(
                    topk_sharded(&scores, k, shards),
                    serial,
                    "n={n} k={k} shards={shards}"
                );
            }
        }
    }

    #[test]
    fn sharded_handles_ties_and_nan_identically() {
        let mut scores = vec![1.0f32; 100];
        scores[37] = f32::NAN;
        scores[61] = 2.0;
        for shards in 1..=6 {
            assert_eq!(topk_sharded(&scores, 5, shards), topk(&scores, 5));
        }
    }

    #[test]
    fn into_variant_matches_and_reuses_buffers() {
        let scores: Vec<f32> = (0..300).map(|i| ((i * 37) % 101) as f32).collect();
        let mut scratch = TopkScratch::default();
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for _ in 0..3 {
            topk_into(&scores, 21, &mut scratch, &mut idx, &mut val);
            let (eidx, eval) = topk(&scores, 21);
            assert_eq!(idx, eidx);
            assert_eq!(val, eval);
        }
    }

    #[test]
    fn fused_score_topk_matches_score_then_topk() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(23);
        for &(c, d) in &[(1usize, 1usize), (5, 3), (97, 8), (300, 17), (1000, 32)] {
            let table: Vec<f32> = (0..c * d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let query: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let k = rng.gen_range(1..=c.min(25));
            let scores: Vec<f32> = (0..c)
                .map(|i| crate::simd::dot(&table[i * d..(i + 1) * d], &query))
                .collect();
            let expect = topk(&scores, k);
            assert_eq!(
                score_topk(&table, &query, c, k),
                expect,
                "c={c} d={d} k={k}"
            );
            for shards in 1..=6 {
                assert_eq!(
                    score_topk_sharded(&table, &query, c, k, shards),
                    expect,
                    "c={c} d={d} k={k} shards={shards}"
                );
            }
        }
    }

    #[test]
    fn fused_q8_matches_unfused_int8_scan() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(29);
        let (c, d, k) = (500usize, 16usize, 21usize);
        let data: Vec<i8> = (0..c * d)
            .map(|_| rng.gen_range(-127i32..=127) as i8)
            .collect();
        let scales: Vec<f32> = (0..c).map(|_| rng.gen_range(0.001f32..0.02)).collect();
        let q8: Vec<i32> = (0..d).map(|_| rng.gen_range(-127i32..=127)).collect();
        let qscale = 0.0137f32;
        let scores: Vec<f32> = (0..c)
            .map(|r| {
                let row = &data[r * d..(r + 1) * d];
                let acc: i32 = row.iter().zip(&q8).map(|(&a, &b)| a as i32 * b).sum();
                acc as f32 * scales[r] * qscale
            })
            .collect();
        let mut scratch = TopkScratch::default();
        let (mut ids, mut vals) = (Vec::new(), Vec::new());
        score_topk_q8_into(
            &data,
            &scales,
            &q8,
            qscale,
            c,
            k,
            &mut scratch,
            &mut ids,
            &mut vals,
        );
        assert_eq!((ids, vals), topk(&scores, k));
    }

    #[test]
    fn fused_rejects_nan_scores_deterministically() {
        // A NaN query poisons every dot product; the fused scan must map
        // them all to NEG_INFINITY and fall back to index order, exactly
        // like the unfused reference.
        let (c, d) = (50usize, 4usize);
        let table: Vec<f32> = (0..c * d).map(|i| i as f32 * 0.01).collect();
        let mut query = vec![1.0f32; d];
        query[2] = f32::NAN;
        let (ids, vals) = score_topk(&table, &query, c, 5);
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(vals.iter().all(|v| *v == f32::NEG_INFINITY));
        // One NaN row (not the whole query) is rejected deterministically.
        let query = vec![1.0f32; d];
        let mut table = table;
        table[7 * d] = f32::NAN;
        let scores: Vec<f32> = (0..c)
            .map(|i| crate::simd::dot(&table[i * d..(i + 1) * d], &query))
            .collect();
        assert_eq!(score_topk(&table, &query, c, 10), topk(&scores, 10));
    }

    #[test]
    fn auto_shard_choice_is_serial_below_crossover() {
        // Satellite regression: the adaptive path must pick the serial
        // kernel (1 shard) whenever the pool has one thread or the input
        // is below the measured crossover — so it cannot lose to serial.
        assert_eq!(crate::pool::shard_count(10_000, 1), 1);
        assert_eq!(crate::pool::shard_count(10_000, 8), 1);
        assert_eq!(crate::pool::shard_count(1_000_000, 1), 1);
        assert!(crate::pool::auto_shards(10_000) == 1 || crate::pool::current_threads() > 1);
    }

    #[test]
    fn auto_is_not_slower_than_serial_at_small_catalogs() {
        // Timing half of the satellite regression at C = 10^4: the auto
        // path routes to the identical serial code below the crossover,
        // so its median must stay within 5% of serial (allowing noise).
        let n = 10_000;
        let scores: Vec<f32> = (0..n)
            .map(|i| ((i * 2_654_435_761usize) % 1_000_003) as f32)
            .collect();
        let median = |f: &dyn Fn() -> (Vec<u32>, Vec<f32>)| {
            let mut times: Vec<u128> = (0..9)
                .map(|_| {
                    let t = std::time::Instant::now();
                    std::hint::black_box(f());
                    t.elapsed().as_nanos()
                })
                .collect();
            times.sort_unstable();
            times[times.len() / 2]
        };
        let serial = median(&|| topk(&scores, 21));
        let auto = median(&|| topk_auto(&scores, 21));
        assert!(
            auto as f64 <= serial as f64 * 1.05 || auto < serial + 50_000,
            "auto {auto} ns vs serial {serial} ns at C=10^4"
        );
    }

    #[test]
    fn merge_of_slice_partials_matches_global_scan() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(41);
        for _ in 0..10 {
            let c = rng.gen_range(20..400);
            let d = rng.gen_range(1..16);
            let k = rng.gen_range(1..40);
            let table: Vec<f32> = (0..c * d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let query: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let expect = score_topk(&table, &query, c, k);
            for groups in 1..=5 {
                let ranges = crate::pool::shard_ranges(c, groups.min(c));
                let partials: Vec<(Vec<u32>, Vec<f32>)> = ranges
                    .iter()
                    .map(|r| {
                        let slice = &table[r.start * d..r.end * d];
                        let (ids, scores) = score_topk(slice, &query, r.len(), k);
                        (ids.iter().map(|i| i + r.start as u32).collect(), scores)
                    })
                    .collect();
                assert_eq!(
                    merge_shard_topk(&partials, k),
                    expect,
                    "c={c} d={d} k={k} groups={groups}"
                );
            }
        }
    }

    #[test]
    fn merge_breaks_cross_shard_ties_by_global_id() {
        // Identical scores on different shards: the lower global id wins,
        // exactly as in the unsharded scan.
        let a = (vec![4u32, 0], vec![1.0f32, 0.5]);
        let b = (vec![2u32, 9], vec![1.0f32, 0.5]);
        let (ids, scores) = merge_shard_topk(&[a, b], 3);
        assert_eq!(ids, vec![2, 4, 0]);
        assert_eq!(scores, vec![1.0, 1.0, 0.5]);
    }

    #[test]
    fn merge_handles_empty_and_short_partials() {
        let empty = (Vec::new(), Vec::new());
        let short = (vec![7u32], vec![0.25f32]);
        let (ids, scores) = merge_shard_topk(&[empty, short], 21);
        assert_eq!(ids, vec![7]);
        assert_eq!(scores, vec![0.25]);
        let (ids, scores) = merge_shard_topk(&[], 21);
        assert!(ids.is_empty() && scores.is_empty());
    }

    #[test]
    fn merge_maps_nan_to_neg_infinity() {
        let bad = (vec![3u32], vec![f32::NAN]);
        let good = (vec![5u32], vec![-1.0f32]);
        let (ids, scores) = merge_shard_topk(&[bad, good], 2);
        assert_eq!(ids, vec![5, 3]);
        assert_eq!(scores[1], f32::NEG_INFINITY);
    }

    #[test]
    fn auto_routes_large_inputs_through_shards() {
        // Above the parallel threshold the auto path must still be
        // bit-identical to the serial reference.
        let n = crate::pool::PAR_THRESHOLD * 2;
        let scores: Vec<f32> = (0..n)
            .map(|i| ((i * 2_654_435_761) % 1_000_003) as f32)
            .collect();
        assert_eq!(topk_auto(&scores, 21), topk(&scores, 21));
    }
}
