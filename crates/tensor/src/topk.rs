//! Top-k selection over catalog score vectors.
//!
//! Every SBR model ends inference with a maximum-inner-product search: the
//! session representation is scored against all `C` catalog items and the
//! `k` best are returned. This module provides the `O(C log k)` bounded
//! min-heap selection used by the [`crate::exec::Exec::topk`] operation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A `(score, index)` candidate ordered for a min-heap by score.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    score: f32,
    index: u32,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering turns std's max-heap into a min-heap on score;
        // ties broken by index so the result is fully deterministic.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.index.cmp(&other.index))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Returns the indices and scores of the `k` largest entries of `scores`,
/// in descending score order. Ties are broken towards the lower index.
pub fn topk(scores: &[f32], k: usize) -> (Vec<u32>, Vec<f32>) {
    let k = k.min(scores.len());
    if k == 0 {
        return (Vec::new(), Vec::new());
    }
    let mut heap: BinaryHeap<Candidate> = BinaryHeap::with_capacity(k + 1);
    for (i, &s) in scores.iter().enumerate() {
        // NaN scores sort below everything, keeping heap order total.
        let s = if s.is_nan() { f32::NEG_INFINITY } else { s };
        let c = Candidate {
            score: s,
            index: i as u32,
        };
        if heap.len() < k {
            heap.push(c);
        } else if let Some(min) = heap.peek() {
            // Replace the current minimum if strictly better, or equal with
            // a smaller index (deterministic tie-break).
            let better = s > min.score || (s == min.score && c.index < min.index);
            if better {
                heap.pop();
                heap.push(c);
            }
        }
    }
    let mut items: Vec<Candidate> = heap.into_vec();
    items.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.index.cmp(&b.index))
    });
    let indices = items.iter().map(|c| c.index).collect();
    let scores = items.iter().map(|c| c.score).collect();
    (indices, scores)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_largest_in_order() {
        let scores = [0.1, 0.9, 0.5, 0.7, 0.3];
        let (idx, val) = topk(&scores, 3);
        assert_eq!(idx, vec![1, 3, 2]);
        assert_eq!(val, vec![0.9, 0.7, 0.5]);
    }

    #[test]
    fn k_larger_than_input_returns_all_sorted() {
        let scores = [2.0, 1.0, 3.0];
        let (idx, val) = topk(&scores, 10);
        assert_eq!(idx, vec![2, 0, 1]);
        assert_eq!(val, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn k_zero_is_empty() {
        let (idx, val) = topk(&[1.0, 2.0], 0);
        assert!(idx.is_empty() && val.is_empty());
    }

    #[test]
    fn ties_break_towards_lower_index() {
        let scores = [1.0, 1.0, 1.0, 1.0];
        let (idx, _) = topk(&scores, 2);
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn matches_full_sort_on_random_input() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        for _ in 0..20 {
            let n = rng.gen_range(1..200);
            let k = rng.gen_range(1..=n);
            let scores: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let (idx, val) = topk(&scores, k);
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                scores[b]
                    .partial_cmp(&scores[a])
                    .unwrap()
                    .then_with(|| a.cmp(&b))
            });
            let expect_idx: Vec<u32> = order[..k].iter().map(|&i| i as u32).collect();
            assert_eq!(idx, expect_idx);
            for (v, &i) in val.iter().zip(&idx) {
                assert_eq!(*v, scores[i as usize]);
            }
        }
    }

    #[test]
    fn handles_nan_without_panicking() {
        let scores = [0.5, f32::NAN, 0.9];
        let (idx, _) = topk(&scores, 2);
        assert_eq!(idx.len(), 2);
        assert!(idx.contains(&2));
    }
}
