//! Top-k selection over catalog score vectors.
//!
//! Every SBR model ends inference with a maximum-inner-product search: the
//! session representation is scored against all `C` catalog items and the
//! `k` best are returned. This module provides the `O(C log k)` bounded
//! min-heap selection used by the [`crate::exec::Exec::topk`] operation,
//! in three flavours sharing one selection core:
//!
//! * [`topk`] — serial reference implementation,
//! * [`topk_sharded`] — per-shard heaps merged with the same
//!   deterministic tie-break, **bit-identical** to [`topk`] for every
//!   shard count (the union of per-shard top-k is a superset of the
//!   global top-k, and the merge comparator equals the serial one),
//! * [`topk_into`] — allocation-free variant writing into reusable
//!   buffers ([`TopkScratch`]), the steady-state serving path.
//!
//! [`topk_auto`] picks serial or sharded based on input size and the
//! global [`crate::pool`] width.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A `(score, index)` candidate ordered for a min-heap by score.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    score: f32,
    index: u32,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering turns std's max-heap into a min-heap on score;
        // ties broken by index so the result is fully deterministic.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.index.cmp(&other.index))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Never selected: worst possible score with the largest index, used to
/// pad per-shard candidate slots in the sharded merge.
const SENTINEL: Candidate = Candidate {
    score: f32::NEG_INFINITY,
    index: u32::MAX,
};

/// Descending result order: score desc, index asc. Total because NaN
/// scores are mapped to `NEG_INFINITY` at selection time.
#[inline]
fn result_order(a: &Candidate, b: &Candidate) -> Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(Ordering::Equal)
        .then_with(|| a.index.cmp(&b.index))
}

/// Core bounded-heap selection of the `k` best entries of `scores`,
/// reported with indices offset by `base`. Results land **unsorted** in
/// `buf` (cleared first); `buf`'s capacity is reused, so a warm buffer
/// makes this allocation-free.
fn select_candidates_into(scores: &[f32], base: u32, k: usize, buf: &mut Vec<Candidate>) {
    buf.clear();
    let k = k.min(scores.len());
    if k == 0 {
        return;
    }
    buf.reserve(k + 1);
    // Moving the buffer through BinaryHeap keeps its allocation.
    let mut heap = BinaryHeap::from(std::mem::take(buf));
    for (i, &s) in scores.iter().enumerate() {
        // NaN scores sort below everything, keeping heap order total.
        let s = if s.is_nan() { f32::NEG_INFINITY } else { s };
        let c = Candidate {
            score: s,
            index: base + i as u32,
        };
        if heap.len() < k {
            heap.push(c);
        } else if let Some(min) = heap.peek() {
            // Replace the current minimum if strictly better, or equal with
            // a smaller index (deterministic tie-break).
            let better = s > min.score || (s == min.score && c.index < min.index);
            if better {
                heap.pop();
                heap.push(c);
            }
        }
    }
    *buf = heap.into_vec();
}

fn unzip_candidates(items: &[Candidate]) -> (Vec<u32>, Vec<f32>) {
    let indices = items.iter().map(|c| c.index).collect();
    let scores = items.iter().map(|c| c.score).collect();
    (indices, scores)
}

/// Returns the indices and scores of the `k` largest entries of `scores`,
/// in descending score order. Ties are broken towards the lower index.
pub fn topk(scores: &[f32], k: usize) -> (Vec<u32>, Vec<f32>) {
    let mut items = Vec::new();
    select_candidates_into(scores, 0, k, &mut items);
    items.sort_unstable_by(result_order);
    unzip_candidates(&items)
}

/// Sharded [`topk`]: splits `scores` into `shards` contiguous ranges,
/// selects each range's `k` best on the global [`crate::pool`], then
/// merges with the serial comparator. Bit-identical to [`topk`] for any
/// `shards >= 1`.
pub fn topk_sharded(scores: &[f32], k: usize, shards: usize) -> (Vec<u32>, Vec<f32>) {
    let k = k.min(scores.len());
    if k == 0 {
        return (Vec::new(), Vec::new());
    }
    let shards = shards.clamp(1, scores.len());
    if shards == 1 {
        return topk(scores, k);
    }
    let mut partials = vec![SENTINEL; shards * k];
    fill_partials(scores, k, shards, &mut partials);
    partials.sort_unstable_by(result_order);
    partials.truncate(k);
    unzip_candidates(&partials)
}

/// Runs per-shard selection into `partials` (length `shards * k`,
/// sentinel-padded) on the global pool.
fn fill_partials(scores: &[f32], k: usize, shards: usize, partials: &mut [Candidate]) {
    debug_assert_eq!(partials.len(), shards * k);
    let ranges = crate::pool::shard_ranges(scores.len(), shards);
    let base = crate::pool::SendPtr::new(partials.as_mut_ptr());
    crate::pool::global().run_shards(shards, &|shard| {
        let range = ranges[shard].clone();
        // Each shard owns partials[shard*k .. (shard+1)*k]: disjoint.
        let slot = unsafe { std::slice::from_raw_parts_mut(base.get().add(shard * k), k) };
        let mut found = Vec::with_capacity(k + 1);
        select_candidates_into(&scores[range.clone()], range.start as u32, k, &mut found);
        slot[..found.len()].copy_from_slice(&found);
        slot[found.len()..].fill(SENTINEL);
    });
}

/// Serial-or-sharded [`topk`] based on input size and pool width; the
/// decision thresholds live in [`crate::pool::shard_count`].
pub fn topk_auto(scores: &[f32], k: usize) -> (Vec<u32>, Vec<f32>) {
    let shards = crate::pool::shard_count(scores.len(), crate::pool::current_threads());
    if shards <= 1 {
        topk(scores, k)
    } else {
        topk_sharded(scores, k, shards)
    }
}

/// Reusable selection state for [`topk_into`]: holds the candidate heap
/// buffer so steady-state selection performs no heap allocation.
#[derive(Debug, Default)]
pub struct TopkScratch {
    candidates: Vec<Candidate>,
}

/// Allocation-free [`topk`]: selects serially using `scratch`'s reused
/// buffers and writes the results into `out_indices` / `out_scores`
/// (cleared first). Output is bit-identical to [`topk`].
pub fn topk_into(
    scores: &[f32],
    k: usize,
    scratch: &mut TopkScratch,
    out_indices: &mut Vec<u32>,
    out_scores: &mut Vec<f32>,
) {
    out_indices.clear();
    out_scores.clear();
    select_candidates_into(scores, 0, k, &mut scratch.candidates);
    scratch.candidates.sort_unstable_by(result_order);
    out_indices.extend(scratch.candidates.iter().map(|c| c.index));
    out_scores.extend(scratch.candidates.iter().map(|c| c.score));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_largest_in_order() {
        let scores = [0.1, 0.9, 0.5, 0.7, 0.3];
        let (idx, val) = topk(&scores, 3);
        assert_eq!(idx, vec![1, 3, 2]);
        assert_eq!(val, vec![0.9, 0.7, 0.5]);
    }

    #[test]
    fn k_larger_than_input_returns_all_sorted() {
        let scores = [2.0, 1.0, 3.0];
        let (idx, val) = topk(&scores, 10);
        assert_eq!(idx, vec![2, 0, 1]);
        assert_eq!(val, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn k_zero_is_empty() {
        let (idx, val) = topk(&[1.0, 2.0], 0);
        assert!(idx.is_empty() && val.is_empty());
    }

    #[test]
    fn ties_break_towards_lower_index() {
        let scores = [1.0, 1.0, 1.0, 1.0];
        let (idx, _) = topk(&scores, 2);
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn matches_full_sort_on_random_input() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        for _ in 0..20 {
            let n = rng.gen_range(1..200);
            let k = rng.gen_range(1..=n);
            let scores: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let (idx, val) = topk(&scores, k);
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                scores[b]
                    .partial_cmp(&scores[a])
                    .unwrap()
                    .then_with(|| a.cmp(&b))
            });
            let expect_idx: Vec<u32> = order[..k].iter().map(|&i| i as u32).collect();
            assert_eq!(idx, expect_idx);
            for (v, &i) in val.iter().zip(&idx) {
                assert_eq!(*v, scores[i as usize]);
            }
        }
    }

    #[test]
    fn handles_nan_without_panicking() {
        let scores = [0.5, f32::NAN, 0.9];
        let (idx, _) = topk(&scores, 2);
        assert_eq!(idx.len(), 2);
        assert!(idx.contains(&2));
    }

    #[test]
    fn sharded_matches_serial_for_every_shard_count() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        for _ in 0..10 {
            let n = rng.gen_range(1..500);
            let k = rng.gen_range(1..30);
            let scores: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let serial = topk(&scores, k);
            for shards in 1..=8 {
                assert_eq!(
                    topk_sharded(&scores, k, shards),
                    serial,
                    "n={n} k={k} shards={shards}"
                );
            }
        }
    }

    #[test]
    fn sharded_handles_ties_and_nan_identically() {
        let mut scores = vec![1.0f32; 100];
        scores[37] = f32::NAN;
        scores[61] = 2.0;
        for shards in 1..=6 {
            assert_eq!(topk_sharded(&scores, 5, shards), topk(&scores, 5));
        }
    }

    #[test]
    fn into_variant_matches_and_reuses_buffers() {
        let scores: Vec<f32> = (0..300).map(|i| ((i * 37) % 101) as f32).collect();
        let mut scratch = TopkScratch::default();
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for _ in 0..3 {
            topk_into(&scores, 21, &mut scratch, &mut idx, &mut val);
            let (eidx, eval) = topk(&scores, 21);
            assert_eq!(idx, eidx);
            assert_eq!(val, eval);
        }
    }

    #[test]
    fn auto_routes_large_inputs_through_shards() {
        // Above the parallel threshold the auto path must still be
        // bit-identical to the serial reference.
        let n = crate::pool::PAR_THRESHOLD * 2;
        let scores: Vec<f32> = (0..n)
            .map(|i| ((i * 2_654_435_761) % 1_000_003) as f32)
            .collect();
        assert_eq!(topk_auto(&scores, 21), topk(&scores, 21));
    }
}
