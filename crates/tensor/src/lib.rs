//! # etude-tensor
//!
//! A pure-Rust tensor runtime purpose-built for reproducing the ETUDE
//! benchmarking framework (ICDE 2024). It substitutes for PyTorch / tch-rs
//! in the original system and provides:
//!
//! * dense f32 tensors with the operator set required by the ten
//!   session-based recommendation models of the paper ([`Tensor`], [`Exec`]),
//! * *phantom* (cost-only) execution, which propagates shapes and operation
//!   costs without touching data, so catalogs of 10–20 million items can be
//!   benchmarked without allocating multi-gigabyte embedding tables,
//! * analytic **device models** ([`DeviceProfile`]) for the CPU and GPU
//!   instance types of the paper (e2, NVidia T4, NVidia A100), which convert
//!   accumulated operation costs into latencies via a roofline model,
//! * **graph capture** by tracing ([`Graph`]) and a **JIT optimiser**
//!   ([`jit`]) with constant folding, elementwise fusion, dead-code
//!   elimination and weight pre-transposition — the stand-in for
//!   `torch.jit.optimize_for_inference`.
//!
//! The same model code executes eagerly, in cost-only mode, or as an
//! optimised compiled graph; this mirrors the paper's eager vs JIT
//! comparison (Figure 3) on real code paths.
//!
//! ## Example
//!
//! ```
//! use etude_tensor::{Exec, ExecMode, Device, Tensor, Param};
//!
//! let w = Param::new(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
//! let mut exec = Exec::new(ExecMode::Real, Device::cpu());
//! let x = exec.input(Tensor::from_vec(vec![1.0, 0.0], &[1, 2]).unwrap()).unwrap();
//! let wr = exec.param(&w).unwrap();
//! let y = exec.matmul(x, wr).unwrap();
//! assert_eq!(exec.tensor(y).unwrap().as_slice().unwrap(), &[1.0, 2.0]);
//! ```

pub mod cost;
pub mod device;
pub mod exec;
pub mod graph;
pub mod jit;
pub mod kernels;
pub mod param;
pub mod pool;
pub mod rng;
pub mod simd;
pub mod tensor;
pub mod topk;

pub use cost::{Cost, CostSpec};
pub use device::{Device, DeviceKind, DeviceProfile};
pub use exec::{Exec, ExecMode, ExecOptions, SessionInput, TRef};
pub use graph::{Graph, NodeId, OpKind, OpTimes};
pub use jit::{CompiledGraph, JitError, JitOptions};
pub use param::{Param, ParamId};
pub use tensor::{Storage, Tensor, TensorError};

/// Bit-cast an item identifier into an `f32` payload.
///
/// Item ids travel through the tensor pipeline (inputs, top-k outputs)
/// without ever being used arithmetically, so we store the raw `u32` bits
/// inside an `f32` lane. This is exact for the full `u32` range — unlike a
/// numeric cast, which loses precision above 2^24 and would corrupt ids in
/// the paper's 20-million-item *Platform* scenario.
#[inline]
pub fn id_to_f32(id: u32) -> f32 {
    f32::from_bits(id)
}

/// Recover an item identifier from its bit-cast `f32` payload.
#[inline]
pub fn f32_to_id(x: f32) -> u32 {
    x.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_bitcast_roundtrips_large_ids() {
        for id in [0u32, 1, 16_777_217, 20_000_000, u32::MAX] {
            assert_eq!(f32_to_id(id_to_f32(id)), id);
        }
    }

    #[test]
    fn id_bitcast_is_exact_beyond_f32_integer_range() {
        // 2^24 + 1 is the first integer a numeric f32 cast cannot represent.
        let id = (1u32 << 24) + 1;
        assert_eq!(f32_to_id(id_to_f32(id)), id);
        assert_ne!((id as f32) as u32, id);
    }
}
