//! Analytic device models for the instance types of the ETUDE paper.
//!
//! The paper benchmarks on GCP `e2` CPU instances (5.5 vCPU Intel Xeon @
//! 2.20 GHz), `e2` + NVidia Tesla T4, and NVidia Tesla A100 machines. Real
//! accelerators are not available in this reproduction, so each device is
//! described by a roofline profile built from public hardware
//! specifications; the latency of an operation sequence is
//!
//! ```text
//! latency = launches * launch_overhead
//!         + max(flops / peak_flops, bytes / memory_bandwidth)
//!         + transfers * pcie_latency + transfer_bytes / pcie_bandwidth
//! ```
//!
//! Session-based recommendation inference is dominated by a full-catalog
//! maximum-inner-product search, which is memory-bound on every device, so
//! the `bytes / memory_bandwidth` term carries the catalog-size scaling the
//! paper observes (Figure 3) and the bandwidth ratios carry the CPU/T4/A100
//! orderings (Figure 4, Table I).

use crate::cost::Cost;
use std::time::Duration;

/// Coarse device class, used to decide whether host-op quirks apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Host CPU: computation happens where the data lives.
    Cpu,
    /// Discrete accelerator behind a PCIe interconnect.
    Gpu,
}

/// A roofline profile of a compute device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable name, e.g. `"gpu-t4"`.
    pub name: &'static str,
    /// Device class.
    pub kind: DeviceKind,
    /// Peak sustained f32 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Sustained memory bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// Fixed overhead per kernel launch.
    pub launch_overhead: Duration,
    /// Host<->device interconnect bandwidth in bytes/s (0 for CPUs).
    pub pcie_bandwidth: f64,
    /// Fixed latency per host<->device round-trip.
    pub pcie_latency: Duration,
    /// Largest request batch the device is configured to fuse.
    pub max_batch: usize,
    /// Device memory capacity in bytes (embedding tables must fit).
    pub memory_capacity: u64,
    /// Fraction of constant-weight memory traffic that is actually
    /// amortised across a request batch, in `[0, 1]`.
    ///
    /// A perfect batched GEMM would stream the embedding table once per
    /// batch (`1.0`). Measured inference servers fall far short: score
    /// matrices and top-k passes scale per request, caches thrash at
    /// multi-gigabyte tables, and production batch sizes stay small. The
    /// GPU values here are calibrated against the paper's Table I
    /// throughputs (a single T4 sustains only a few hundred requests per
    /// second at C = 10^7; two A100s are needed for 1,000 req/s).
    pub batch_reuse: f64,
    /// Fixed serving overhead per request that never batches: host-side
    /// request handling, input/output staging over PCIe, and the
    /// per-request kernels (score extraction, top-k result copies) that
    /// execute once per batched sample. CPUs serve in-process (~40 us);
    /// accelerators pay on the order of a millisecond — the second
    /// calibration constant behind the paper's measured per-GPU
    /// throughput ceilings.
    pub serving_overhead: Duration,
}

impl DeviceProfile {
    /// GCP e2 general-purpose instance: 5.5 vCPU Intel Xeon @ 2.20 GHz.
    ///
    /// Effective single-request GEMV throughput on such a machine is
    /// memory-bandwidth-bound. The profile uses *effective* constants
    /// (~2.6 GB/s streamed bandwidth, ~8 GFLOP/s) rather than spec-sheet
    /// peaks: eager PyTorch inference on a shared-core e2 VM reaches a
    /// small fraction of peak due to single-threaded GEMV, strided access
    /// and framework overhead. These constants reproduce the paper's
    /// ">50 ms per prediction at one million items" CPU observation.
    pub fn cpu_e2() -> DeviceProfile {
        DeviceProfile {
            name: "cpu-e2",
            kind: DeviceKind::Cpu,
            peak_flops: 8.0e9,
            mem_bandwidth: 2.6e9,
            launch_overhead: Duration::from_nanos(150),
            pcie_bandwidth: 0.0,
            pcie_latency: Duration::ZERO,
            max_batch: 1,
            memory_capacity: 32 * (1 << 30),
            batch_reuse: 1.0,
            serving_overhead: Duration::from_micros(40),
        }
    }

    /// NVidia Tesla T4: 8.1 TFLOP/s fp32, 300 GB/s GDDR6, PCIe 3.0 x16.
    pub fn gpu_t4() -> DeviceProfile {
        DeviceProfile {
            name: "gpu-t4",
            kind: DeviceKind::Gpu,
            peak_flops: 8.1e12,
            mem_bandwidth: 3.0e11,
            launch_overhead: Duration::from_micros(8),
            pcie_bandwidth: 1.2e10,
            pcie_latency: Duration::from_micros(12),
            max_batch: 1024,
            memory_capacity: 16 * (1 << 30),
            batch_reuse: 0.7,
            serving_overhead: Duration::from_micros(1_200),
        }
    }

    /// NVidia Tesla A100 40GB: 19.5 TFLOP/s fp32, 1555 GB/s HBM2, PCIe 4.0.
    pub fn gpu_a100() -> DeviceProfile {
        DeviceProfile {
            name: "gpu-a100",
            kind: DeviceKind::Gpu,
            peak_flops: 1.95e13,
            mem_bandwidth: 1.555e12,
            launch_overhead: Duration::from_micros(8),
            pcie_bandwidth: 2.4e10,
            pcie_latency: Duration::from_micros(10),
            max_batch: 1024,
            memory_capacity: 40 * (1 << 30),
            batch_reuse: 0.7,
            serving_overhead: Duration::from_micros(1_200),
        }
    }

    /// Latency of executing `cost` on this device, per the roofline model.
    pub fn latency(&self, cost: &Cost) -> Duration {
        let compute = cost.flops / self.peak_flops;
        let memory = cost.bytes / self.mem_bandwidth;
        let mut secs = compute.max(memory);
        secs += cost.launches as f64 * self.launch_overhead.as_secs_f64();
        if self.kind == DeviceKind::Gpu {
            secs += cost.transfers as f64 * self.pcie_latency.as_secs_f64();
            if self.pcie_bandwidth > 0.0 {
                secs += cost.transfer_bytes / self.pcie_bandwidth;
            }
        }
        Duration::from_secs_f64(secs)
    }

    /// Whether an embedding table of `bytes` fits into device memory.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.memory_capacity
    }
}

/// A handle to a device profile used during execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    profile: DeviceProfile,
}

impl Device {
    /// Wraps a profile.
    pub fn new(profile: DeviceProfile) -> Device {
        Device { profile }
    }

    /// The default CPU device (GCP e2).
    pub fn cpu() -> Device {
        Device::new(DeviceProfile::cpu_e2())
    }

    /// A Tesla T4 device.
    pub fn t4() -> Device {
        Device::new(DeviceProfile::gpu_t4())
    }

    /// A Tesla A100 device.
    pub fn a100() -> Device {
        Device::new(DeviceProfile::gpu_a100())
    }

    /// The underlying profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Device class.
    pub fn kind(&self) -> DeviceKind {
        self.profile.kind
    }

    /// Device name.
    pub fn name(&self) -> &'static str {
        self.profile.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A maximum-inner-product search over catalog C at dimension d reads
    /// the full item-embedding table: 4*C*d bytes, 2*C*d flops.
    fn mips_cost(c: usize, d: usize) -> Cost {
        Cost::launch(2.0 * c as f64 * d as f64, 4.0 * c as f64 * d as f64)
    }

    #[test]
    fn cpu_latency_exceeds_50ms_at_one_million_items() {
        // Paper, Section III-B: "the CPU already requires more than 50ms
        // per prediction for catalogs with one million items".
        let cpu = DeviceProfile::cpu_e2();
        let d = 32; // ceil(1e6^(1/4)) = 32
        let lat = cpu.latency(&mips_cost(1_000_000, d));
        assert!(lat > Duration::from_millis(45), "got {lat:?}");
        assert!(lat < Duration::from_millis(500), "got {lat:?}");
    }

    #[test]
    fn gpu_is_an_order_of_magnitude_faster_at_large_catalogs() {
        // Paper, Section III-B: "starting from catalogs with one million
        // items, the prediction latency of the GPU is more than an order
        // of magnitude lower".
        let cpu = DeviceProfile::cpu_e2();
        let t4 = DeviceProfile::gpu_t4();
        let cost = mips_cost(1_000_000, 32);
        let r = cpu.latency(&cost).as_secs_f64() / t4.latency(&cost).as_secs_f64();
        assert!(r > 10.0, "speedup only {r:.1}x");
    }

    #[test]
    fn gpu_advantage_shrinks_for_small_catalogs() {
        // Paper: for 10,000-item catalogs CPU latency is on par with or
        // lower than GPU latency in several cases. With launch overheads a
        // small MIPS plus a handful of encoder kernels does not justify
        // the dispatch cost.
        let cpu = DeviceProfile::cpu_e2();
        let t4 = DeviceProfile::gpu_t4();
        // ~40 kernel launches of a small model at C=1e4, d=10.
        let mut cost = mips_cost(10_000, 10);
        cost.launches = 40;
        let r = cpu.latency(&cost).as_secs_f64() / t4.latency(&cost).as_secs_f64();
        assert!(
            r < 10.0,
            "small-catalog speedup should collapse, got {r:.1}x"
        );
    }

    #[test]
    fn a100_outperforms_t4_via_bandwidth() {
        let t4 = DeviceProfile::gpu_t4();
        let a100 = DeviceProfile::gpu_a100();
        let cost = mips_cost(20_000_000, 67);
        assert!(a100.latency(&cost) < t4.latency(&cost));
        let ratio = t4.latency(&cost).as_secs_f64() / a100.latency(&cost).as_secs_f64();
        assert!(ratio > 3.0 && ratio < 7.0, "got {ratio:.1}");
    }

    #[test]
    fn latency_scales_linearly_with_catalog_size() {
        let cpu = DeviceProfile::cpu_e2();
        let l1 = cpu.latency(&mips_cost(100_000, 18)).as_secs_f64();
        let l2 = cpu.latency(&mips_cost(1_000_000, 18)).as_secs_f64();
        let ratio = l2 / l1;
        assert!((ratio - 10.0).abs() < 0.5, "got {ratio:.2}");
    }

    #[test]
    fn transfers_penalise_gpu_only() {
        let cost = Cost::transfer(1024.0);
        let cpu = DeviceProfile::cpu_e2();
        let t4 = DeviceProfile::gpu_t4();
        assert_eq!(cpu.latency(&cost), Duration::ZERO);
        assert!(t4.latency(&cost) >= t4.pcie_latency);
    }

    #[test]
    fn capacity_gates_large_tables() {
        let t4 = DeviceProfile::gpu_t4();
        // 20M items at d=67: ~5.4 GB — fits on T4 (16 GB).
        assert!(t4.fits(20_000_000 * 67 * 4));
        assert!(!t4.fits(17 * (1 << 30)));
    }
}
