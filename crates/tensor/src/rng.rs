//! Deterministic weight initialisation.
//!
//! The paper initialises model weights randomly — inference latency does
//! not depend on trained values — but a reproduction must be
//! *deterministic*: the same seed must yield bit-identical weights so
//! experiments and tests are repeatable across runs and machines.

use crate::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded weight initialiser.
#[derive(Debug)]
pub struct Initializer {
    rng: SmallRng,
}

impl Initializer {
    /// Creates an initialiser from a seed.
    pub fn new(seed: u64) -> Initializer {
        Initializer {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives a child initialiser; children with different tags produce
    /// independent streams, so adding a weight to one model does not
    /// perturb another model's initialisation.
    pub fn child(&self, tag: &str) -> Initializer {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tag.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Initializer::new(h)
    }

    /// Uniform tensor in `[-bound, bound]`.
    pub fn uniform(&mut self, shape: &[usize], bound: f32) -> Tensor {
        let n: usize = shape.iter().product();
        let data: Vec<f32> = (0..n).map(|_| self.rng.gen_range(-bound..=bound)).collect();
        Tensor::from_vec(data, shape).expect("shape/data consistent by construction")
    }

    /// Xavier/Glorot uniform initialisation for a `[fan_out, fan_in]`
    /// (or `[rows, cols]`) weight matrix.
    pub fn xavier(&mut self, shape: &[usize]) -> Tensor {
        let (fan_in, fan_out) = match shape {
            [rows, cols] => (*cols, *rows),
            [n] => (*n, *n),
            _ => {
                let n: usize = shape.iter().product();
                (n, n)
            }
        };
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        self.uniform(shape, bound)
    }

    /// Standard-normal-ish embedding initialisation scaled by `1/sqrt(d)`.
    pub fn embedding(&mut self, rows: usize, d: usize) -> Tensor {
        let scale = 1.0 / (d as f32).sqrt();
        self.uniform(&[rows, d], scale)
    }

    /// Zero-initialised bias vector.
    pub fn zeros(&mut self, shape: &[usize]) -> Tensor {
        Tensor::zeros(shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_weights() {
        let mut a = Initializer::new(42);
        let mut b = Initializer::new(42);
        assert_eq!(a.xavier(&[4, 4]), b.xavier(&[4, 4]));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Initializer::new(1);
        let mut b = Initializer::new(2);
        assert_ne!(a.xavier(&[4, 4]), b.xavier(&[4, 4]));
    }

    #[test]
    fn children_with_different_tags_are_independent() {
        let root = Initializer::new(7);
        let mut a = root.child("embedding");
        let mut b = root.child("gru");
        assert_ne!(a.uniform(&[8], 1.0), b.uniform(&[8], 1.0));
        // And deterministic:
        let mut a2 = Initializer::new(7).child("embedding");
        assert_eq!(Initializer::new(7).child("embedding").uniform(&[8], 1.0), {
            let _ = &mut a2;
            a2.uniform(&[8], 1.0)
        });
        let _ = &mut a;
    }

    #[test]
    fn xavier_respects_bound() {
        let mut init = Initializer::new(3);
        let t = init.xavier(&[10, 10]);
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(t
            .as_slice()
            .unwrap()
            .iter()
            .all(|&x| x.abs() <= bound + 1e-6));
    }

    #[test]
    fn embedding_scale_shrinks_with_dimension() {
        let mut init = Initializer::new(3);
        let t = init.embedding(100, 64);
        let bound = 1.0 / 8.0;
        assert!(t.as_slice().unwrap().iter().all(|&x| x.abs() <= bound));
        assert_eq!(t.shape(), &[100, 64]);
    }
}
