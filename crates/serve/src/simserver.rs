//! Queueing models of the two server architectures under virtual time.
//!
//! [`SimRustServer`] models the paper's Actix-based Rust server: a small
//! accept/handler overhead, a worker pool for CPU inference, and a
//! `batched-fn`-style batcher in front of GPU devices (buffer up to
//! `max_batch`, flush every 2 ms, exclusive device execution).
//!
//! [`SimTorchServe`] models TorchServe's architecture: a serialized
//! frontend dispatch stage, a small pool of Python worker processes with
//! per-request interpreter/IPC overhead, and the internal 100 ms timeout
//! that turns backlog into HTTP errors — the mechanism behind Figure 2's
//! error avalanche.

use crate::service::{ServiceProfile, TorchServeProfile};
use etude_simnet::{shared, Shared, Sim, SimTime};
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Duration;

/// Failure modes a simulated request can hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The server's internal timeout expired before processing finished.
    Timeout,
    /// The server shed load (queue overflow).
    Overloaded,
}

/// A successful simulated response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResponse {
    /// Pure model-inference duration (the paper's response-header metric).
    pub inference: Duration,
    /// Size of the batch this request was served in (1 without batching).
    pub batch_size: usize,
}

/// Response callback delivered through the simulation.
pub type RespondFn = Box<dyn FnOnce(&mut Sim, Result<SimResponse, ServeError>)>;

/// Anything that can accept simulated requests.
pub trait SimService {
    /// Submits a request; the service must eventually invoke `respond`.
    fn submit(self: Rc<Self>, sim: &mut Sim, respond: RespondFn);

    /// Requests accepted but not yet answered — the signal autoscalers
    /// watch. Services without a queue report zero.
    fn queue_depth(&self) -> usize {
        0
    }
}

// ---------------------------------------------------------------------
// Rust server
// ---------------------------------------------------------------------

/// Configuration of the simulated Rust inference server.
#[derive(Debug, Clone)]
pub struct RustServerConfig {
    /// Concurrent inference workers (CPU threads, or streams feeding one
    /// GPU batcher).
    pub workers: usize,
    /// Enable the request batcher (GPU deployments).
    pub batching: bool,
    /// Largest batch the batcher fuses (paper: 1,024).
    pub max_batch: usize,
    /// Batcher flush interval (paper: 2 ms).
    pub flush_every: Duration,
}

impl RustServerConfig {
    /// CPU deployment: a worker pool, no batching.
    pub fn cpu(workers: usize) -> RustServerConfig {
        RustServerConfig {
            workers: workers.max(1),
            batching: false,
            max_batch: 1,
            flush_every: Duration::ZERO,
        }
    }

    /// GPU deployment: request batching as in the paper's setup.
    pub fn gpu() -> RustServerConfig {
        RustServerConfig {
            workers: 1, // one exclusive device behind the batcher
            batching: true,
            max_batch: 1024,
            flush_every: Duration::from_millis(2),
        }
    }
}

struct PendingRequest {
    respond: RespondFn,
}

struct RustServerState {
    profile: ServiceProfile,
    config: RustServerConfig,
    queue: VecDeque<PendingRequest>,
    busy_workers: usize,
    flush_scheduled: bool,
    served: u64,
    batches: u64,
}

/// The simulated Rust (Actix-style) inference server.
pub struct SimRustServer {
    state: Shared<RustServerState>,
}

impl SimRustServer {
    /// Creates a server for a service profile.
    pub fn new(profile: ServiceProfile, config: RustServerConfig) -> Rc<SimRustServer> {
        Rc::new(SimRustServer {
            state: shared(RustServerState {
                profile,
                config,
                queue: VecDeque::new(),
                busy_workers: 0,
                flush_scheduled: false,
                served: 0,
                batches: 0,
            }),
        })
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.state.borrow().served
    }

    /// Batches executed so far (equals `served` without batching).
    pub fn batches(&self) -> u64 {
        self.state.borrow().batches
    }

    /// Mean batch size over the run.
    pub fn mean_batch_size(&self) -> f64 {
        let s = self.state.borrow();
        if s.batches == 0 {
            0.0
        } else {
            s.served as f64 / s.batches as f64
        }
    }

    fn try_dispatch(self: &Rc<Self>, sim: &mut Sim) {
        let (should_flush, delay) = {
            let s = self.state.borrow();
            if s.queue.is_empty() || s.busy_workers >= s.config.workers {
                return;
            }
            if !s.config.batching {
                (true, Duration::ZERO)
            } else if s.queue.len() >= s.config.max_batch {
                // A full batch goes immediately.
                (true, Duration::ZERO)
            } else if !s.flush_scheduled {
                // Otherwise wait for the flush interval to gather load.
                (false, s.config.flush_every)
            } else {
                return;
            }
        };
        if should_flush {
            self.execute_batch(sim);
        } else {
            self.state.borrow_mut().flush_scheduled = true;
            let server = Rc::clone(self);
            sim.schedule_in(delay, move |s| {
                server.state.borrow_mut().flush_scheduled = false;
                server.execute_batch(s);
            });
        }
    }

    fn execute_batch(self: &Rc<Self>, sim: &mut Sim) {
        let (batch, service_time, inference) = {
            let mut s = self.state.borrow_mut();
            if s.queue.is_empty() || s.busy_workers >= s.config.workers {
                return;
            }
            let take = if s.config.batching {
                s.config.max_batch.min(s.queue.len())
            } else {
                1
            };
            let batch: Vec<PendingRequest> = s.queue.drain(..take).collect();
            let inference = s.profile.batch_latency(batch.len());
            let service = inference + s.profile.handler_overhead * batch.len() as u32;
            s.busy_workers += 1;
            s.served += batch.len() as u64;
            s.batches += 1;
            (batch, service, inference)
        };
        let server = Rc::clone(self);
        let batch_size = batch.len();
        sim.schedule_in(service_time, move |s| {
            for req in batch {
                (req.respond)(
                    s,
                    Ok(SimResponse {
                        inference,
                        batch_size,
                    }),
                );
            }
            server.state.borrow_mut().busy_workers -= 1;
            server.try_dispatch(s);
        });
    }
}

impl SimService for SimRustServer {
    fn submit(self: Rc<Self>, sim: &mut Sim, respond: RespondFn) {
        self.state
            .borrow_mut()
            .queue
            .push_back(PendingRequest { respond });
        self.try_dispatch(sim);
    }

    fn queue_depth(&self) -> usize {
        let s = self.state.borrow();
        s.queue.len() + s.busy_workers
    }
}

// ---------------------------------------------------------------------
// TorchServe baseline
// ---------------------------------------------------------------------

struct TorchRequest {
    enqueued_at: SimTime,
    respond: RespondFn,
}

struct TorchServeState {
    profile: TorchServeProfile,
    service: ServiceProfile,
    frontend_busy: bool,
    frontend_queue: VecDeque<TorchRequest>,
    worker_queue: VecDeque<TorchRequest>,
    busy_workers: usize,
    served: u64,
    timeouts: u64,
}

/// The simulated TorchServe baseline.
pub struct SimTorchServe {
    state: Shared<TorchServeState>,
}

impl SimTorchServe {
    /// Creates a TorchServe instance serving `service` (use a static
    /// profile for the paper's "empty model" infrastructure test).
    pub fn new(profile: TorchServeProfile, service: ServiceProfile) -> Rc<SimTorchServe> {
        Rc::new(SimTorchServe {
            state: shared(TorchServeState {
                profile,
                service,
                frontend_busy: false,
                frontend_queue: VecDeque::new(),
                worker_queue: VecDeque::new(),
                busy_workers: 0,
                served: 0,
                timeouts: 0,
            }),
        })
    }

    /// Successfully served requests.
    pub fn served(&self) -> u64 {
        self.state.borrow().served
    }

    /// Requests failed by the internal timeout.
    pub fn timeouts(&self) -> u64 {
        self.state.borrow().timeouts
    }

    /// The frontend dispatches one request at a time (serialized).
    fn pump_frontend(self: &Rc<Self>, sim: &mut Sim) {
        let overhead = {
            let mut s = self.state.borrow_mut();
            if s.frontend_busy || s.frontend_queue.is_empty() {
                return;
            }
            s.frontend_busy = true;
            s.profile.frontend_overhead
        };
        let server = Rc::clone(self);
        sim.schedule_in(overhead, move |s| {
            {
                let mut st = server.state.borrow_mut();
                st.frontend_busy = false;
                if let Some(req) = st.frontend_queue.pop_front() {
                    st.worker_queue.push_back(req);
                }
            }
            server.pump_workers(s);
            server.pump_frontend(s);
        });
    }

    fn pump_workers(self: &Rc<Self>, sim: &mut Sim) {
        loop {
            let now = sim.now();
            let next = {
                let mut s = self.state.borrow_mut();
                if s.busy_workers >= s.profile.workers {
                    return;
                }
                let Some(req) = s.worker_queue.pop_front() else {
                    return;
                };
                // The internal timeout fires when a request is picked up
                // after its deadline — TorchServe answers it with an HTTP
                // error without running the handler.
                if now.since(req.enqueued_at) > s.profile.timeout {
                    s.timeouts += 1;
                    Some((req, None))
                } else {
                    let service = s.profile.worker_overhead + s.service.batch_latency(1);
                    s.busy_workers += 1;
                    Some((req, Some(service)))
                }
            };
            match next {
                Some((req, None)) => {
                    // Timed out: fail immediately, keep draining.
                    (req.respond)(sim, Err(ServeError::Timeout));
                }
                Some((req, Some(service))) => {
                    let server = Rc::clone(self);
                    let inference = {
                        let s = self.state.borrow();
                        s.service.batch_latency(1)
                    };
                    sim.schedule_in(service, move |s| {
                        {
                            let mut st = server.state.borrow_mut();
                            st.busy_workers -= 1;
                            st.served += 1;
                        }
                        (req.respond)(
                            s,
                            Ok(SimResponse {
                                inference,
                                batch_size: 1,
                            }),
                        );
                        server.pump_workers(s);
                    });
                }
                None => return,
            }
        }
    }
}

impl SimService for SimTorchServe {
    fn submit(self: Rc<Self>, sim: &mut Sim, respond: RespondFn) {
        {
            let mut s = self.state.borrow_mut();
            let now = sim.now();
            s.frontend_queue.push_back(TorchRequest {
                enqueued_at: now,
                respond,
            });
        }
        self.pump_frontend(sim);
    }

    fn queue_depth(&self) -> usize {
        let s = self.state.borrow();
        s.frontend_queue.len() + s.worker_queue.len() + s.busy_workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etude_tensor::Device;

    fn drive<S: SimService + 'static>(
        server: Rc<S>,
        rps: u64,
        seconds: u64,
    ) -> (Vec<Duration>, u64) {
        let mut sim = Sim::new();
        let latencies = shared(Vec::<Duration>::new());
        let errors = shared(0u64);
        let gap = Duration::from_nanos(1_000_000_000 / rps.max(1));
        let total = rps * seconds;
        for i in 0..total {
            let server = Rc::clone(&server);
            let latencies = Rc::clone(&latencies);
            let errors = Rc::clone(&errors);
            sim.schedule_at(SimTime::ZERO.after(gap * i as u32), move |s| {
                let sent = s.now();
                let latencies = Rc::clone(&latencies);
                let errors = Rc::clone(&errors);
                server.submit(
                    s,
                    Box::new(move |s2, result| match result {
                        Ok(_) => latencies.borrow_mut().push(s2.now().since(sent)),
                        Err(_) => *errors.borrow_mut() += 1,
                    }),
                );
            });
        }
        sim.run_to_completion();
        let l = latencies.borrow().clone();
        let e = *errors.borrow();
        (l, e)
    }

    #[test]
    fn rust_server_handles_1000_rps_static_with_low_latency() {
        // Figure 2, Rust side: ~1 ms p90, zero errors at 1,000 req/s.
        let profile = ServiceProfile::static_response(&Device::cpu());
        let server = SimRustServer::new(profile, RustServerConfig::cpu(4));
        let (latencies, errors) = drive(server, 1_000, 5);
        assert_eq!(errors, 0);
        assert_eq!(latencies.len(), 5_000);
        let p90 = etude_metrics::percentile::percentile_duration(&latencies, 0.9).unwrap();
        assert!(p90 < Duration::from_millis(2), "p90 {p90:?}");
    }

    #[test]
    fn torchserve_collapses_at_1000_rps_static() {
        // Figure 2, TorchServe side: HTTP errors and 100-200 ms p90 on
        // *empty* responses.
        let service = ServiceProfile::static_response(&Device::cpu());
        let server = SimTorchServe::new(TorchServeProfile::default(), service);
        let (latencies, errors) = drive(Rc::clone(&server), 1_000, 5);
        assert!(errors > 500, "only {errors} errors");
        if !latencies.is_empty() {
            let p90 = etude_metrics::percentile::percentile_duration(&latencies, 0.9).unwrap();
            assert!(
                p90 > Duration::from_millis(50),
                "successful requests should be slow under backlog: {p90:?}"
            );
        }
    }

    #[test]
    fn torchserve_is_fine_at_low_rates() {
        let service = ServiceProfile::static_response(&Device::cpu());
        let server = SimTorchServe::new(TorchServeProfile::default(), service);
        let (latencies, errors) = drive(Rc::clone(&server), 100, 5);
        assert_eq!(errors, 0);
        let p90 = etude_metrics::percentile::percentile_duration(&latencies, 0.9).unwrap();
        assert!(p90 < Duration::from_millis(10), "p90 {p90:?}");
    }

    #[test]
    fn batching_server_fuses_requests() {
        use etude_models::{ModelConfig, ModelKind};
        let profile = ServiceProfile::build(
            ModelKind::SasRec,
            &ModelConfig::new(100_000).without_weights(),
            &Device::t4(),
            crate::service::ExecutionKind::Jit,
        )
        .unwrap();
        let server = SimRustServer::new(profile, RustServerConfig::gpu());
        let (latencies, errors) = drive(Rc::clone(&server), 2_000, 3);
        assert_eq!(errors, 0);
        assert!(!latencies.is_empty());
        assert!(
            server.mean_batch_size() > 1.5,
            "batching never engaged: {}",
            server.mean_batch_size()
        );
    }

    #[test]
    fn unbatched_server_serves_fifo_one_by_one() {
        let profile = ServiceProfile::static_response(&Device::cpu());
        let server = SimRustServer::new(profile, RustServerConfig::cpu(1));
        let (latencies, _) = drive(Rc::clone(&server), 100, 2);
        assert_eq!(server.batches(), server.served());
        assert_eq!(latencies.len() as u64, server.served());
    }
}
