//! # etude-serve
//!
//! Inference serving for ETUDE. The paper's central systems finding is
//! that the *serving layer* dominates feasibility: the open-source
//! TorchServe server fails at 1,000 req/s even for empty responses, while
//! a light-weight Rust server (Actix + tch-rs + request batching) serves
//! the same load at ~1 ms p90 (Figure 2).
//!
//! This crate contains both sides of that comparison:
//!
//! * [`http`] — a from-scratch HTTP/1.1 parser/writer,
//! * [`rustserver`] — a real, thread-pooled HTTP inference server on
//!   `std::net` (the reproduction of the paper's Actix server), usable
//!   over real sockets in integration tests and examples,
//! * [`client`] — a blocking keep-alive HTTP client for the load
//!   generator's real-time mode,
//! * [`reactor`] — the non-blocking epoll-style event-loop rewrite of
//!   the accept/read/write path: a portable poller trait, single-digit
//!   event-loop threads, per-connection state machines, and a dispatch
//!   pool — tens of thousands of open keep-alive connections without a
//!   thread per connection,
//! * [`batching`] — the `batched-fn`-style request batcher (buffer up to
//!   1,024 requests, flush every 2 ms) used for GPU inference,
//! * [`contbatch`] — continuous batching: requests admit into the
//!   in-flight batch as inference threads free up, with deadline-aware
//!   admission (blown budgets shed before compute),
//! * [`fleet`] — the fleet aggregation endpoint: scrape every pod's
//!   `/stats`, merge bit-identically, serve `/fleet` (JSON) and
//!   `/fleet/metrics` (Prometheus),
//! * [`overload`] — criticality-aware overload control: an AIMD
//!   admission limiter in front of a brownout ladder (exact → int8 →
//!   reduced-k → popularity fallback), so flash crowds degrade quality
//!   before dropping traffic,
//! * [`router`] — the scatter/gather tier for partitioned catalogs:
//!   shard-backend routes over a catalog slice, and the router that
//!   fans out, merges partial top-k bit-identically, and degrades
//!   gracefully on shard-group loss,
//! * [`service`] — [`service::ServiceProfile`], the bridge between model
//!   costs and service times,
//! * [`simserver`] — the same two server architectures as queueing models
//!   under the [`etude_simnet`] virtual clock: [`simserver::SimRustServer`]
//!   and [`simserver::SimTorchServe`] (frontend dispatch, Python worker
//!   overhead, GIL-style serialisation, 100 ms internal timeout).

pub mod batching;
pub mod client;
pub mod contbatch;
pub mod fleet;
pub mod http;
pub mod overload;
pub mod reactor;
pub mod router;
pub mod rustserver;
pub mod service;
pub mod simserver;

pub use client::{ClientError, HttpClient, ResilientClient, ResilientResponse};
pub use contbatch::{
    model_routes_continuous, ContinuousBatcher, ContinuousConfig, DEADLINE_HEADER,
};
pub use fleet::{fleet_routes, scrape_fleet, FleetScraper};
pub use overload::{
    overload_routes, overload_routes_with_state, BrownoutLevel, LadderConfig, OverloadConfig,
    OverloadState, BROWNOUT_HEADER,
};
pub use reactor::{new_poller, raise_nofile_limit, Interest, Poller, ReactorConfig};
pub use router::{
    router_routes, scrape_shard_fleet, shard_backend_routes, RouterConfig, ShardGroupSpec,
    ShardTopology,
};
pub use rustserver::{inject_faults, DegradationPolicy, DEGRADED_HEADER, RESET_MARKER};
pub use service::{ServiceProfile, TorchServeProfile};
pub use simserver::{RespondFn, ServeError, SimService};
