//! The real Rust inference server — the reproduction of the paper's
//! Actix-based serving engine.
//!
//! Architecture: an accept thread feeds connections to a fixed pool of
//! handler threads over a crossbeam channel; each handler thread owns its
//! connections (keep-alive, pipelining-safe) and serves three routes:
//!
//! * `GET /ping` — readiness probe (Kubernetes-style),
//! * `GET /static` — the empty-response infrastructure test (Figure 2),
//! * `POST /predictions` — session in, top-k recommendations out, with
//!   the pure inference duration reported via the
//!   `x-inference-duration-micros` response header (the paper's server
//!   "communicates metrics like the inference duration via HTTP response
//!   headers").

use crate::http::{self, Method, Request, Response};
use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, Sender};
use etude_models::{traits, SbrModel};
use etude_tensor::{CompiledGraph, Device, JitOptions};
use parking_lot::Mutex;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A request handler: route table entry.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Handler threads (the paper's server exposes the worker-thread
    /// count as a tunable).
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { workers: 4 }
    }
}

/// A running server; dropping the handle shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
    requests_served: Arc<AtomicU64>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Stops the server and joins its threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.shutdown.load(Ordering::SeqCst) {
            self.stop();
        }
    }
}

/// Starts a server with the given route handler on an OS-assigned port.
pub fn start(config: ServerConfig, handler: Handler) -> std::io::Result<ServerHandle> {
    // Build the process-wide intra-op kernel pool before the first
    // request arrives: handler threads share this one pool (instead of
    // each racing to create it under load), so the first prediction
    // does not pay the thread-spawn cost.
    etude_tensor::pool::global();
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let requests_served = Arc::new(AtomicU64::new(0));
    let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = unbounded();

    let mut worker_threads = Vec::new();
    for i in 0..config.workers.max(1) {
        let rx = rx.clone();
        let handler = Arc::clone(&handler);
        let shutdown = Arc::clone(&shutdown);
        let served = Arc::clone(&requests_served);
        worker_threads.push(
            std::thread::Builder::new()
                .name(format!("etude-worker-{i}"))
                .spawn(move || worker_loop(rx, handler, shutdown, served))
                .expect("spawn worker"),
        );
    }

    let accept_shutdown = Arc::clone(&shutdown);
    let accept_thread = std::thread::Builder::new()
        .name("etude-accept".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        if tx.send(s).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
        })
        .expect("spawn accept loop");

    Ok(ServerHandle {
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
        worker_threads,
        requests_served,
    })
}

struct Conn {
    stream: TcpStream,
    buf: BytesMut,
}

enum PollOutcome {
    /// Connection alive; flag reports whether any request was served.
    Alive(bool),
    /// Connection finished (EOF or error).
    Closed,
}

impl Conn {
    fn new(stream: TcpStream) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        Ok(Conn {
            stream,
            buf: BytesMut::with_capacity(4096),
        })
    }

    /// Reads available bytes and serves every complete request.
    fn poll(&mut self, handler: &Handler, served: &AtomicU64) -> PollOutcome {
        let mut chunk = [0u8; 4096];
        let mut progressed = false;
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return PollOutcome::Closed,
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    // Cap per-connection buffering: a peer streaming bytes
                    // that never complete a request must not grow memory
                    // without bound.
                    if self.buf.len() > 2 * http::MAX_BODY_BYTES {
                        return PollOutcome::Closed;
                    }
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return PollOutcome::Closed,
            }
        }
        loop {
            match http::parse_request(&mut self.buf) {
                Ok(req) => {
                    let resp = handler(&req);
                    served.fetch_add(1, Ordering::Relaxed);
                    if write_all_blocking(&mut self.stream, &resp.encode()).is_err() {
                        return PollOutcome::Closed;
                    }
                    progressed = true;
                }
                Err(http::HttpError::Incomplete) => break,
                Err(http::HttpError::Malformed(_)) => {
                    let _ = write_all_blocking(
                        &mut self.stream,
                        &Response::error(500, "bad request").encode(),
                    );
                    return PollOutcome::Closed;
                }
            }
        }
        PollOutcome::Alive(progressed)
    }
}

/// Writes a full buffer on a non-blocking socket, retrying briefly on
/// `WouldBlock`. The retry budget is bounded: a client that stops reading
/// its socket must cost at most ~one second, not wedge the reactor worker
/// (and every other connection it owns) forever.
fn write_all_blocking(stream: &mut TcpStream, mut data: &[u8]) -> std::io::Result<()> {
    let deadline = Instant::now() + Duration::from_secs(1);
    while !data.is_empty() {
        match stream.write(data) {
            Ok(0) => return Err(std::io::Error::new(ErrorKind::WriteZero, "write zero")),
            Ok(n) => data = &data[n..],
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        ErrorKind::TimedOut,
                        "peer not draining its socket",
                    ));
                }
                std::thread::sleep(Duration::from_micros(50));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// A reactor-style worker: owns many connections at once (as Actix's
/// per-core event loops do), polling each in turn.
fn worker_loop(
    rx: Receiver<TcpStream>,
    handler: Handler,
    shutdown: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut disconnected = false;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Accept newly assigned connections without blocking.
        loop {
            match rx.try_recv() {
                Ok(stream) => {
                    if let Ok(conn) = Conn::new(stream) {
                        conns.push(conn);
                    }
                }
                Err(crossbeam::channel::TryRecvError::Empty) => break,
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        if disconnected && conns.is_empty() {
            return;
        }
        let mut progressed = false;
        conns.retain_mut(|conn| match conn.poll(&handler, &served) {
            PollOutcome::Alive(p) => {
                progressed |= p;
                true
            }
            PollOutcome::Closed => false,
        });
        if !progressed {
            // Idle: block briefly for a new connection instead of spinning.
            match rx.recv_timeout(Duration::from_micros(500)) {
                Ok(stream) => {
                    if let Ok(conn) = Conn::new(stream) {
                        conns.push(conn);
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    disconnected = true;
                }
            }
        }
    }
}

/// Builds the model-serving route table of the paper's inference server.
///
/// When `jit` is set the model is traced and compiled at deployment time
/// (models with dynamic control flow fall back to eager execution, as
/// `torch.jit` would).
pub fn model_routes(model: Arc<dyn SbrModel>, device: Device, jit: bool) -> Handler {
    let compiled: Option<Arc<CompiledGraph>> = if jit {
        traits::compile(model.as_ref(), JitOptions::default())
            .ok()
            .map(Arc::new)
    } else {
        None
    };
    let catalog_size = model.config().catalog_size;
    // Compiled-graph execution is not thread-safe per graph value cache?
    // It is: Graph::run is &self and allocates its own value buffers, so
    // only the recommendation assembly needs care. The mutex below guards
    // nothing but keeps request ordering deterministic in tests with a
    // single worker; inference itself runs outside it.
    let stats = Arc::new(Mutex::new(()));
    Arc::new(move |req: &Request| -> Response {
        match (req.method, req.path.as_str()) {
            (Method::Get, "/ping") => Response::ok("pong"),
            (Method::Get, "/static") => Response::ok("ok"),
            (Method::Post, "/predictions") => {
                let items = match http::decode_session(&req.body) {
                    Ok(items) => items,
                    Err(_) => return Response::error(400, "malformed session"),
                };
                // Reject out-of-catalog ids at the boundary: a clean 400
                // instead of an inference failure deep in the kernels.
                if let Some(&bad) = items.iter().find(|&&i| i as usize >= catalog_size) {
                    return Response::error(400, &format!("item id {bad} out of catalog"));
                }
                let start = Instant::now();
                let rec = match &compiled {
                    Some(graph) => traits::recommend_compiled(model.as_ref(), graph, &items),
                    None => traits::recommend_eager(model.as_ref(), &device, &items),
                };
                let inference = start.elapsed();
                let _guard = stats.lock();
                match rec {
                    Ok(rec) => {
                        let body = http::encode_recommendations(&rec.items, &rec.scores);
                        Response::ok(body).with_header(
                            "x-inference-duration-micros",
                            inference.as_micros().to_string(),
                        )
                    }
                    Err(_) => Response::error(500, "inference failed"),
                }
            }
            _ => Response::error(404, "no such route"),
        }
    })
}

/// Builds the model-serving routes with the `batched-fn`-style request
/// batcher in front of inference — the configuration the paper uses for
/// GPU deployments (buffer up to 1,024 requests, flush every 2 ms).
///
/// Handler threads submit sessions into the [`crate::batching::Batcher`]
/// and block on their individual results; a dedicated batcher thread
/// drains whole batches through the (JIT-compiled when possible) model.
/// On this CPU-only substrate batch items execute sequentially inside the
/// batcher thread — the batching *mechanics* (queueing, flush deadline,
/// per-request response channels) are exactly the deployed structure.
pub fn model_routes_batched(
    model: Arc<dyn SbrModel>,
    device: Device,
    jit: bool,
    config: crate::batching::BatchConfig,
) -> Handler {
    use crate::batching::Batcher;
    use etude_models::Recommendation;

    let compiled: Option<Arc<CompiledGraph>> = if jit {
        traits::compile(model.as_ref(), JitOptions::default())
            .ok()
            .map(Arc::new)
    } else {
        None
    };
    let catalog_size = model.config().catalog_size;
    let infer_model = Arc::clone(&model);
    let infer_device = device.clone();
    let batcher: Arc<Batcher<Vec<u32>, Result<Recommendation, String>>> =
        Arc::new(Batcher::spawn(config, move |sessions: Vec<Vec<u32>>| {
            sessions
                .into_iter()
                .map(|items| {
                    let rec = match &compiled {
                        Some(graph) => {
                            traits::recommend_compiled(infer_model.as_ref(), graph, &items)
                        }
                        None => {
                            traits::recommend_eager(infer_model.as_ref(), &infer_device, &items)
                        }
                    };
                    rec.map_err(|e| e.to_string())
                })
                .collect()
        }));

    Arc::new(move |req: &Request| -> Response {
        match (req.method, req.path.as_str()) {
            (Method::Get, "/ping") => Response::ok("pong"),
            (Method::Get, "/static") => Response::ok("ok"),
            (Method::Post, "/predictions") => {
                let items = match http::decode_session(&req.body) {
                    Ok(items) => items,
                    Err(_) => return Response::error(400, "malformed session"),
                };
                if let Some(&bad) = items.iter().find(|&&i| i as usize >= catalog_size) {
                    return Response::error(400, &format!("item id {bad} out of catalog"));
                }
                let start = Instant::now();
                match batcher.call(items) {
                    Some(Ok(rec)) => {
                        let body = http::encode_recommendations(&rec.items, &rec.scores);
                        Response::ok(body).with_header(
                            "x-inference-duration-micros",
                            start.elapsed().as_micros().to_string(),
                        )
                    }
                    Some(Err(_)) => Response::error(500, "inference failed"),
                    None => Response::error(503, "batcher unavailable"),
                }
            }
            _ => Response::error(404, "no such route"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use etude_models::{ModelConfig, ModelKind};

    fn static_handler() -> Handler {
        Arc::new(|req: &Request| match (req.method, req.path.as_str()) {
            (Method::Get, "/static") => Response::ok("ok"),
            (Method::Get, "/ping") => Response::ok("pong"),
            _ => Response::error(404, "nope"),
        })
    }

    #[test]
    fn serves_static_content_over_real_sockets() {
        let server = start(ServerConfig::default(), static_handler()).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let resp = client.request(&Request::get("/static")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(&resp.body[..], b"ok");
        server.shutdown();
    }

    #[test]
    fn keep_alive_reuses_the_connection() {
        let server = start(ServerConfig::default(), static_handler()).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        for _ in 0..50 {
            let resp = client.request(&Request::get("/ping")).unwrap();
            assert_eq!(resp.status, 200);
        }
        assert_eq!(server.requests_served(), 50);
        server.shutdown();
    }

    #[test]
    fn unknown_routes_return_404() {
        let server = start(ServerConfig::default(), static_handler()).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let resp = client.request(&Request::get("/missing")).unwrap();
        assert_eq!(resp.status, 404);
        server.shutdown();
    }

    #[test]
    fn model_route_returns_recommendations_and_metrics_header() {
        let cfg = ModelConfig::new(500).with_max_session_len(8).with_seed(5);
        let model: Arc<dyn SbrModel> = Arc::from(ModelKind::Core.build(&cfg));
        let handler = model_routes(model, Device::cpu(), true);
        let server = start(ServerConfig::default(), handler).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let resp = client
            .request(&Request::post("/predictions", "1,2,3"))
            .unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.headers.contains_key("x-inference-duration-micros"));
        let body = std::str::from_utf8(&resp.body).unwrap();
        let items: Vec<&str> = body.split(',').collect();
        assert_eq!(items.len(), cfg.top_k);
        assert!(items[0].contains(':'));
        server.shutdown();
    }

    #[test]
    fn malformed_sessions_get_400() {
        let cfg = ModelConfig::new(100).with_max_session_len(4);
        let model: Arc<dyn SbrModel> = Arc::from(ModelKind::Stamp.build(&cfg));
        let handler = model_routes(model, Device::cpu(), false);
        let server = start(ServerConfig::default(), handler).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let resp = client
            .request(&Request::post("/predictions", "1,oops,3"))
            .unwrap();
        assert_eq!(resp.status, 400);
        // Out-of-catalog ids are rejected at the boundary, too — they
        // must never reach (and crash) the embedding kernel.
        let resp = client
            .request(&Request::post("/predictions", "99999999"))
            .unwrap();
        assert_eq!(resp.status, 400);
        assert!(std::str::from_utf8(&resp.body)
            .unwrap()
            .contains("out of catalog"));
        // And the connection/worker survives to serve the next request.
        let resp = client
            .request(&Request::post("/predictions", "1,2"))
            .unwrap();
        assert_eq!(resp.status, 200);
        server.shutdown();
    }

    #[test]
    fn batched_model_route_serves_identical_results() {
        let cfg = ModelConfig::new(400).with_max_session_len(8).with_seed(6);
        let model: Arc<dyn SbrModel> = Arc::from(ModelKind::Narm.build(&cfg));
        let plain = model_routes(Arc::clone(&model), Device::cpu(), true);
        let batched = model_routes_batched(
            model,
            Device::cpu(),
            true,
            crate::batching::BatchConfig {
                max_batch: 8,
                flush_every: Duration::from_millis(2),
            },
        );
        let plain_server = start(ServerConfig::default(), plain).unwrap();
        let batched_server = start(ServerConfig::default(), batched).unwrap();
        let mut c1 = HttpClient::connect(plain_server.addr()).unwrap();
        let mut c2 = HttpClient::connect(batched_server.addr()).unwrap();
        for session in ["1,2,3", "7", "9,9,9,9", "300,2"] {
            let a = c1.request(&Request::post("/predictions", session)).unwrap();
            let b = c2.request(&Request::post("/predictions", session)).unwrap();
            assert_eq!(a.status, 200);
            assert_eq!(b.status, 200);
            assert_eq!(a.body, b.body, "session {session}");
        }
        plain_server.shutdown();
        batched_server.shutdown();
    }

    #[test]
    fn batched_route_survives_concurrent_load() {
        let cfg = ModelConfig::new(300).with_max_session_len(8).with_seed(8);
        let model: Arc<dyn SbrModel> = Arc::from(ModelKind::Stamp.build(&cfg));
        let handler = model_routes_batched(
            model,
            Device::cpu(),
            true,
            crate::batching::BatchConfig::default(),
        );
        let server = Arc::new(start(ServerConfig { workers: 4 }, handler).unwrap());
        let addr = server.addr();
        let mut threads = Vec::new();
        for t in 0..6 {
            threads.push(std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                for i in 0..25u32 {
                    let body = format!("{},{}", t * 10 + 1, i % 300);
                    let resp = client
                        .request(&Request::post("/predictions", body))
                        .unwrap();
                    assert_eq!(resp.status, 200);
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(server.requests_served(), 150);
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = Arc::new(start(ServerConfig { workers: 4 }, static_handler()).unwrap());
        let addr = server.addr();
        let mut handles = Vec::new();
        for _ in 0..8 {
            handles.push(std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                for _ in 0..20 {
                    let resp = client.request(&Request::get("/static")).unwrap();
                    assert_eq!(resp.status, 200);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.requests_served(), 160);
    }
}
