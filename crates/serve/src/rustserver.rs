//! The real Rust inference server — the reproduction of the paper's
//! Actix-based serving engine.
//!
//! Architecture: an accept thread feeds connections to a fixed pool of
//! handler threads over a crossbeam channel; each handler thread owns its
//! connections (keep-alive, pipelining-safe) and serves five routes:
//!
//! * `GET /ping` — readiness probe (Kubernetes-style),
//! * `GET /static` — the empty-response infrastructure test (Figure 2),
//! * `POST /predictions` — session in, top-k recommendations out, with
//!   the pure inference duration reported via the
//!   `x-inference-duration-micros` response header (the paper's server
//!   "communicates metrics like the inference duration via HTTP response
//!   headers"),
//! * `GET /metrics` — Prometheus text exposition of per-stage latency
//!   summaries (parse → queue → inference → top-k → serialize),
//! * `GET /stats` — the same aggregation as JSON, scraped by the load
//!   generator at end of run.
//!
//! Every prediction is traced into an [`etude_obs::Recorder`] keyed by
//! the client's `X-Request-Id` (echoed back on responses; hashed to a
//! compact correlation id for the span records).

use crate::http::{self, Method, Request, Response};
use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, Sender};
use etude_faults::{Deadline, FaultInjector};
use etude_models::{traits, SbrModel};
use etude_obs::{request_id_hash, Recorder, Stage, TraceCtx, TRACE_HEADER};
use etude_tensor::{CompiledGraph, Device, JitOptions};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Internal marker header: a handler that wants the connection reset
/// mid-response (chaos injection) tags its response with this; the
/// connection poll loop strips it, writes a partial response and closes.
/// Never sent on the wire.
pub const RESET_MARKER: &str = "x-etude-inject-reset";

/// Response header flagging a degraded (popularity-fallback) response.
pub const DEGRADED_HEADER: &str = "x-degraded";

/// How long a write may stall on a peer that stopped draining its socket
/// before the connection is abandoned.
const WRITE_STALL_BUDGET: Duration = Duration::from_secs(1);

/// How long an idle reactor worker blocks for a new connection before
/// re-polling the ones it owns.
const IDLE_ACCEPT_POLL: Duration = Duration::from_micros(500);

/// A request handler: route table entry.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Handler threads (the paper's server exposes the worker-thread
    /// count as a tunable).
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { workers: 4 }
    }
}

/// A running server; dropping the handle shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
    requests_served: Arc<AtomicU64>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Stops the server and joins its threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.shutdown.load(Ordering::SeqCst) {
            self.stop();
        }
    }
}

/// Assembles a [`ServerHandle`] around externally spawned threads — the
/// seam that lets the reactor server (`crate::reactor`) hand out the
/// same handle type as the blocking server, so every caller (tests,
/// fleet scrapers, benches) is flavor-agnostic. All threads must exit
/// once `shutdown` is set; `stop()` pokes `addr` once to unblock any
/// accept path and then joins them in order.
pub(crate) fn assemble_handle(
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    requests_served: Arc<AtomicU64>,
) -> ServerHandle {
    ServerHandle {
        addr,
        shutdown,
        accept_thread: None,
        worker_threads: threads,
        requests_served,
    }
}

/// Starts a server with the given route handler on an OS-assigned port.
pub fn start(config: ServerConfig, handler: Handler) -> std::io::Result<ServerHandle> {
    start_bound(TcpListener::bind(("127.0.0.1", 0))?, config, handler)
}

/// Starts a server on an explicit address. Used by restart scenarios
/// (and their tests): a replacement server can come back on the same
/// port its predecessor vacated, so clients holding that address
/// reconnect instead of being re-pointed.
pub fn start_on(
    addr: std::net::SocketAddr,
    config: ServerConfig,
    handler: Handler,
) -> std::io::Result<ServerHandle> {
    start_bound(TcpListener::bind(addr)?, config, handler)
}

fn start_bound(
    listener: TcpListener,
    config: ServerConfig,
    handler: Handler,
) -> std::io::Result<ServerHandle> {
    // Build the process-wide intra-op kernel pool before the first
    // request arrives: handler threads share this one pool (instead of
    // each racing to create it under load), so the first prediction
    // does not pay the thread-spawn cost.
    etude_tensor::pool::global();
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let requests_served = Arc::new(AtomicU64::new(0));
    let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = unbounded();

    let mut worker_threads = Vec::new();
    for i in 0..config.workers.max(1) {
        let rx = rx.clone();
        let handler = Arc::clone(&handler);
        let shutdown = Arc::clone(&shutdown);
        let served = Arc::clone(&requests_served);
        worker_threads.push(
            std::thread::Builder::new()
                .name(format!("etude-worker-{i}"))
                .spawn(move || worker_loop(rx, handler, shutdown, served))
                .expect("spawn worker"),
        );
    }

    let accept_shutdown = Arc::clone(&shutdown);
    let accept_thread = std::thread::Builder::new()
        .name("etude-accept".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        if tx.send(s).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
        })
        .expect("spawn accept loop");

    Ok(ServerHandle {
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
        worker_threads,
        requests_served,
    })
}

struct Conn {
    stream: TcpStream,
    buf: BytesMut,
}

enum PollOutcome {
    /// Connection alive; flag reports whether any request was served.
    Alive(bool),
    /// Connection finished (EOF or error).
    Closed,
}

impl Conn {
    fn new(stream: TcpStream) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        Ok(Conn {
            stream,
            buf: BytesMut::with_capacity(4096),
        })
    }

    /// Reads available bytes and serves every complete request.
    fn poll(&mut self, handler: &Handler, served: &AtomicU64) -> PollOutcome {
        let mut chunk = [0u8; 4096];
        let mut progressed = false;
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return PollOutcome::Closed,
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    // Cap per-connection buffering: a peer streaming bytes
                    // that never complete a request must not grow memory
                    // without bound.
                    if self.buf.len() > 2 * http::MAX_BODY_BYTES {
                        return PollOutcome::Closed;
                    }
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return PollOutcome::Closed,
            }
        }
        loop {
            match http::parse_request(&mut self.buf) {
                Ok(req) => {
                    let mut resp = handler(&req);
                    served.fetch_add(1, Ordering::Relaxed);
                    // Chaos injection: a response tagged with the reset
                    // marker is truncated halfway through and the
                    // connection torn down, as a crashing peer would.
                    let inject_reset = resp.headers.remove(RESET_MARKER).is_some();
                    let encoded = resp.encode();
                    if inject_reset {
                        let _ = write_all_blocking(&mut self.stream, &encoded[..encoded.len() / 2]);
                        return PollOutcome::Closed;
                    }
                    if write_all_blocking(&mut self.stream, &encoded).is_err() {
                        return PollOutcome::Closed;
                    }
                    progressed = true;
                }
                Err(http::HttpError::Incomplete) => break,
                Err(http::HttpError::Malformed(_)) => {
                    let _ = write_all_blocking(
                        &mut self.stream,
                        &Response::error(500, "bad request").encode(),
                    );
                    return PollOutcome::Closed;
                }
            }
        }
        PollOutcome::Alive(progressed)
    }
}

/// Writes a full buffer on a non-blocking socket, retrying briefly on
/// `WouldBlock`. The retry budget is bounded: a client that stops reading
/// its socket must cost at most [`WRITE_STALL_BUDGET`], not wedge the
/// reactor worker (and every other connection it owns) forever.
fn write_all_blocking(stream: &mut TcpStream, mut data: &[u8]) -> std::io::Result<()> {
    let deadline = Deadline::after(WRITE_STALL_BUDGET);
    while !data.is_empty() {
        match stream.write(data) {
            Ok(0) => return Err(std::io::Error::new(ErrorKind::WriteZero, "write zero")),
            Ok(n) => data = &data[n..],
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if deadline.expired() {
                    return Err(std::io::Error::new(
                        ErrorKind::TimedOut,
                        "peer not draining its socket",
                    ));
                }
                std::thread::sleep(deadline.clamp(Duration::from_micros(50)));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// A reactor-style worker: owns many connections at once (as Actix's
/// per-core event loops do), polling each in turn.
fn worker_loop(
    rx: Receiver<TcpStream>,
    handler: Handler,
    shutdown: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut disconnected = false;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Accept newly assigned connections without blocking.
        loop {
            match rx.try_recv() {
                Ok(stream) => {
                    if let Ok(conn) = Conn::new(stream) {
                        conns.push(conn);
                    }
                }
                Err(crossbeam::channel::TryRecvError::Empty) => break,
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        if disconnected && conns.is_empty() {
            return;
        }
        let mut progressed = false;
        conns.retain_mut(|conn| match conn.poll(&handler, &served) {
            PollOutcome::Alive(p) => {
                progressed |= p;
                true
            }
            PollOutcome::Closed => false,
        });
        if !progressed {
            // Idle: block briefly for a new connection instead of spinning.
            match rx.recv_timeout(IDLE_ACCEPT_POLL) {
                Ok(stream) => {
                    if let Ok(conn) = Conn::new(stream) {
                        conns.push(conn);
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    disconnected = true;
                }
            }
        }
    }
}

/// Process-local fallback ids for requests that carry no `x-request-id`.
static FALLBACK_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Correlation id of a request: the FNV hash of the client's
/// `x-request-id`, or a process-local counter when the client sent none.
/// Also returns the header value so responses can echo it.
pub(crate) fn correlation_id(req: &Request) -> (u64, Option<&str>) {
    match req.headers.get("x-request-id") {
        Some(id) => (request_id_hash(id), Some(id.as_str())),
        None => (FALLBACK_REQUEST_ID.fetch_add(1, Ordering::Relaxed), None),
    }
}

/// Echoes the client's request id back, when it sent one.
pub(crate) fn echo_request_id(resp: Response, id: Option<&str>) -> Response {
    match id {
        Some(id) => resp.with_header("x-request-id", id.to_string()),
        None => resp,
    }
}

pub(crate) fn nanos(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// The propagated trace context, when the client sent one (malformed
/// headers are treated as absent — tracing must never fail a request).
pub(crate) fn trace_ctx(req: &Request) -> Option<TraceCtx> {
    req.headers
        .get(TRACE_HEADER)
        .and_then(|v| TraceCtx::parse(v))
}

/// Retains the request's stage durations as pod-side trace spans (a
/// no-op unless the recorder has trace retention on) and echoes the
/// context back one hop deeper so clients can confirm propagation.
pub(crate) fn note_trace(
    recorder: &Recorder,
    ctx: Option<TraceCtx>,
    resp: Response,
    stages: &[(Stage, u64)],
) -> Response {
    let Some(ctx) = ctx else { return resp };
    for &(stage, nanos) in stages {
        recorder.note_pod_stage(&ctx, stage, nanos);
    }
    let echo = ctx.child(etude_obs::trace::span_hash(
        ctx.trace_id,
        ctx.span_id,
        Stage::Total as u8 as u64,
    ));
    resp.with_header(TRACE_HEADER, echo.encode())
}

/// Routes every server flavour shares: readiness, the static
/// infrastructure test and the two observability endpoints.
pub(crate) fn shared_routes(req: &Request, recorder: &Recorder) -> Option<Response> {
    match (req.method, req.path.as_str()) {
        (Method::Get, "/ping") => Some(Response::ok("pong")),
        (Method::Get, "/static") => Some(Response::ok("ok")),
        (Method::Get, "/metrics") => Some(
            Response::ok(recorder.snapshot().render_prometheus())
                .with_header("content-type", "text/plain; version=0.0.4".to_string()),
        ),
        (Method::Get, "/stats") => Some(
            Response::ok(recorder.snapshot().render_json())
                .with_header("content-type", "application/json".to_string()),
        ),
        (Method::Get, "/debug/profile") => {
            // Folded flamegraph lines, rooted at the process tag plus
            // the active SIMD ISA so captures from different hosts stay
            // distinguishable.
            let root = format!("etude[{}]", etude_tensor::simd::isa_name());
            Some(
                Response::ok(etude_obs::profile::render_folded(&root))
                    .with_header("content-type", "text/plain".to_string()),
            )
        }
        (Method::Get, "/debug/slow") => Some(
            Response::ok(recorder.exemplars().render_chrome_json())
                .with_header("content-type", "application/json".to_string()),
        ),
        _ => None,
    }
}

/// Parses and validates a prediction request body.
pub(crate) fn parse_prediction(body: &[u8], catalog_size: usize) -> Result<Vec<u32>, Response> {
    let items = match http::decode_session(body) {
        Ok(items) => items,
        Err(_) => return Err(Response::error(400, "malformed session")),
    };
    // Reject out-of-catalog ids at the boundary: a clean 400 instead of
    // an inference failure deep in the kernels.
    if let Some(&bad) = items.iter().find(|&&i| i as usize >= catalog_size) {
        return Err(Response::error(
            400,
            &format!("item id {bad} out of catalog"),
        ));
    }
    Ok(items)
}

/// Builds the model-serving route table of the paper's inference server.
///
/// When `jit` is set the model is traced and compiled at deployment time
/// (models with dynamic control flow fall back to eager execution, as
/// `torch.jit` would). Stage spans land in a private recorder; use
/// [`model_routes_observed`] to keep a handle on it.
pub fn model_routes(model: Arc<dyn SbrModel>, device: Device, jit: bool) -> Handler {
    model_routes_observed(model, device, jit, Arc::new(Recorder::new()))
}

/// [`model_routes`] with an externally owned span recorder, so callers
/// (tests, benchmarks) can aggregate stage latencies in-process instead
/// of scraping `/stats`.
pub fn model_routes_observed(
    model: Arc<dyn SbrModel>,
    device: Device,
    jit: bool,
    recorder: Arc<Recorder>,
) -> Handler {
    let compiled: Option<Arc<CompiledGraph>> = if jit {
        traits::compile(model.as_ref(), JitOptions::default())
            .ok()
            .map(Arc::new)
    } else {
        None
    };
    let catalog_size = model.config().catalog_size;
    Arc::new(move |req: &Request| -> Response {
        if let Some(resp) = shared_routes(req, &recorder) {
            return resp;
        }
        match (req.method, req.path.as_str()) {
            (Method::Post, "/predictions") => {
                let t_total = Instant::now();
                let (rid, echo) = correlation_id(req);
                let t_parse = Instant::now();
                let items = match parse_prediction(&req.body, catalog_size) {
                    Ok(items) => items,
                    Err(resp) => return echo_request_id(resp, echo),
                };
                let parse = t_parse.elapsed();
                let timed = match &compiled {
                    Some(graph) => traits::recommend_compiled_timed(model.as_ref(), graph, &items),
                    None => traits::recommend_eager_timed(model.as_ref(), &device, &items),
                };
                match timed {
                    Ok((rec, st)) => {
                        let t_ser = Instant::now();
                        let body = http::encode_recommendations(&rec.items, &rec.scores);
                        let resp = echo_request_id(
                            Response::ok(body).with_header(
                                "x-inference-duration-micros",
                                (st.inference + st.topk).as_micros().to_string(),
                            ),
                            echo,
                        );
                        let serialize = t_ser.elapsed();
                        // Take the total before the records: the first
                        // record on a thread registers its ring, which
                        // must not be billed to this request.
                        let total = t_total.elapsed();
                        recorder.record(rid, Stage::Parse, nanos(parse));
                        recorder.record(rid, Stage::Inference, nanos(st.inference));
                        recorder.record(rid, Stage::TopK, nanos(st.topk));
                        recorder.record(rid, Stage::Serialize, nanos(serialize));
                        recorder.record(rid, Stage::Total, nanos(total));
                        note_trace(
                            &recorder,
                            trace_ctx(req),
                            resp,
                            &[
                                (Stage::Parse, nanos(parse)),
                                (Stage::Inference, nanos(st.inference)),
                                (Stage::TopK, nanos(st.topk)),
                                (Stage::Serialize, nanos(serialize)),
                                (Stage::Total, nanos(total)),
                            ],
                        )
                    }
                    Err(_) => echo_request_id(Response::error(500, "inference failed"), echo),
                }
            }
            _ => Response::error(404, "no such route"),
        }
    })
}

/// Wraps a route table with deterministic server-side fault injection.
///
/// Prediction requests consult the [`FaultInjector`] at three points:
/// an active slow-down window stalls the handler, an error-response
/// window answers with the configured status instead of serving, and a
/// connection-reset window tags the response with [`RESET_MARKER`] so
/// the connection poll loop truncates it mid-write. All decisions are
/// pure functions of the plan seed and the request id, so two runs of
/// the same seeded plan inject bit-identical faults. Fired faults are
/// counted on the recorder (surfaced as `faults` in `/stats`).
///
/// Non-prediction routes (`/ping`, `/stats`, `/metrics`, `/static`)
/// pass through untouched so probes and scrapes survive chaos runs.
pub fn inject_faults(inner: Handler, injector: FaultInjector, recorder: Arc<Recorder>) -> Handler {
    Arc::new(move |req: &Request| -> Response {
        if !(req.method == Method::Post && req.path == "/predictions") {
            return inner(req);
        }
        let (rid, echo) = correlation_id(req);
        let elapsed = injector.elapsed();
        let stall = injector.slowdown(elapsed);
        if !stall.is_zero() {
            recorder.note_fault();
            std::thread::sleep(stall);
        }
        if let Some(status) = injector.error_response(elapsed, rid) {
            recorder.note_fault();
            return echo_request_id(Response::error(status, "injected fault"), echo);
        }
        let resp = inner(req);
        if injector.resets_connection(elapsed, rid) {
            recorder.note_fault();
            return resp.with_header(RESET_MARKER, "1".to_string());
        }
        resp
    })
}

/// Graceful-degradation policy for the batched server.
///
/// Under sustained overload the server stops 503-ing and falls back to a
/// precomputed popularity top-k response: a cheap, always-available
/// answer that keeps the endpoint useful while the batcher catches up.
#[derive(Debug, Clone)]
pub struct DegradationPolicy {
    /// Consecutive queue-full sheds before entering degraded mode (the
    /// shed that crosses the threshold is already served degraded).
    pub enter_after: u64,
    /// Consecutive successful batcher submissions before returning to
    /// normal service.
    pub exit_after: u64,
    /// Recommendations in the fallback response.
    pub top_k: usize,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy {
            enter_after: 8,
            exit_after: 32,
            top_k: 21,
        }
    }
}

/// The degradation state machine plus its precomputed fallback response.
///
/// Transitions: `Normal -> Degraded` after `enter_after` *consecutive*
/// queue-full sheds (any success resets the streak); `Degraded -> Normal`
/// after `exit_after` consecutive successful batcher submissions (any
/// overload resets that streak). In degraded mode overloaded requests get
/// the popularity fallback as `200` + [`DEGRADED_HEADER`] instead of 503.
pub(crate) struct Degradation {
    policy: DegradationPolicy,
    /// Pre-encoded popularity top-k body, built once at route setup —
    /// the degraded path must not cost inference.
    pub(crate) fallback_body: String,
    degraded: AtomicBool,
    consecutive_sheds: AtomicU64,
    consecutive_ok: AtomicU64,
}

impl Degradation {
    pub(crate) fn new(policy: DegradationPolicy, catalog_size: usize) -> Degradation {
        let fallback_body = popularity_fallback(catalog_size, policy.top_k);
        Degradation {
            policy,
            fallback_body,
            degraded: AtomicBool::new(false),
            consecutive_sheds: AtomicU64::new(0),
            consecutive_ok: AtomicU64::new(0),
        }
    }

    pub(crate) fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// A batcher submission succeeded: any shed streak ends, and in
    /// degraded mode a long enough success streak restores normal
    /// service.
    pub(crate) fn note_success(&self) {
        self.consecutive_sheds.store(0, Ordering::Relaxed);
        if self.is_degraded() {
            let oks = self.consecutive_ok.fetch_add(1, Ordering::Relaxed) + 1;
            if oks >= self.policy.exit_after {
                self.degraded.store(false, Ordering::Relaxed);
                self.consecutive_ok.store(0, Ordering::Relaxed);
            }
        }
    }

    /// The queue was full. Returns `true` when the request should be
    /// served from the fallback (degraded mode), `false` to shed it.
    pub(crate) fn note_overload(&self) -> bool {
        if self.is_degraded() {
            self.consecutive_ok.store(0, Ordering::Relaxed);
            return true;
        }
        let sheds = self.consecutive_sheds.fetch_add(1, Ordering::Relaxed) + 1;
        if sheds >= self.policy.enter_after {
            self.degraded.store(true, Ordering::Relaxed);
            self.consecutive_sheds.store(0, Ordering::Relaxed);
            self.consecutive_ok.store(0, Ordering::Relaxed);
            return true;
        }
        false
    }
}

/// The degraded-mode response body: the catalog's popularity top-k (the
/// head of the item distribution — our synthetic workloads put the mass
/// on the lowest ids), scored by reciprocal rank. Stands in for the
/// popularity cache a production recommender keeps warm.
fn popularity_fallback(catalog_size: usize, top_k: usize) -> String {
    let k = top_k.min(catalog_size).max(1);
    let items: Vec<u32> = (0..k as u32).collect();
    let scores: Vec<f32> = (0..k).map(|rank| 1.0 / (rank as f32 + 1.0)).collect();
    http::encode_recommendations(&items, &scores)
}

/// One batched inference result: the recommendation plus the measured
/// inference/top-k wall-time split, so the handler thread can derive its
/// queue wait (submit-to-response minus actual compute).
pub(crate) struct BatchReply {
    pub(crate) rec: Result<etude_models::Recommendation, String>,
    pub(crate) inference: Duration,
    pub(crate) topk: Duration,
}

type PredictionBatcher = crate::batching::Batcher<Vec<u32>, BatchReply>;

/// Builds the model-serving routes with the `batched-fn`-style request
/// batcher in front of inference — the configuration the paper uses for
/// GPU deployments (buffer up to 1,024 requests, flush every 2 ms).
///
/// Handler threads submit sessions into the [`crate::batching::Batcher`]
/// and block on their individual results; a dedicated batcher thread
/// drains whole batches through the (JIT-compiled when possible) model.
/// On this CPU-only substrate batch items execute sequentially inside the
/// batcher thread — the batching *mechanics* (queueing, flush deadline,
/// per-request response channels) are exactly the deployed structure.
///
/// The batcher queue is bounded ([`crate::batching::BatchConfig::max_queue`]);
/// when it fills, requests are shed with `503 Service Unavailable` and a
/// `Retry-After` header instead of queueing unboundedly.
pub fn model_routes_batched(
    model: Arc<dyn SbrModel>,
    device: Device,
    jit: bool,
    config: crate::batching::BatchConfig,
) -> Handler {
    model_routes_batched_observed(model, device, jit, config, Arc::new(Recorder::new()))
}

/// [`model_routes_batched`] with an externally owned span recorder.
pub fn model_routes_batched_observed(
    model: Arc<dyn SbrModel>,
    device: Device,
    jit: bool,
    config: crate::batching::BatchConfig,
    recorder: Arc<Recorder>,
) -> Handler {
    model_routes_batched_resilient(model, device, jit, config, recorder, None)
}

/// [`model_routes_batched_observed`] with graceful degradation: under
/// sustained overload (per `policy`) the server serves the popularity
/// fallback instead of 503-ing. `policy: None` keeps pure shedding.
pub fn model_routes_batched_resilient(
    model: Arc<dyn SbrModel>,
    device: Device,
    jit: bool,
    config: crate::batching::BatchConfig,
    recorder: Arc<Recorder>,
    policy: Option<DegradationPolicy>,
) -> Handler {
    use crate::batching::Batcher;

    let compiled: Option<Arc<CompiledGraph>> = if jit {
        traits::compile(model.as_ref(), JitOptions::default())
            .ok()
            .map(Arc::new)
    } else {
        None
    };
    let catalog_size = model.config().catalog_size;
    let infer_model = Arc::clone(&model);
    let infer_device = device.clone();
    let batcher: Arc<PredictionBatcher> =
        Arc::new(Batcher::spawn(config, move |sessions: Vec<Vec<u32>>| {
            sessions
                .into_iter()
                .map(|items| {
                    let timed = match &compiled {
                        Some(graph) => {
                            traits::recommend_compiled_timed(infer_model.as_ref(), graph, &items)
                        }
                        None => traits::recommend_eager_timed(
                            infer_model.as_ref(),
                            &infer_device,
                            &items,
                        ),
                    };
                    match timed {
                        Ok((rec, st)) => BatchReply {
                            rec: Ok(rec),
                            inference: st.inference,
                            topk: st.topk,
                        },
                        Err(e) => BatchReply {
                            rec: Err(e.to_string()),
                            inference: Duration::ZERO,
                            topk: Duration::ZERO,
                        },
                    }
                })
                .collect()
        }));
    let degradation = policy.map(|p| Arc::new(Degradation::new(p, catalog_size)));
    batched_routes(batcher, catalog_size, recorder, degradation)
}

/// The route table around a prediction batcher. Factored out of
/// [`model_routes_batched_observed`] so tests can drive a batcher whose
/// batch closure they control (e.g. gated, to force overload).
fn batched_routes(
    batcher: Arc<PredictionBatcher>,
    catalog_size: usize,
    recorder: Arc<Recorder>,
    degradation: Option<Arc<Degradation>>,
) -> Handler {
    use crate::batching::CallError;

    Arc::new(move |req: &Request| -> Response {
        if let Some(resp) = shared_routes(req, &recorder) {
            return resp;
        }
        match (req.method, req.path.as_str()) {
            (Method::Post, "/predictions") => {
                let t_total = Instant::now();
                let (rid, echo) = correlation_id(req);
                let t_parse = Instant::now();
                let items = match parse_prediction(&req.body, catalog_size) {
                    Ok(items) => items,
                    Err(resp) => return echo_request_id(resp, echo),
                };
                let parse = t_parse.elapsed();
                let t_call = Instant::now();
                // Export the batcher backlog as a gauge: the fleet view
                // reads it off `/stats` to spot queueing pods.
                recorder.set_queue_depth(batcher.queue_depth() as u64);
                match batcher.try_call(items) {
                    Ok(BatchReply {
                        rec: Ok(rec),
                        inference,
                        topk,
                    }) => {
                        if let Some(d) = &degradation {
                            d.note_success();
                        }
                        // Everything between submit and response that was
                        // not compute is batch-queue wait (sitting in the
                        // channel plus the flush deadline).
                        let queue = t_call.elapsed().saturating_sub(inference + topk);
                        let t_ser = Instant::now();
                        let body = http::encode_recommendations(&rec.items, &rec.scores);
                        let resp = echo_request_id(
                            Response::ok(body).with_header(
                                "x-inference-duration-micros",
                                (inference + topk).as_micros().to_string(),
                            ),
                            echo,
                        );
                        let serialize = t_ser.elapsed();
                        // Take the total before the records: the first
                        // record on a thread registers its ring, which
                        // must not be billed to this request.
                        let total = t_total.elapsed();
                        recorder.record(rid, Stage::Parse, nanos(parse));
                        recorder.record(rid, Stage::Queue, nanos(queue));
                        recorder.record(rid, Stage::Inference, nanos(inference));
                        recorder.record(rid, Stage::TopK, nanos(topk));
                        recorder.record(rid, Stage::Serialize, nanos(serialize));
                        recorder.record(rid, Stage::Total, nanos(total));
                        note_trace(
                            &recorder,
                            trace_ctx(req),
                            resp,
                            &[
                                (Stage::Parse, nanos(parse)),
                                (Stage::Queue, nanos(queue)),
                                (Stage::Inference, nanos(inference)),
                                (Stage::TopK, nanos(topk)),
                                (Stage::Serialize, nanos(serialize)),
                                (Stage::Total, nanos(total)),
                            ],
                        )
                    }
                    Ok(BatchReply { rec: Err(_), .. }) => {
                        // The batcher submission itself succeeded.
                        if let Some(d) = &degradation {
                            d.note_success();
                        }
                        echo_request_id(Response::error(500, "inference failed"), echo)
                    }
                    Err(CallError::Overloaded) => {
                        if let Some(d) = &degradation {
                            if d.note_overload() {
                                recorder.note_degraded();
                                return echo_request_id(
                                    Response::ok(d.fallback_body.clone())
                                        .with_header(DEGRADED_HEADER, "1".to_string()),
                                    echo,
                                );
                            }
                        }
                        recorder.note_shed();
                        echo_request_id(
                            Response::error(503, "server overloaded, retry later")
                                .with_header("retry-after", "1".to_string()),
                            echo,
                        )
                    }
                    Err(CallError::Closed) => {
                        echo_request_id(Response::error(503, "batcher unavailable"), echo)
                    }
                }
            }
            _ => Response::error(404, "no such route"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientError, HttpClient};
    use etude_models::{ModelConfig, ModelKind};

    fn static_handler() -> Handler {
        Arc::new(|req: &Request| match (req.method, req.path.as_str()) {
            (Method::Get, "/static") => Response::ok("ok"),
            (Method::Get, "/ping") => Response::ok("pong"),
            _ => Response::error(404, "nope"),
        })
    }

    #[test]
    fn serves_static_content_over_real_sockets() {
        let server = start(ServerConfig::default(), static_handler()).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let resp = client.request(&Request::get("/static")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(&resp.body[..], b"ok");
        server.shutdown();
    }

    #[test]
    fn keep_alive_reuses_the_connection() {
        let server = start(ServerConfig::default(), static_handler()).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        for _ in 0..50 {
            let resp = client.request(&Request::get("/ping")).unwrap();
            assert_eq!(resp.status, 200);
        }
        assert_eq!(server.requests_served(), 50);
        server.shutdown();
    }

    #[test]
    fn unknown_routes_return_404() {
        let server = start(ServerConfig::default(), static_handler()).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let resp = client.request(&Request::get("/missing")).unwrap();
        assert_eq!(resp.status, 404);
        server.shutdown();
    }

    #[test]
    fn model_route_returns_recommendations_and_metrics_header() {
        let cfg = ModelConfig::new(500).with_max_session_len(8).with_seed(5);
        let model: Arc<dyn SbrModel> = Arc::from(ModelKind::Core.build(&cfg));
        let handler = model_routes(model, Device::cpu(), true);
        let server = start(ServerConfig::default(), handler).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let resp = client
            .request(&Request::post("/predictions", "1,2,3"))
            .unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.headers.contains_key("x-inference-duration-micros"));
        let body = std::str::from_utf8(&resp.body).unwrap();
        let items: Vec<&str> = body.split(',').collect();
        assert_eq!(items.len(), cfg.top_k);
        assert!(items[0].contains(':'));
        server.shutdown();
    }

    #[test]
    fn malformed_sessions_get_400() {
        let cfg = ModelConfig::new(100).with_max_session_len(4);
        let model: Arc<dyn SbrModel> = Arc::from(ModelKind::Stamp.build(&cfg));
        let handler = model_routes(model, Device::cpu(), false);
        let server = start(ServerConfig::default(), handler).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let resp = client
            .request(&Request::post("/predictions", "1,oops,3"))
            .unwrap();
        assert_eq!(resp.status, 400);
        // Out-of-catalog ids are rejected at the boundary, too — they
        // must never reach (and crash) the embedding kernel.
        let resp = client
            .request(&Request::post("/predictions", "99999999"))
            .unwrap();
        assert_eq!(resp.status, 400);
        assert!(std::str::from_utf8(&resp.body)
            .unwrap()
            .contains("out of catalog"));
        // And the connection/worker survives to serve the next request.
        let resp = client
            .request(&Request::post("/predictions", "1,2"))
            .unwrap();
        assert_eq!(resp.status, 200);
        server.shutdown();
    }

    #[test]
    fn batched_model_route_serves_identical_results() {
        let cfg = ModelConfig::new(400).with_max_session_len(8).with_seed(6);
        let model: Arc<dyn SbrModel> = Arc::from(ModelKind::Narm.build(&cfg));
        let plain = model_routes(Arc::clone(&model), Device::cpu(), true);
        let batched = model_routes_batched(
            model,
            Device::cpu(),
            true,
            crate::batching::BatchConfig {
                max_batch: 8,
                flush_every: Duration::from_millis(2),
                ..Default::default()
            },
        );
        let plain_server = start(ServerConfig::default(), plain).unwrap();
        let batched_server = start(ServerConfig::default(), batched).unwrap();
        let mut c1 = HttpClient::connect(plain_server.addr()).unwrap();
        let mut c2 = HttpClient::connect(batched_server.addr()).unwrap();
        for session in ["1,2,3", "7", "9,9,9,9", "300,2"] {
            let a = c1.request(&Request::post("/predictions", session)).unwrap();
            let b = c2.request(&Request::post("/predictions", session)).unwrap();
            assert_eq!(a.status, 200);
            assert_eq!(b.status, 200);
            assert_eq!(a.body, b.body, "session {session}");
        }
        plain_server.shutdown();
        batched_server.shutdown();
    }

    #[test]
    fn batched_route_survives_concurrent_load() {
        let cfg = ModelConfig::new(300).with_max_session_len(8).with_seed(8);
        let model: Arc<dyn SbrModel> = Arc::from(ModelKind::Stamp.build(&cfg));
        let handler = model_routes_batched(
            model,
            Device::cpu(),
            true,
            crate::batching::BatchConfig::default(),
        );
        let server = Arc::new(start(ServerConfig { workers: 4 }, handler).unwrap());
        let addr = server.addr();
        let mut threads = Vec::new();
        for t in 0..6 {
            threads.push(std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                for i in 0..25u32 {
                    let body = format!("{},{}", t * 10 + 1, i % 300);
                    let resp = client
                        .request(&Request::post("/predictions", body))
                        .unwrap();
                    assert_eq!(resp.status, 200);
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(server.requests_served(), 150);
    }

    #[test]
    fn request_ids_are_echoed_on_responses() {
        let cfg = ModelConfig::new(200).with_max_session_len(4).with_seed(3);
        let model: Arc<dyn SbrModel> = Arc::from(ModelKind::Stamp.build(&cfg));
        let server = start(
            ServerConfig::default(),
            model_routes(model, Device::cpu(), false),
        )
        .unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let mut req = Request::post("/predictions", "1,2");
        req.headers
            .insert("x-request-id".into(), "req-abc-123".into());
        let resp = client.request(&req).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.headers.get("x-request-id").map(String::as_str),
            Some("req-abc-123")
        );
        // Without an explicit header the client generates one and the
        // server echoes it back.
        let resp = client
            .request(&Request::post("/predictions", "1,2"))
            .unwrap();
        assert!(
            resp.headers
                .get("x-request-id")
                .is_some_and(|id| id.starts_with("auto-")),
            "expected generated id, got {:?}",
            resp.headers.get("x-request-id")
        );
        server.shutdown();
    }

    #[test]
    fn metrics_and_stats_endpoints_aggregate_stage_latencies() {
        let cfg = ModelConfig::new(300).with_max_session_len(8).with_seed(4);
        let model: Arc<dyn SbrModel> = Arc::from(ModelKind::Core.build(&cfg));
        let handler = model_routes(model, Device::cpu(), true);
        let server = start(ServerConfig::default(), handler).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        for i in 0..5 {
            let resp = client
                .request(&Request::post(
                    "/predictions",
                    format!("{},{}", i + 1, i + 2),
                ))
                .unwrap();
            assert_eq!(resp.status, 200);
        }

        let stats = client.request(&Request::get("/stats")).unwrap();
        assert_eq!(stats.status, 200);
        assert_eq!(
            stats.headers.get("content-type").map(String::as_str),
            Some("application/json")
        );
        let snap = etude_obs::parse_stats_json(std::str::from_utf8(&stats.body).unwrap()).unwrap();
        assert_eq!(snap.requests, 5);
        assert_eq!(snap.dropped, 0);
        for stage in ["parse", "inference", "topk", "serialize", "total"] {
            let s = snap
                .stage(stage)
                .unwrap_or_else(|| panic!("missing {stage}"));
            assert_eq!(s.count, 5, "stage {stage}");
        }
        assert!(snap.stage("queue").is_none(), "plain route has no queue");

        let metrics = client.request(&Request::get("/metrics")).unwrap();
        assert_eq!(metrics.status, 200);
        let text = std::str::from_utf8(&metrics.body).unwrap();
        assert!(text.contains("# TYPE etude_stage_latency_microseconds summary"));
        assert!(
            text.contains("etude_stage_latency_microseconds{stage=\"inference\",quantile=\"0.9\"}")
        );
        assert!(text.contains("etude_requests_total 5"));
        server.shutdown();
    }

    /// The tentpole acceptance check: on the batched server, the
    /// recorded component stages must tile each request's total within
    /// 10%.
    #[test]
    fn stage_components_tile_the_total_within_ten_percent() {
        let cfg = ModelConfig::new(400).with_max_session_len(8).with_seed(11);
        let model: Arc<dyn SbrModel> = Arc::from(ModelKind::Core.build(&cfg));
        let recorder = Arc::new(Recorder::new());
        recorder.set_record_retention(true);
        let handler = model_routes_batched_observed(
            model,
            Device::cpu(),
            true,
            crate::batching::BatchConfig::default(),
            Arc::clone(&recorder),
        );
        let server = start(ServerConfig::default(), handler).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let n = 20u32;
        for i in 0..n {
            let mut req = Request::post("/predictions", format!("{},{}", i % 400, (i * 7) % 400));
            req.headers
                .insert("x-request-id".into(), format!("tile-{i}"));
            let resp = client.request(&req).unwrap();
            assert_eq!(resp.status, 200);
        }
        let records = recorder.take_records();
        let mut checked = 0;
        for i in 0..n {
            let rid = request_id_hash(&format!("tile-{i}"));
            let of = |stage: Stage| {
                records
                    .iter()
                    .find(|r| r.request_id == rid && r.stage == stage)
                    .map(|r| r.duration_nanos)
                    .unwrap_or_else(|| panic!("request {i} missing {}", stage.name()))
            };
            let total = of(Stage::Total);
            let sum = Stage::COMPONENTS.iter().map(|&s| of(s)).sum::<u64>();
            let gap = total.abs_diff(sum);
            assert!(
                gap * 10 <= total,
                "request {i}: components {sum}ns vs total {total}ns (gap {gap}ns > 10%)"
            );
            checked += 1;
        }
        assert_eq!(checked, n);
        server.shutdown();
    }

    /// Drives the batched server into overload (gated batcher, full
    /// queue) and back out: shed requests get `503` + `Retry-After`,
    /// recovery restores `200`s.
    #[test]
    fn overloaded_batched_server_sheds_load_and_recovers() {
        use crate::batching::{BatchConfig, Batcher};

        let gate = Arc::new(parking_lot::Mutex::new(()));
        let held = gate.lock();
        let handler_gate = Arc::clone(&gate);
        let entered = Arc::new(AtomicU64::new(0));
        let entered_in_closure = Arc::clone(&entered);
        let batcher: Arc<PredictionBatcher> = Arc::new(Batcher::spawn(
            BatchConfig {
                max_batch: 1,
                flush_every: Duration::from_micros(1),
                max_queue: 1,
            },
            move |sessions: Vec<Vec<u32>>| {
                entered_in_closure.fetch_add(1, Ordering::SeqCst);
                let _open = handler_gate.lock();
                sessions
                    .into_iter()
                    .map(|_| BatchReply {
                        rec: Ok(etude_models::Recommendation {
                            items: vec![1],
                            scores: vec![1.0],
                        }),
                        inference: Duration::from_micros(10),
                        topk: Duration::from_micros(5),
                    })
                    .collect()
            },
        ));
        let probe = Arc::clone(&batcher);
        let handler = batched_routes(batcher, 100, Arc::new(Recorder::new()), None);
        let server = start(ServerConfig { workers: 4 }, handler).unwrap();
        let addr = server.addr();

        let spawn_request = move || {
            std::thread::spawn(move || {
                let mut client =
                    HttpClient::connect_with_timeout(addr, Duration::from_secs(30)).unwrap();
                client
                    .request(&Request::post("/predictions", "1"))
                    .unwrap()
                    .status
            })
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        // First in-flight request: consumed by the batcher thread, which
        // is now held inside the gated closure.
        let mut blocked = vec![spawn_request()];
        while entered.load(Ordering::SeqCst) == 0 {
            assert!(Instant::now() < deadline, "batcher never started");
            std::thread::yield_now();
        }
        // Second in-flight request: fills the single queue slot.
        blocked.push(spawn_request());
        while probe.queue_depth() < 1 {
            assert!(Instant::now() < deadline, "queue never filled");
            std::thread::yield_now();
        }
        // Queue full: the next request is shed immediately.
        let mut client = HttpClient::connect(addr).unwrap();
        let resp = client.request(&Request::post("/predictions", "2")).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(
            resp.headers.get("retry-after").map(String::as_str),
            Some("1")
        );

        // Out of overload: release the gate, let the queue drain.
        drop(held);
        for b in blocked {
            assert_eq!(b.join().unwrap(), 200);
        }
        let resp = client.request(&Request::post("/predictions", "3")).unwrap();
        assert_eq!(resp.status, 200);
        server.shutdown();
    }

    #[test]
    fn degradation_state_machine_enters_and_exits() {
        let d = Degradation::new(
            DegradationPolicy {
                enter_after: 3,
                exit_after: 2,
                top_k: 5,
            },
            100,
        );
        assert!(!d.is_degraded());
        assert!(!d.note_overload(), "shed 1: still normal");
        assert!(!d.note_overload(), "shed 2: still normal");
        assert!(d.note_overload(), "shed 3 crosses the threshold");
        assert!(d.is_degraded());
        assert!(d.note_overload(), "degraded overloads keep falling back");
        d.note_success();
        assert!(d.is_degraded(), "one success is not enough");
        d.note_success();
        assert!(!d.is_degraded(), "two consecutive successes restore");
        // A success mid-streak resets the shed counter.
        assert!(!d.note_overload());
        assert!(!d.note_overload());
        d.note_success();
        assert!(!d.note_overload(), "streak was broken; count restarts");
        assert!(!d.note_overload());
        assert!(d.note_overload());
    }

    #[test]
    fn popularity_fallback_is_well_formed_and_ranked() {
        let body = popularity_fallback(100, 5);
        let pairs: Vec<(u32, f32)> = body
            .split(',')
            .map(|p| {
                let (id, score) = p.split_once(':').unwrap();
                (id.parse().unwrap(), score.parse().unwrap())
            })
            .collect();
        assert_eq!(pairs.len(), 5);
        assert!(pairs.windows(2).all(|w| w[0].1 >= w[1].1), "scores sorted");
        assert!(pairs.iter().all(|&(id, _)| (id as usize) < 100));
        // Tiny catalogs clamp k instead of inventing items.
        assert_eq!(popularity_fallback(2, 21).split(',').count(), 2);
    }

    /// Degraded mode over real sockets: saturate the gated batcher until
    /// the server flips to the popularity fallback, then release the gate
    /// and watch it recover to full service.
    #[test]
    fn sustained_overload_degrades_gracefully_and_recovers() {
        use crate::batching::{BatchConfig, Batcher};

        let gate = Arc::new(parking_lot::Mutex::new(()));
        let held = gate.lock();
        let handler_gate = Arc::clone(&gate);
        let entered = Arc::new(AtomicU64::new(0));
        let entered_in_closure = Arc::clone(&entered);
        let batcher: Arc<PredictionBatcher> = Arc::new(Batcher::spawn(
            BatchConfig {
                max_batch: 1,
                flush_every: Duration::from_micros(1),
                max_queue: 1,
            },
            move |sessions: Vec<Vec<u32>>| {
                entered_in_closure.fetch_add(1, Ordering::SeqCst);
                let _open = handler_gate.lock();
                sessions
                    .into_iter()
                    .map(|_| BatchReply {
                        rec: Ok(etude_models::Recommendation {
                            items: vec![1],
                            scores: vec![1.0],
                        }),
                        inference: Duration::from_micros(10),
                        topk: Duration::from_micros(5),
                    })
                    .collect()
            },
        ));
        let probe = Arc::clone(&batcher);
        let recorder = Arc::new(Recorder::new());
        let degradation = Arc::new(Degradation::new(
            DegradationPolicy {
                enter_after: 2,
                exit_after: 1,
                top_k: 4,
            },
            100,
        ));
        let handler = batched_routes(batcher, 100, Arc::clone(&recorder), Some(degradation));
        let server = start(ServerConfig { workers: 4 }, handler).unwrap();
        let addr = server.addr();

        let spawn_request = move || {
            std::thread::spawn(move || {
                let mut client =
                    HttpClient::connect_with_timeout(addr, Duration::from_secs(30)).unwrap();
                client
                    .request(&Request::post("/predictions", "1"))
                    .unwrap()
                    .status
            })
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut blocked = vec![spawn_request()];
        while entered.load(Ordering::SeqCst) == 0 {
            assert!(Instant::now() < deadline, "batcher never started");
            std::thread::yield_now();
        }
        blocked.push(spawn_request());
        while probe.queue_depth() < 1 {
            assert!(Instant::now() < deadline, "queue never filled");
            std::thread::yield_now();
        }
        // Queue full. First overload: still a 503 shed (below threshold).
        let mut client = HttpClient::connect(addr).unwrap();
        let resp = client.request(&Request::post("/predictions", "2")).unwrap();
        assert_eq!(resp.status, 503);
        // Second consecutive overload crosses the threshold: degraded
        // 200 with the fallback body, flagged via the header.
        let resp = client.request(&Request::post("/predictions", "3")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.headers.get(DEGRADED_HEADER).map(String::as_str),
            Some("1")
        );
        let body = std::str::from_utf8(&resp.body).unwrap();
        assert_eq!(body.split(',').count(), 4, "policy top_k");
        assert!(body.split(',').all(|p| p.contains(':')), "well-formed");
        // Still degraded: the next overload also falls back.
        let resp = client.request(&Request::post("/predictions", "4")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.headers.get(DEGRADED_HEADER).map(String::as_str),
            Some("1")
        );

        // Recovery: release the gate, drain the queue.
        drop(held);
        for b in blocked {
            assert_eq!(b.join().unwrap(), 200);
        }
        // exit_after = 1: one successful submission restores normal
        // service (and normal responses carry no degraded flag).
        let resp = client.request(&Request::post("/predictions", "5")).unwrap();
        assert_eq!(resp.status, 200);
        assert!(!resp.headers.contains_key(DEGRADED_HEADER));

        // The counters made it into /stats.
        let stats = client.request(&Request::get("/stats")).unwrap();
        let snap = etude_obs::parse_stats_json(std::str::from_utf8(&stats.body).unwrap()).unwrap();
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.degraded, 2);
        server.shutdown();
    }

    #[test]
    fn reset_tagged_responses_tear_the_connection_down() {
        let handler: Handler = Arc::new(|req: &Request| match (req.method, req.path.as_str()) {
            (Method::Get, "/reset") => Response::ok("you will never read all of this body")
                .with_header(RESET_MARKER, "1".to_string()),
            _ => Response::ok("fine"),
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let resp = client.request(&Request::get("/ok")).unwrap();
        assert_eq!(resp.status, 200);
        // The tagged response arrives truncated; the client sees a dead
        // connection, not a parsed response — and the marker never
        // reaches the wire.
        match client.request(&Request::get("/reset")) {
            Ok(resp) => panic!("expected a reset, parsed {:?}", resp.status),
            Err(ClientError::Io(_) | ClientError::Protocol(_) | ClientError::Timeout) => {}
        }
        server.shutdown();
    }

    #[test]
    fn injected_faults_hit_predictions_but_spare_probes() {
        use etude_faults::{FaultKind, FaultPlan};

        let inner: Handler = Arc::new(|req: &Request| match (req.method, req.path.as_str()) {
            (Method::Post, "/predictions") => Response::ok("1:0.5"),
            (Method::Get, "/ping") => Response::ok("pong"),
            _ => Response::error(404, "no"),
        });
        let recorder = Arc::new(Recorder::new());
        let plan = FaultPlan::seeded(21).with_window(
            Duration::ZERO,
            Duration::from_secs(3600),
            FaultKind::ErrorResponse {
                prob: 1.0,
                status: 502,
            },
        );
        let handler = inject_faults(inner, FaultInjector::new(plan), Arc::clone(&recorder));
        let resp = handler(&Request::post("/predictions", "1,2"));
        assert_eq!(resp.status, 502);
        assert_eq!(&resp.body[..], b"injected fault");
        let resp = handler(&Request::get("/ping"));
        assert_eq!(resp.status, 200, "probes bypass injection");
        assert_eq!(recorder.snapshot().faults, 1);
    }

    #[test]
    fn injected_resets_tag_the_response_with_the_marker() {
        use etude_faults::{FaultKind, FaultPlan};

        let inner: Handler = Arc::new(|_: &Request| Response::ok("1:0.5"));
        let recorder = Arc::new(Recorder::new());
        let plan = FaultPlan::seeded(4).with_window(
            Duration::ZERO,
            Duration::from_secs(3600),
            FaultKind::ConnReset { prob: 1.0 },
        );
        let handler = inject_faults(inner, FaultInjector::new(plan), Arc::clone(&recorder));
        let resp = handler(&Request::post("/predictions", "7"));
        assert_eq!(resp.status, 200);
        assert!(resp.headers.contains_key(RESET_MARKER));
    }

    /// Trace propagation over real sockets: a request carrying
    /// `x-trace-ctx` leaves pod-side stage spans parented to the
    /// client's attempt span, and the response echoes the context one
    /// hop deeper.
    #[test]
    fn trace_contexts_leave_pod_spans_and_echo_back() {
        let cfg = ModelConfig::new(300).with_max_session_len(8).with_seed(9);
        let model: Arc<dyn SbrModel> = Arc::from(ModelKind::Stamp.build(&cfg));
        let recorder = Arc::new(Recorder::with_pod(7));
        recorder.set_trace_retention(true);
        let handler = model_routes_observed(model, Device::cpu(), false, Arc::clone(&recorder));
        let server = start(ServerConfig::default(), handler).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();

        let ctx = TraceCtx::root(request_id_hash("traced-req")).child(0xfeed);
        let mut req = Request::post("/predictions", "1,2,3");
        req.headers.insert(TRACE_HEADER.into(), ctx.encode());
        let resp = client.request(&req).unwrap();
        assert_eq!(resp.status, 200);

        // The response carries the context one hop deeper.
        let echoed = TraceCtx::parse(resp.headers.get(TRACE_HEADER).unwrap()).unwrap();
        assert_eq!(echoed.trace_id, ctx.trace_id);
        assert_eq!(echoed.hop, ctx.hop + 1);

        // The pod retained one span per recorded stage, all parented to
        // the client's attempt span and tagged with the pod id.
        let spans = recorder.take_traces();
        assert_eq!(spans.len(), 5, "parse/inference/topk/serialize/total");
        for s in &spans {
            assert_eq!(s.trace_id, ctx.trace_id);
            assert_eq!(s.parent_span, ctx.span_id);
            assert_eq!(s.pod, 7);
        }
        assert!(spans.iter().any(|s| s.stage == Stage::Total));
        assert!(spans.iter().any(|s| s.stage == Stage::Inference));

        // Untraced requests leave no trace records behind.
        let resp = client
            .request(&Request::post("/predictions", "4,5"))
            .unwrap();
        assert_eq!(resp.status, 200);
        assert!(!resp.headers.contains_key(TRACE_HEADER));
        assert!(recorder.take_traces().is_empty());
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = Arc::new(start(ServerConfig { workers: 4 }, static_handler()).unwrap());
        let addr = server.addr();
        let mut handles = Vec::new();
        for _ in 0..8 {
            handles.push(std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                for _ in 0..20 {
                    let resp = client.request(&Request::get("/static")).unwrap();
                    assert_eq!(resp.status, 200);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.requests_served(), 160);
    }
}
