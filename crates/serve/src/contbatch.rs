//! Continuous batching with deadline-aware admission.
//!
//! The fixed batcher ([`crate::batching`]) gathers requests into a
//! window (up to 1,024 / 2 ms) and runs the whole batch before touching
//! the queue again — the TorchServe-style queueing model. Under bursty
//! arrivals that shape taxes the tail twice: a request pays the flush
//! window *and* head-of-line blocking behind the whole batch in front
//! of it, and requests whose latency budget already expired in the
//! queue still occupy compute.
//!
//! Continuous batching dissolves the window: the in-flight "batch" is
//! simply the set of inference slots ([`ContinuousConfig::slots`]
//! worker threads), and a queued request **admits the moment any slot
//! frees up**. Admission is deadline-aware at both ends:
//!
//! * at submit, a request whose [`Deadline`] is already blown is
//!   rejected without ever queueing ([`AdmitError::Expired`]) — the
//!   budget is anchored at the instant the request was parsed off the
//!   wire (`Request::arrival`), so time spent waiting for a reactor
//!   dispatch thread counts against it too,
//! * at dequeue — the instant inference *would* start — the deadline is
//!   re-checked and expired requests are shed before compute, freeing
//!   the slot for a request that can still make its budget.
//!
//! The consequence, which `tests/continuous_equivalence.rs` pins as an
//! invariant: **no admitted request's inference ever starts after its
//! deadline budget is exhausted**, and therefore the queue-wait span of
//! every *served* request is bounded by its budget.
//!
//! Per-request results are identical to the fixed batcher's — both run
//! the same deterministic per-session inference, so at any load where
//! neither sheds, responses are byte-identical (also pinned by the
//! equivalence suite). The fixed batcher stays available behind the
//! serving-mode config flag as the baseline for the saturation bench.

use crate::http::{self, Method, Request, Response};
use crate::rustserver::{
    correlation_id, echo_request_id, nanos, note_trace, parse_prediction, shared_routes, trace_ctx,
    BatchReply, Degradation, DegradationPolicy, Handler, DEGRADED_HEADER,
};
use crossbeam::channel::{bounded, Sender, TrySendError};
use etude_control::Criticality;
use etude_faults::Deadline;
use etude_models::{traits, SbrModel};
use etude_obs::{Recorder, Stage};
use etude_tensor::{CompiledGraph, Device, JitOptions};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Request header carrying the client's latency budget in milliseconds.
/// Absent, [`ContinuousConfig::default_deadline`] applies.
pub const DEADLINE_HEADER: &str = "x-deadline-ms";

/// Continuous-batcher configuration.
#[derive(Debug, Clone)]
pub struct ContinuousConfig {
    /// Concurrent inference slots: the size of the in-flight batch and
    /// the number of worker threads draining the admission queue.
    pub slots: usize,
    /// Bounded admission queue; a full queue sheds
    /// ([`AdmitError::Overloaded`]) instead of stacking latency.
    pub max_queue: usize,
    /// Latency budget granted to requests that do not carry
    /// [`DEADLINE_HEADER`].
    pub default_deadline: Duration,
}

impl Default for ContinuousConfig {
    fn default() -> Self {
        ContinuousConfig {
            slots: 4,
            max_queue: 4096,
            default_deadline: Duration::from_secs(2),
        }
    }
}

impl ContinuousConfig {
    /// Sets the admission-queue bound.
    pub fn with_max_queue(mut self, max_queue: usize) -> Self {
        self.max_queue = max_queue;
        self
    }

    /// Sets the default per-request deadline budget.
    pub fn with_default_deadline(mut self, budget: Duration) -> Self {
        self.default_deadline = budget;
        self
    }
}

/// Why an admission failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The admission queue is full; shed (HTTP 503).
    Overloaded,
    /// The request's deadline budget was exhausted before inference
    /// started — at submit, or while waiting in the queue. Shed without
    /// spending compute.
    Expired,
    /// The worker slots have shut down.
    Closed,
}

/// A successfully served request: the result plus the measured
/// admission wait (enqueue → slot pickup), which for served requests is
/// bounded by the deadline budget by construction.
#[derive(Debug)]
pub struct Admitted<R> {
    /// The inference result.
    pub result: R,
    /// Time spent queued before a slot picked the request up.
    pub queue_wait: Duration,
}

enum Outcome<R> {
    Served(Admitted<R>),
    Expired,
}

struct Job<T, R> {
    input: T,
    deadline: Deadline,
    enqueued: Instant,
    respond: Sender<Outcome<R>>,
}

/// The continuous batcher: a bounded admission queue in front of
/// [`ContinuousConfig::slots`] inference workers.
pub struct ContinuousBatcher<T, R> {
    submit: Sender<Job<T, R>>,
    workers: Vec<JoinHandle<()>>,
    in_flight: Arc<AtomicUsize>,
    expired_sheds: Arc<AtomicU64>,
}

impl<T: Send + 'static, R: Send + 'static> ContinuousBatcher<T, R> {
    /// Spawns the worker slots around a per-request handler.
    pub fn spawn<F>(config: ContinuousConfig, handler: F) -> ContinuousBatcher<T, R>
    where
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let (tx, rx) = bounded::<Job<T, R>>(config.max_queue.max(1));
        let handler = Arc::new(handler);
        let in_flight = Arc::new(AtomicUsize::new(0));
        let expired_sheds = Arc::new(AtomicU64::new(0));
        let mut workers = Vec::with_capacity(config.slots.max(1));
        for i in 0..config.slots.max(1) {
            let rx = rx.clone();
            let handler = Arc::clone(&handler);
            let in_flight = Arc::clone(&in_flight);
            let expired_sheds = Arc::clone(&expired_sheds);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("etude-contbatch-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            // The slot is free and inference would start
                            // now: the last point the deadline can save
                            // the compute.
                            let queue_wait = job.enqueued.elapsed();
                            if job.deadline.expired() {
                                expired_sheds.fetch_add(1, Ordering::Relaxed);
                                let _ = job.respond.send(Outcome::Expired);
                                continue;
                            }
                            in_flight.fetch_add(1, Ordering::Relaxed);
                            let result = handler(job.input);
                            in_flight.fetch_sub(1, Ordering::Relaxed);
                            let _ = job
                                .respond
                                .send(Outcome::Served(Admitted { result, queue_wait }));
                        }
                    })
                    .expect("spawn continuous-batch worker"),
            );
        }
        ContinuousBatcher {
            submit: tx,
            workers,
            in_flight,
            expired_sheds,
        }
    }

    /// Submits one request under a deadline budget. Fails fast when the
    /// queue is full ([`AdmitError::Overloaded`]) or the budget is
    /// already blown ([`AdmitError::Expired`]); otherwise blocks until
    /// a slot serves — or sheds — the request.
    pub fn try_call(&self, input: T, deadline: Deadline) -> Result<Admitted<R>, AdmitError> {
        if deadline.expired() {
            return Err(AdmitError::Expired);
        }
        let (tx, rx) = bounded(1);
        let job = Job {
            input,
            deadline,
            enqueued: Instant::now(),
            respond: tx,
        };
        match self.submit.try_send(job) {
            Ok(()) => match rx.recv() {
                Ok(Outcome::Served(admitted)) => Ok(admitted),
                Ok(Outcome::Expired) => Err(AdmitError::Expired),
                Err(_) => Err(AdmitError::Closed),
            },
            Err(TrySendError::Full(_)) => Err(AdmitError::Overloaded),
            Err(TrySendError::Disconnected(_)) => Err(AdmitError::Closed),
        }
    }

    /// Requests queued but not yet picked up by a slot (point-in-time
    /// gauge).
    pub fn queue_depth(&self) -> usize {
        self.submit.len()
    }

    /// Requests currently inside inference slots.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Requests shed at dequeue because their budget expired in the
    /// queue (submit-time expiries never enter the queue and are not
    /// counted here).
    pub fn expired_sheds(&self) -> u64 {
        self.expired_sheds.load(Ordering::Relaxed)
    }
}

impl<T, R> Drop for ContinuousBatcher<T, R> {
    fn drop(&mut self) {
        // Closing the channel stops the worker loops.
        let (empty_tx, _) = bounded(0);
        let _ = std::mem::replace(&mut self.submit, empty_tx);
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Extracts the request's deadline budget: [`DEADLINE_HEADER`] in
/// milliseconds when present and parseable, else the configured
/// default.
pub(crate) fn request_budget(req: &Request, default: Duration) -> Duration {
    req.headers
        .get(DEADLINE_HEADER)
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(default)
}

/// Builds the model-serving routes on a continuous batcher: the same
/// route table and observability as the fixed-batch path
/// (`model_routes_batched_resilient`), with per-request deadline-aware
/// admission instead of a flush window. `policy: Some(_)` serves the
/// popularity fallback under sustained queue-full overload; deadline
/// expiries always shed with 503 — serving a fallback late would still
/// be late.
pub fn model_routes_continuous(
    model: Arc<dyn SbrModel>,
    device: Device,
    jit: bool,
    config: ContinuousConfig,
    recorder: Arc<Recorder>,
    policy: Option<DegradationPolicy>,
) -> Handler {
    let compiled: Option<Arc<CompiledGraph>> = if jit {
        traits::compile(model.as_ref(), JitOptions::default())
            .ok()
            .map(Arc::new)
    } else {
        None
    };
    let catalog_size = model.config().catalog_size;
    let infer_model = Arc::clone(&model);
    let infer_device = device.clone();
    let default_deadline = config.default_deadline;
    // The continuous path is the production-shaped server, so it owns
    // starting the always-on sampling profiler (idempotent; feeds
    // `/debug/profile` and the exemplar leaf deltas on `/debug/slow`).
    etude_obs::profile::start_ticker(etude_obs::profile::DEFAULT_TICK);
    let batcher: Arc<ContinuousBatcher<Vec<u32>, BatchReply>> =
        Arc::new(ContinuousBatcher::spawn(config, move |items: Vec<u32>| {
            etude_obs::profile_scope!("contbatch::slot");
            let timed = match &compiled {
                Some(graph) => {
                    traits::recommend_compiled_timed(infer_model.as_ref(), graph, &items)
                }
                None => traits::recommend_eager_timed(infer_model.as_ref(), &infer_device, &items),
            };
            match timed {
                Ok((rec, st)) => BatchReply {
                    rec: Ok(rec),
                    inference: st.inference,
                    topk: st.topk,
                },
                Err(e) => BatchReply {
                    rec: Err(e.to_string()),
                    inference: Duration::ZERO,
                    topk: Duration::ZERO,
                },
            }
        }));
    let degradation = policy.map(|p| Arc::new(Degradation::new(p, catalog_size)));
    continuous_routes(
        batcher,
        catalog_size,
        default_deadline,
        recorder,
        degradation,
    )
}

/// The route table around a continuous batcher. Factored out of
/// [`model_routes_continuous`] so tests can drive a batcher whose
/// handler they control (e.g. gated, to force overload or queue aging).
pub(crate) fn continuous_routes(
    batcher: Arc<ContinuousBatcher<Vec<u32>, BatchReply>>,
    catalog_size: usize,
    default_deadline: Duration,
    recorder: Arc<Recorder>,
    degradation: Option<Arc<Degradation>>,
) -> Handler {
    Arc::new(move |req: &Request| -> Response {
        if let Some(resp) = shared_routes(req, &recorder) {
            return resp;
        }
        match (req.method, req.path.as_str()) {
            (Method::Post, "/predictions") => {
                let t_total = Instant::now();
                let (rid, echo) = correlation_id(req);
                // Forensics: snapshot the profiler's leaf counts so a
                // retained slow exemplar can say where CPU went *during
                // this request* (delta at offer time).
                let mark = recorder.exemplars().begin();
                let t_parse = Instant::now();
                let items = match parse_prediction(&req.body, catalog_size) {
                    Ok(items) => items,
                    Err(resp) => return echo_request_id(resp, echo),
                };
                let parse = t_parse.elapsed();
                // Anchor the budget at the instant the request was
                // parsed off the wire, not at handler entry: the
                // reactor runs route handlers on a dispatch pool, and
                // time spent waiting for a dispatch thread must be
                // charged against the deadline (and shed when blown),
                // or overload would serve requests arbitrarily past
                // their end-to-end budget. The budget is capped at a
                // day so a hostile header can't overflow the Instant.
                let budget = request_budget(req, default_deadline).min(Duration::from_secs(86_400));
                let deadline = Deadline::at(req.arrival + budget);
                let dispatch_wait = t_total.saturating_duration_since(req.arrival);
                recorder.set_queue_depth(batcher.queue_depth() as u64);
                match batcher.try_call(items, deadline) {
                    Ok(Admitted {
                        result:
                            BatchReply {
                                rec: Ok(rec),
                                inference,
                                topk,
                            },
                        queue_wait,
                    }) => {
                        if let Some(d) = &degradation {
                            d.note_success();
                        }
                        let t_ser = Instant::now();
                        let body = http::encode_recommendations(&rec.items, &rec.scores);
                        let resp = echo_request_id(
                            Response::ok(body).with_header(
                                "x-inference-duration-micros",
                                (inference + topk).as_micros().to_string(),
                            ),
                            echo,
                        );
                        let serialize = t_ser.elapsed();
                        // End-to-end from the wire, and a queue span
                        // covering both waits a request can suffer
                        // before compute: dispatch-pool pickup and
                        // batcher-slot pickup. For served requests the
                        // sum is bounded by the budget by construction.
                        let total = req.arrival.elapsed();
                        let queued = dispatch_wait + queue_wait;
                        let stages = [
                            (Stage::Parse, nanos(parse)),
                            (Stage::Queue, nanos(queued)),
                            (Stage::Inference, nanos(inference)),
                            (Stage::TopK, nanos(topk)),
                            (Stage::Serialize, nanos(serialize)),
                            (Stage::Total, nanos(total)),
                        ];
                        for &(stage, ns) in &stages {
                            recorder.record(rid, stage, ns);
                        }
                        // Offer the complete span tree to the slowest-N
                        // store; only tail outliers are retained.
                        match echo {
                            Some(id) => {
                                recorder.exemplars().offer(id, &stages, nanos(total), &mark)
                            }
                            None => recorder.exemplars().offer(
                                &format!("{rid:016x}"),
                                &stages,
                                nanos(total),
                                &mark,
                            ),
                        }
                        note_trace(&recorder, trace_ctx(req), resp, &stages)
                    }
                    Ok(Admitted {
                        result: BatchReply { rec: Err(_), .. },
                        ..
                    }) => {
                        if let Some(d) = &degradation {
                            d.note_success();
                        }
                        echo_request_id(Response::error(500, "inference failed"), echo)
                    }
                    Err(AdmitError::Expired) => {
                        // The budget died in (or before) the queue; 503
                        // so the client retries against a server that
                        // can still make the deadline.
                        recorder.note_shed();
                        echo_request_id(
                            Response::error(503, "deadline exhausted before inference")
                                .with_header("retry-after", "1".to_string()),
                            echo,
                        )
                    }
                    Err(AdmitError::Overloaded) => {
                        // Shedding is criticality-ordered, not FIFO:
                        // `critical` traffic takes the popularity
                        // fallback immediately (a browned-out 200
                        // always beats a 503), `normal` rides the
                        // hysteresis state machine, and `shed-first`
                        // never gets the fallback at all.
                        let crit = Criticality::from_header(
                            req.headers.get(Criticality::HEADER).map(String::as_str),
                        );
                        if let Some(d) = &degradation {
                            let degraded_mode = d.note_overload();
                            let fallback = match crit {
                                Criticality::Critical => true,
                                Criticality::Normal => degraded_mode,
                                Criticality::ShedFirst => false,
                            };
                            if fallback {
                                recorder.note_degraded();
                                recorder.note_brownout(
                                    crate::overload::BrownoutLevel::Fallback.as_u8(),
                                );
                                return echo_request_id(
                                    Response::ok(d.fallback_body.clone())
                                        .with_header(DEGRADED_HEADER, "1".to_string())
                                        .with_header(
                                            crate::overload::BROWNOUT_HEADER,
                                            "3".to_string(),
                                        ),
                                    echo,
                                );
                            }
                        }
                        recorder.note_shed();
                        echo_request_id(
                            Response::error(503, "server overloaded, retry later")
                                .with_header("retry-after", "1".to_string()),
                            echo,
                        )
                    }
                    Err(AdmitError::Closed) => {
                        echo_request_id(Response::error(503, "batcher unavailable"), echo)
                    }
                }
            }
            _ => Response::error(404, "no such route"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_slots() {
        let b: ContinuousBatcher<u32, u32> =
            ContinuousBatcher::spawn(ContinuousConfig::default(), |x| x * 2);
        let out = b
            .try_call(21, Deadline::after(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(out.result, 42);
        assert!(out.queue_wait < Duration::from_secs(5));
    }

    #[test]
    fn blown_budget_is_rejected_before_queueing() {
        let b: ContinuousBatcher<u32, u32> =
            ContinuousBatcher::spawn(ContinuousConfig::default(), |x| x);
        assert!(matches!(
            b.try_call(1, Deadline::after(Duration::ZERO)),
            Err(AdmitError::Expired)
        ));
        // Submit-time expiry never reaches a worker slot.
        assert_eq!(b.expired_sheds(), 0);
    }

    #[test]
    fn budget_expiring_in_queue_sheds_before_compute() {
        // One slot, blocked by a gated first request: the second
        // request's tiny budget dies in the queue and must never run.
        let gate = Arc::new(parking_lot::Mutex::new(()));
        let held = gate.lock();
        let ran = Arc::new(AtomicU64::new(0));
        let handler_gate = Arc::clone(&gate);
        let handler_ran = Arc::clone(&ran);
        let b: Arc<ContinuousBatcher<u32, u32>> = Arc::new(ContinuousBatcher::spawn(
            ContinuousConfig {
                slots: 1,
                max_queue: 8,
                default_deadline: Duration::from_secs(2),
            },
            move |x| {
                handler_ran.fetch_add(1, Ordering::SeqCst);
                let _open = handler_gate.lock();
                x
            },
        ));
        let blocker = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || b.try_call(1, Deadline::after(Duration::from_secs(10))))
        };
        // Wait for the slot to pick the blocker up.
        let deadline = Instant::now() + Duration::from_secs(5);
        while b.in_flight() == 0 {
            assert!(Instant::now() < deadline, "slot never started");
            std::thread::yield_now();
        }
        let doomed = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || b.try_call(2, Deadline::after(Duration::from_millis(20))))
        };
        // Let the doomed request's budget die in the queue.
        std::thread::sleep(Duration::from_millis(60));
        drop(held);
        assert_eq!(blocker.join().unwrap().unwrap().result, 1);
        assert!(matches!(doomed.join().unwrap(), Err(AdmitError::Expired)));
        assert_eq!(b.expired_sheds(), 1);
        // Only the blocker's handler ever ran.
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        let gate = Arc::new(parking_lot::Mutex::new(()));
        let held = gate.lock();
        let handler_gate = Arc::clone(&gate);
        let b: Arc<ContinuousBatcher<u32, u32>> = Arc::new(ContinuousBatcher::spawn(
            ContinuousConfig {
                slots: 1,
                max_queue: 1,
                default_deadline: Duration::from_secs(2),
            },
            move |x| {
                let _open = handler_gate.lock();
                x
            },
        ));
        let blocker = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || b.try_call(1, Deadline::after(Duration::from_secs(10))))
        };
        let deadline = Instant::now() + Duration::from_secs(5);
        while b.in_flight() == 0 {
            assert!(Instant::now() < deadline, "slot never started");
            std::thread::yield_now();
        }
        let queued = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || b.try_call(2, Deadline::after(Duration::from_secs(10))))
        };
        let deadline = Instant::now() + Duration::from_secs(5);
        while b.queue_depth() == 0 {
            assert!(Instant::now() < deadline, "second request never queued");
            std::thread::yield_now();
        }
        assert!(matches!(
            b.try_call(3, Deadline::after(Duration::from_secs(10))),
            Err(AdmitError::Overloaded)
        ));
        drop(held);
        assert_eq!(blocker.join().unwrap().unwrap().result, 1);
        assert_eq!(queued.join().unwrap().unwrap().result, 2);
    }

    #[test]
    fn deadline_header_overrides_default_budget() {
        let req = Request::post("/predictions", "1,2,3").with_header(DEADLINE_HEADER, "250");
        assert_eq!(
            request_budget(&req, Duration::from_secs(2)),
            Duration::from_millis(250)
        );
        let plain = Request::post("/predictions", "1,2,3");
        assert_eq!(
            request_budget(&plain, Duration::from_secs(2)),
            Duration::from_secs(2)
        );
        let junk = Request::post("/predictions", "1,2,3").with_header(DEADLINE_HEADER, "soon");
        assert_eq!(
            request_budget(&junk, Duration::from_secs(2)),
            Duration::from_secs(2)
        );
    }
}
