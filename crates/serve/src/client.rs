//! A blocking keep-alive HTTP client.
//!
//! Used by the load generator's real-time mode and the integration tests
//! (the paper's load generator uses Apache HttpComponents' async client;
//! our real-time driver multiplexes many of these blocking connections
//! across threads instead).

use crate::http::{self, Request, Response};
use bytes::BytesMut;
use etude_control::{BreakerConfig, BreakerState, CircuitBreaker, HedgePolicy, HedgeTrigger};
use etude_faults::{Backoff, Deadline, RetryPolicy};
use etude_obs::trace::span_hash;
use etude_obs::{request_id_hash, ClientAttempt, ClientSpan, TraceCtx, TRACE_HEADER};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Process-wide counter for generated request ids.
static NEXT_AUTO_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Upper bound on a server-suggested `Retry-After` pause. A production
/// server naming an hour-plus pause is either misconfigured or being
/// spoofed; honoring it verbatim would park the client forever (the
/// request deadline clamps it further, but the clamp keeps the
/// arithmetic sane even under absurd header values).
const MAX_RETRY_AFTER_SECS: u64 = 3600;

/// Parses a `Retry-After` header value defensively.
///
/// Accepts only whole non-negative seconds, tolerating surrounding
/// whitespace. Anything else — empty strings, fractional or negative
/// numbers, HTTP-dates, values that overflow `u64` — yields `None` (the
/// client falls back to its own backoff schedule). Parseable but absurd
/// values are clamped to [`MAX_RETRY_AFTER_SECS`].
fn parse_retry_after(value: &str) -> Option<Duration> {
    let trimmed = value.trim();
    // All-digits, explicitly: u64's own parser accepts a leading `+`,
    // which no server emits on purpose.
    if trimmed.is_empty() || !trimmed.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let secs: u64 = trimmed.parse().ok()?;
    Some(Duration::from_secs(secs.min(MAX_RETRY_AFTER_SECS)))
}

fn nanos_since(epoch: Instant) -> u64 {
    epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server's bytes did not parse.
    Protocol(http::HttpError),
    /// No response within the configured timeout.
    Timeout,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Timeout => write!(f, "request timed out"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A persistent connection to one server.
pub struct HttpClient {
    stream: TcpStream,
    buf: BytesMut,
    timeout: Duration,
    /// An exchange on this connection was aborted mid-flight (timeout,
    /// transport error, short read): response framing is no longer
    /// trustworthy. Every subsequent request fails fast with a
    /// `ConnectionReset`-class error instead of risking a late or
    /// truncated response being attributed to the wrong request.
    poisoned: bool,
}

impl HttpClient {
    /// Connects with a default 5 s timeout.
    pub fn connect(addr: SocketAddr) -> Result<HttpClient, ClientError> {
        Self::connect_with_timeout(addr, Duration::from_secs(5))
    }

    /// Connects with an explicit request timeout.
    pub fn connect_with_timeout(
        addr: SocketAddr,
        timeout: Duration,
    ) -> Result<HttpClient, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ClientError::Io)?;
        stream.set_nodelay(true).map_err(ClientError::Io)?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(ClientError::Io)?;
        Ok(HttpClient {
            stream,
            buf: BytesMut::with_capacity(4096),
            timeout,
            poisoned: false,
        })
    }

    /// Changes the per-request timeout.
    pub fn set_timeout(&mut self, timeout: Duration) -> Result<(), ClientError> {
        self.timeout = timeout;
        self.stream
            .set_read_timeout(Some(timeout))
            .map_err(ClientError::Io)
    }

    /// Sends a request and blocks for its response.
    ///
    /// Requests without an `x-request-id` header get a generated one
    /// (`auto-<local port>-<n>`) so server-side stage spans can always be
    /// correlated per request; the server echoes the id back.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        if req.headers.contains_key("x-request-id") {
            return self.send(req);
        }
        let port = self.stream.local_addr().map(|a| a.port()).unwrap_or(0);
        let n = NEXT_AUTO_REQUEST_ID.fetch_add(1, Ordering::Relaxed);
        let mut tagged = req.clone();
        tagged
            .headers
            .insert("x-request-id".into(), format!("auto-{port}-{n}"));
        self.send(&tagged)
    }

    fn send(&mut self, req: &Request) -> Result<Response, ClientError> {
        if self.poisoned {
            // A previous exchange was abandoned mid-flight; its (late,
            // or truncated-short-of-Content-Length) response bytes may
            // still arrive and would parse as *this* request's answer.
            return Err(ClientError::Io(std::io::Error::new(
                ErrorKind::ConnectionReset,
                "connection poisoned by an aborted exchange",
            )));
        }
        match self.exchange(req) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn exchange(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.stream
            .write_all(&req.encode())
            .map_err(ClientError::Io)?;
        let mut chunk = [0u8; 4096];
        loop {
            match http::parse_response(&mut self.buf) {
                Ok(resp) => return Ok(resp),
                Err(http::HttpError::Incomplete) => {}
                Err(e) => return Err(ClientError::Protocol(e)),
            }
            match self.stream.read(&mut chunk) {
                Ok(0) if !self.buf.is_empty() => {
                    // The server promised more (Content-Length) than it
                    // delivered before closing: a short read. This is a
                    // retryable transport failure — never a successful
                    // (truncated) response.
                    return Err(ClientError::Io(std::io::Error::new(
                        ErrorKind::ConnectionReset,
                        format!(
                            "connection closed mid-response ({} partial bytes short of Content-Length)",
                            self.buf.len()
                        ),
                    )));
                }
                Ok(0) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed connection",
                    )))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(ClientError::Timeout)
                }
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }
}

/// The outcome of a resilient request: the final response plus how hard
/// the client had to work for it.
#[derive(Debug)]
pub struct ResilientResponse {
    /// The response that ended the retry loop (2xx/4xx, or the last 5xx
    /// when the budget ran out).
    pub response: Response,
    /// Retries spent on this request (0 = first attempt succeeded).
    pub retries: u32,
    /// Whether the response came from the server's degraded
    /// (popularity-fallback) path.
    pub degraded: bool,
}

/// One upstream of a [`ResilientClient`]: its address, an optional
/// persistent connection, and an optional circuit breaker guarding it.
struct Backend {
    addr: SocketAddr,
    conn: Option<HttpClient>,
    breaker: Option<CircuitBreaker>,
}

/// What one attempt told us about a backend, fed to its breaker.
enum Obs {
    Success,
    Failure(Option<Duration>),
}

/// Result of one hedge leg, sent back over the race channel. A leg that
/// ends with a parseable response returns its connection for reuse.
struct LegDone {
    leg: usize,
    start_nanos: u64,
    duration_nanos: u64,
    result: Result<Response, ClientError>,
    conn: Option<HttpClient>,
}

/// Runs one hedge leg to completion on its own thread.
fn run_leg(
    leg: usize,
    mut conn: HttpClient,
    req: Request,
    epoch: Instant,
    tx: crossbeam::channel::Sender<LegDone>,
) {
    let start_nanos = nanos_since(epoch);
    let result = conn.request(&req);
    let duration_nanos = nanos_since(epoch).saturating_sub(start_nanos);
    let conn = result.is_ok().then_some(conn);
    let _ = tx.send(LegDone {
        leg,
        start_nanos,
        duration_nanos,
        result,
        conn,
    });
}

/// A retrying HTTP client: [`HttpClient`] plus a per-request deadline
/// budget, bounded exponential backoff with seeded jitter, and
/// `Retry-After` honoring.
///
/// Retryable outcomes are transport errors (the connection is reopened),
/// timeouts, truncated/unparseable responses (mid-response resets), 5xx
/// statuses and 429 admission refusals (an over-limit backend names its
/// own pause via `Retry-After`, and the next attempt rotates to another
/// backend); other 2xx/4xx end the loop immediately. A refused connection
/// — the signature of a pod restart window, when nothing is listening on
/// the port yet — is retried on a short pace bounded only by the request
/// deadline, not the retry budget, so a client riding out a rolling
/// restart reconnects the moment the replacement pod binds. Backoff
/// jitter is drawn from a per-request RNG seeded by `client seed ^
/// request-id hash`, so a rerun with the same seed and ids retries on a
/// bit-identical schedule.
///
/// A client may hold several backends ([`Self::new_multi`]). Failed
/// attempts rotate to the next one, [`Self::with_breakers`] puts a
/// circuit breaker in front of each (an open breaker takes its backend
/// out of rotation until the open interval lapses), and
/// [`Self::with_hedging`] arms tail-latency hedging: when the primary
/// attempt is silent past the observed latency quantile, one backup
/// attempt races it on the next backend and the first response wins.
pub struct ResilientClient {
    backends: Vec<Backend>,
    current: usize,
    policy: RetryPolicy,
    attempt_timeout: Duration,
    seed: u64,
    total_retries: u64,
    reconnects: u64,
    /// Epoch for breaker clocks: breakers reason in `Duration` since
    /// client creation, never in wall-clock instants.
    started: Instant,
    hedge: Option<HedgeTrigger>,
}

/// Floor on the reconnect pace while a backend's port is refusing
/// connections (a restart window): fast enough to catch the replacement
/// pod promptly, slow enough not to SYN-flood the host.
const REFUSED_PACE: Duration = Duration::from_millis(10);

impl ResilientClient {
    /// Creates a client for `addr`. Nothing is connected until the first
    /// request (and reconnection after failures is automatic).
    pub fn new(addr: SocketAddr, policy: RetryPolicy, seed: u64) -> ResilientClient {
        Self::new_multi(vec![addr], policy, seed)
    }

    /// Creates a client over several equivalent backends. Attempts start
    /// at the most recently healthy backend and rotate on failure.
    pub fn new_multi(addrs: Vec<SocketAddr>, policy: RetryPolicy, seed: u64) -> ResilientClient {
        assert!(!addrs.is_empty(), "a client needs at least one backend");
        ResilientClient {
            backends: addrs
                .into_iter()
                .map(|addr| Backend {
                    addr,
                    conn: None,
                    breaker: None,
                })
                .collect(),
            current: 0,
            policy,
            attempt_timeout: Duration::from_secs(5),
            seed,
            total_retries: 0,
            reconnects: 0,
            started: Instant::now(),
            hedge: None,
        }
    }

    /// Overrides the per-attempt timeout (default 5 s). Each attempt is
    /// additionally clamped to what is left of the request budget.
    pub fn with_attempt_timeout(mut self, timeout: Duration) -> Self {
        self.attempt_timeout = timeout;
        self
    }

    /// Puts a circuit breaker in front of every backend. While a breaker
    /// is open its backend is skipped in rotation; when every breaker is
    /// open the client fails open and dials anyway (a guess beats a
    /// guaranteed error).
    pub fn with_breakers(mut self, config: BreakerConfig) -> Self {
        for b in &mut self.backends {
            b.breaker = Some(CircuitBreaker::new(config));
        }
        self
    }

    /// Arms tail-latency hedging. Only effective with two or more
    /// backends — a hedge against the same sick backend buys nothing.
    pub fn with_hedging(mut self, policy: HedgePolicy) -> Self {
        self.hedge = Some(HedgeTrigger::new(policy));
        self
    }

    /// Retries spent across every request on this client.
    pub fn total_retries(&self) -> u64 {
        self.total_retries
    }

    /// Connections opened: the initial connect plus every reopen after a
    /// transport failure (hedge legs count one each).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Number of configured backends.
    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }

    /// The breaker state of backend `idx`, when breakers are configured.
    pub fn breaker_state(&self, idx: usize) -> Option<BreakerState> {
        self.backends[idx].breaker.as_ref().map(|b| b.state())
    }

    /// (hedges launched, hedges won by the backup), when hedging is
    /// armed.
    pub fn hedge_stats(&self) -> Option<(u64, u64)> {
        self.hedge.as_ref().map(|h| h.hedge_stats())
    }

    /// Feeds one attempt outcome to backend `idx`'s breaker, if any.
    fn observe(&mut self, idx: usize, obs: Obs) {
        let now = self.started.elapsed();
        if let Some(b) = self.backends[idx].breaker.as_mut() {
            match obs {
                Obs::Success => b.record_success(),
                Obs::Failure(after) => b.record_failure(now, after),
            }
        }
    }

    /// Picks the backend for the next attempt: the first from `current`
    /// whose breaker admits traffic. When every breaker is open the
    /// client fails open on `current`.
    fn pick(&mut self, now: Duration) -> usize {
        let n = self.backends.len();
        for off in 0..n {
            let idx = (self.current + off) % n;
            let admitted = match self.backends[idx].breaker.as_mut() {
                None => true,
                Some(b) => b.allow(now),
            };
            if admitted {
                self.current = idx;
                return idx;
            }
        }
        self.current % n
    }

    /// The hedge backup for `primary`: the next distinct backend whose
    /// breaker admits traffic (or simply the next one, failing open).
    fn next_allowed(&mut self, primary: usize, now: Duration) -> usize {
        let n = self.backends.len();
        for off in 1..n {
            let idx = (primary + off) % n;
            let admitted = match self.backends[idx].breaker.as_mut() {
                None => true,
                Some(b) => b.allow(now),
            };
            if admitted {
                return idx;
            }
        }
        (primary + 1) % n
    }

    /// Sends `req`, retrying under `budget`. The request must carry an
    /// `x-request-id` header (the retry schedule is keyed by it); one is
    /// generated when missing, like [`HttpClient::request`].
    pub fn request_within(
        &mut self,
        req: &Request,
        budget: Duration,
    ) -> Result<ResilientResponse, ClientError> {
        self.request_impl(req, budget, None).0
    }

    /// [`Self::request_within`] with distributed tracing: every attempt
    /// carries an [`TRACE_HEADER`] context (trace id = the request-id
    /// hash; each retry is a fresh child span, so retries show up as
    /// sibling attempts in the assembled trace tree), and the returned
    /// [`ClientSpan`] records the whole retry loop with per-attempt
    /// timings relative to `epoch` (the run's start instant — all spans
    /// of one run must share it).
    pub fn request_traced(
        &mut self,
        req: &Request,
        budget: Duration,
        epoch: Instant,
    ) -> (Result<ResilientResponse, ClientError>, ClientSpan) {
        let (out, span) = self.request_impl(req, budget, Some(epoch));
        (out, span.expect("tracing was requested"))
    }

    fn request_impl(
        &mut self,
        req: &Request,
        budget: Duration,
        epoch: Option<Instant>,
    ) -> (Result<ResilientResponse, ClientError>, Option<ClientSpan>) {
        let mut tagged;
        let req = if req.headers.contains_key("x-request-id") {
            req
        } else {
            tagged = req.clone();
            let n = NEXT_AUTO_REQUEST_ID.fetch_add(1, Ordering::Relaxed);
            tagged
                .headers
                .insert("x-request-id".into(), format!("auto-r-{n}"));
            &tagged
        };
        let rid = req.headers.get("x-request-id").expect("tagged above");
        let trace_id = request_id_hash(rid);
        let root = TraceCtx::root(trace_id);
        let mut span = epoch.map(|e| ClientSpan {
            trace_id,
            span_id: root.span_id,
            start_nanos: nanos_since(e),
            duration_nanos: 0,
            ok: false,
            attempts: Vec::new(),
        });
        let deadline = Deadline::after(budget);
        let mut backoff = Backoff::new(self.policy.clone(), self.seed ^ trace_id);
        let mut retries = 0u32;
        let mut attempt_index = 0u64;
        let result = loop {
            let now = self.started.elapsed();
            let primary = self.pick(now);
            let hedge_delay = if self.backends.len() >= 2 {
                self.hedge.as_ref().and_then(|h| h.delay())
            } else {
                None
            };
            let (outcome, winner) = match hedge_delay {
                Some(delay) => {
                    let backup = self.next_allowed(primary, now);
                    self.hedged_attempt(
                        req,
                        &deadline,
                        primary,
                        backup,
                        delay,
                        epoch,
                        trace_id,
                        root.span_id,
                        &mut attempt_index,
                        span.as_mut(),
                    )
                }
                None => {
                    let sent = Instant::now();
                    let out = match epoch {
                        Some(e) => {
                            // Each attempt is its own span: the pod's stage
                            // records parent to it, so retries reassemble as
                            // sibling subtrees rather than one merged blob.
                            let attempt_span = span_hash(trace_id, root.span_id, attempt_index);
                            let ctx = TraceCtx {
                                trace_id,
                                span_id: attempt_span,
                                hop: 1,
                            };
                            let mut traced = req.clone();
                            traced.headers.insert(TRACE_HEADER.into(), ctx.encode());
                            let start = nanos_since(e);
                            let out = self.attempt_on(primary, &traced, &deadline);
                            let status = match &out {
                                Ok(resp) => Some(resp.status),
                                Err(_) => None,
                            };
                            if let Some(s) = span.as_mut() {
                                s.attempts.push(ClientAttempt {
                                    span_id: attempt_span,
                                    start_nanos: start,
                                    duration_nanos: nanos_since(e).saturating_sub(start),
                                    status,
                                });
                            }
                            out
                        }
                        None => self.attempt_on(primary, req, &deadline),
                    };
                    attempt_index += 1;
                    if out.is_ok() {
                        if let Some(h) = self.hedge.as_mut() {
                            h.record(sent.elapsed());
                        }
                    }
                    (out, primary)
                }
            };
            let (retry_after, last_err) = match outcome {
                Ok(resp) if resp.status < 500 && resp.status != 429 => {
                    self.observe(winner, Obs::Success);
                    // Stick with whoever answered: if a hedge backup won,
                    // it becomes the preferred backend.
                    self.current = winner;
                    let degraded = resp
                        .headers
                        .contains_key(crate::rustserver::DEGRADED_HEADER);
                    break Ok(ResilientResponse {
                        response: resp,
                        retries,
                        degraded,
                    });
                }
                Ok(resp) => {
                    // 5xx or a 429 admission refusal: retryable; the
                    // server may name its own pause.
                    let after = resp
                        .headers
                        .get("retry-after")
                        .and_then(|v| parse_retry_after(v));
                    self.observe(winner, Obs::Failure(after));
                    self.current = (winner + 1) % self.backends.len();
                    (after, Err(resp))
                }
                Err(e) => {
                    // Transport failure: the connection state is unknown
                    // (a response could still be in flight), start fresh.
                    self.backends[winner].conn = None;
                    self.observe(winner, Obs::Failure(None));
                    self.current = (winner + 1) % self.backends.len();
                    let refused = matches!(
                        &e,
                        ClientError::Io(io) if io.kind() == ErrorKind::ConnectionRefused
                    );
                    if refused && !deadline.expired() {
                        // Restart window: nothing is listening on the port
                        // yet. Pace by the deadline, not the retry budget —
                        // refused connects return instantly, so a rolling
                        // restart would burn `max_retries` in microseconds
                        // and surface as a terminal error mid-restart.
                        std::thread::sleep(deadline.clamp(self.policy.base.max(REFUSED_PACE)));
                        retries += 1;
                        self.total_retries += 1;
                        continue;
                    }
                    (None, Ok(e))
                }
            };
            let Some(mut delay) = backoff.next_delay_within(&deadline) else {
                // Budget exhausted: surface the terminal outcome.
                break match last_err {
                    Err(resp) => Ok(ResilientResponse {
                        response: resp,
                        retries,
                        degraded: false,
                    }),
                    Ok(e) => Err(e),
                };
            };
            if let Some(after) = retry_after {
                delay = delay.max(deadline.clamp(after));
            }
            std::thread::sleep(delay);
            retries += 1;
            self.total_retries += 1;
        };
        if let (Some(e), Some(s)) = (epoch, span.as_mut()) {
            s.duration_nanos = nanos_since(e).saturating_sub(s.start_nanos);
            s.ok = matches!(&result, Ok(r) if r.response.status < 500);
        }
        (result, span)
    }

    /// One attempt against backend `idx`: (re)connect if needed and
    /// send, with the read timeout clamped to the remaining budget.
    fn attempt_on(
        &mut self,
        idx: usize,
        req: &Request,
        deadline: &Deadline,
    ) -> Result<Response, ClientError> {
        let timeout = deadline.clamp(self.attempt_timeout);
        if timeout.is_zero() {
            return Err(ClientError::Timeout);
        }
        if self.backends[idx].conn.is_none() {
            self.reconnects += 1;
            self.backends[idx].conn = Some(HttpClient::connect_with_timeout(
                self.backends[idx].addr,
                timeout,
            )?);
        }
        let conn = self.backends[idx].conn.as_mut().expect("connected above");
        conn.set_timeout(timeout)?;
        conn.request(req)
    }

    /// Takes backend `idx`'s connection (dialling if needed) with its
    /// read timeout set, for a hedge leg thread to own.
    fn lease(&mut self, idx: usize, timeout: Duration) -> Result<HttpClient, ClientError> {
        if self.backends[idx].conn.is_none() {
            self.reconnects += 1;
            self.backends[idx].conn = Some(HttpClient::connect_with_timeout(
                self.backends[idx].addr,
                timeout,
            )?);
        }
        let mut conn = self.backends[idx].conn.take().expect("ensured above");
        conn.set_timeout(timeout)?;
        Ok(conn)
    }

    /// One hedged attempt: the primary leg races a backup leg launched
    /// on `backup` after `delay` of silence; the first parseable
    /// response wins and the loser's socket is shut down. Returns the
    /// winning outcome and the backend it came from. Losing-leg breaker
    /// outcomes are recorded here; the winner's is left to the caller
    /// (which also parses `Retry-After` and handles rotation).
    #[allow(clippy::too_many_arguments)]
    fn hedged_attempt(
        &mut self,
        req: &Request,
        deadline: &Deadline,
        primary: usize,
        backup: usize,
        delay: Duration,
        epoch: Option<Instant>,
        trace_id: u64,
        root_span: u64,
        attempt_index: &mut u64,
        mut span: Option<&mut ClientSpan>,
    ) -> (Result<Response, ClientError>, usize) {
        let timeout = deadline.clamp(self.attempt_timeout);
        if timeout.is_zero() {
            return (Err(ClientError::Timeout), primary);
        }
        let timing = epoch.unwrap_or(self.started);
        let leg_req = |index: u64| -> (Request, u64) {
            if epoch.is_some() {
                let sid = span_hash(trace_id, root_span, index);
                let mut r = req.clone();
                r.headers.insert(
                    TRACE_HEADER.into(),
                    TraceCtx {
                        trace_id,
                        span_id: sid,
                        hop: 1,
                    }
                    .encode(),
                );
                (r, sid)
            } else {
                (req.clone(), 0)
            }
        };
        let (preq, pspan) = leg_req(*attempt_index);
        let (breq, bspan) = leg_req(*attempt_index + 1);
        *attempt_index += 1;

        // The primary leg's connection is prepared on this thread (so
        // connect failures keep their refused/reset semantics for the
        // caller) and moved into the leg thread.
        let pconn = match self.lease(primary, timeout) {
            Ok(c) => c,
            Err(e) => {
                if let Some(s) = span.as_deref_mut() {
                    s.attempts.push(ClientAttempt {
                        span_id: pspan,
                        start_nanos: nanos_since(timing),
                        duration_nanos: 0,
                        status: None,
                    });
                }
                return (Err(e), primary);
            }
        };
        let pcancel = pconn.stream.try_clone().ok();
        let plaunch = nanos_since(timing);
        let (tx, rx) = crossbeam::channel::bounded::<LegDone>(2);
        {
            let tx = tx.clone();
            std::thread::spawn(move || run_leg(0, pconn, preq, timing, tx));
        }

        let mut launched = 1usize;
        let mut bcancel = None;
        let mut blaunch = 0u64;
        let mut reports: Vec<LegDone> = Vec::new();
        match rx.recv_timeout(deadline.clamp(delay)) {
            Ok(done) => reports.push(done),
            Err(_) => {
                // The primary is past the hedge threshold: race a backup
                // attempt against the next backend.
                match self.lease(backup, deadline.clamp(self.attempt_timeout)) {
                    Ok(bconn) => {
                        bcancel = bconn.stream.try_clone().ok();
                        blaunch = nanos_since(timing);
                        let tx = tx.clone();
                        std::thread::spawn(move || run_leg(1, bconn, breq, timing, tx));
                        *attempt_index += 1;
                        launched = 2;
                    }
                    Err(_) => self.observe(backup, Obs::Failure(None)),
                }
            }
        }
        // First parseable response wins; a leg that failed waits for the
        // other. Legs carry their own read timeouts, so the grace here
        // only covers scheduling slack.
        while !reports.iter().any(|r| r.result.is_ok()) && reports.len() < launched {
            match rx.recv_timeout(timeout + Duration::from_millis(250)) {
                Ok(done) => reports.push(done),
                Err(_) => break,
            }
        }

        // Cancel whichever leg has not reported: shutting its socket
        // down unblocks the leg thread immediately.
        for (leg, cancel) in [(0usize, &pcancel), (1, &bcancel)] {
            if leg < launched && !reports.iter().any(|r| r.leg == leg) {
                if let Some(stream) = cancel {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                }
            }
        }

        // Attempts appear in the trace in launch order; a cancelled leg
        // is an unanswered sibling attempt.
        if let Some(s) = span {
            let now_nanos = nanos_since(timing);
            for leg in 0..launched {
                let (sid, start) = if leg == 0 {
                    (pspan, plaunch)
                } else {
                    (bspan, blaunch)
                };
                match reports.iter().find(|r| r.leg == leg) {
                    Some(r) => s.attempts.push(ClientAttempt {
                        span_id: sid,
                        start_nanos: r.start_nanos,
                        duration_nanos: r.duration_nanos,
                        status: match &r.result {
                            Ok(resp) => Some(resp.status),
                            Err(_) => None,
                        },
                    }),
                    None => s.attempts.push(ClientAttempt {
                        span_id: sid,
                        start_nanos: start,
                        duration_nanos: now_nanos.saturating_sub(start),
                        status: None,
                    }),
                }
            }
        }

        if reports.is_empty() {
            if launched == 2 {
                if let Some(h) = self.hedge.as_mut() {
                    h.note_hedge(false);
                }
            }
            return (Err(ClientError::Timeout), primary);
        }

        let backend_of = |leg: usize| if leg == 0 { primary } else { backup };
        let win = reports.iter().position(|r| r.result.is_ok()).unwrap_or(0);
        let winner_leg = reports[win].leg;
        let mut winner_result = None;
        let mut winner_duration = Duration::ZERO;
        for r in reports {
            let idx = backend_of(r.leg);
            // A connection that survived its leg goes back for reuse.
            if let Some(conn) = r.conn {
                self.backends[idx].conn = Some(conn);
            }
            if r.leg == winner_leg {
                winner_duration = Duration::from_nanos(r.duration_nanos);
                winner_result = Some(r.result);
            } else {
                // The losing-but-reported leg still teaches its breaker.
                match &r.result {
                    Ok(resp) if resp.status < 500 && resp.status != 429 => {
                        self.observe(idx, Obs::Success)
                    }
                    Ok(resp) => {
                        let after = resp
                            .headers
                            .get("retry-after")
                            .and_then(|v| parse_retry_after(v));
                        self.observe(idx, Obs::Failure(after));
                    }
                    Err(_) => self.observe(idx, Obs::Failure(None)),
                }
            }
        }
        let result = winner_result.expect("winner taken from reports");
        if let Some(h) = self.hedge.as_mut() {
            if result.is_ok() {
                h.record(winner_duration);
            }
            if launched == 2 {
                h.note_hedge(winner_leg == 1);
            }
        }
        (result, backend_of(winner_leg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;
    use crate::rustserver::{start, Handler, ServerConfig};
    use std::sync::Arc;

    fn slow_handler(delay: Duration) -> Handler {
        Arc::new(move |req| {
            if req.method == Method::Get && req.path == "/slow" {
                std::thread::sleep(delay);
            }
            crate::http::Response::ok("done")
        })
    }

    #[test]
    fn timeouts_are_reported() {
        let server = start(
            ServerConfig::default(),
            slow_handler(Duration::from_millis(300)),
        )
        .unwrap();
        let mut client =
            HttpClient::connect_with_timeout(server.addr(), Duration::from_millis(30)).unwrap();
        match client.request(&Request::get("/slow")) {
            Err(ClientError::Timeout) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        server.shutdown();
    }

    /// A raw server that answers its first accept with a truncated
    /// response — `Content-Length: 100` but only half the body — then
    /// closes, and serves every later accept a full, correct response.
    fn short_read_server() -> (SocketAddr, std::thread::JoinHandle<u64>) {
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut accepts = 0u64;
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                accepts += 1;
                // Drain the request head (one read is enough for the
                // tiny GETs the test sends).
                let mut sink = [0u8; 1024];
                let _ = stream.read(&mut sink);
                if accepts == 1 {
                    let head = b"HTTP/1.1 200 OK\r\ncontent-length: 100\r\n\r\n";
                    let _ = stream.write_all(head);
                    let _ = stream.write_all(&[b'x'; 50]);
                    // Close 50 bytes short of the promised length.
                    drop(stream);
                    continue;
                }
                let body = b"full response";
                let head = format!("HTTP/1.1 200 OK\r\ncontent-length: {}\r\n\r\n", body.len());
                let _ = stream.write_all(head.as_bytes());
                let _ = stream.write_all(body);
                break; // test over after the first good exchange
            }
            accepts
        });
        (addr, handle)
    }

    #[test]
    fn short_reads_are_connection_reset_errors_not_truncated_successes() {
        let (addr, server) = short_read_server();
        let mut client = HttpClient::connect(addr).unwrap();
        match client.request(&Request::get("/rec")) {
            Err(ClientError::Io(e)) => {
                assert_eq!(
                    e.kind(),
                    ErrorKind::ConnectionReset,
                    "short read must be ConnReset-class, got {e:?}"
                );
            }
            other => panic!("truncated body surfaced as {other:?}"),
        }
        // The aborted exchange poisons the connection: the next request
        // on it fails fast instead of parsing leftovers.
        match client.request(&Request::get("/rec")) {
            Err(ClientError::Io(e)) => assert_eq!(e.kind(), ErrorKind::ConnectionReset),
            other => panic!("poisoned connection served {other:?}"),
        }
        // A fresh connection closes the loop so the server thread exits.
        let mut fresh = HttpClient::connect(addr).unwrap();
        let resp = fresh.request(&Request::get("/rec")).unwrap();
        assert_eq!(&resp.body[..], b"full response");
        assert_eq!(server.join().unwrap(), 2);
    }

    #[test]
    fn resilient_client_retries_short_reads_to_a_full_response() {
        let (addr, server) = short_read_server();
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            max_retries: 5,
            jitter: 0.5,
        };
        let mut client = ResilientClient::new(addr, policy, 11);
        let out = client
            .request_within(&Request::get("/rec"), Duration::from_secs(5))
            .unwrap();
        assert_eq!(out.response.status, 200);
        assert_eq!(&out.response.body[..], b"full response");
        assert!(out.retries >= 1, "the short read must have cost a retry");
        assert_eq!(
            server.join().unwrap(),
            2,
            "retry must use a fresh connection"
        );
    }

    #[test]
    fn missing_request_ids_are_generated_and_unique() {
        // Echo the request id back so the test can see what went on the
        // wire.
        let handler: Handler = Arc::new(|req| {
            let id = req.headers.get("x-request-id").cloned().unwrap_or_default();
            crate::http::Response::ok(id)
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let a = client.request(&Request::get("/")).unwrap();
        let b = client.request(&Request::get("/")).unwrap();
        assert!(a.body.starts_with(b"auto-"), "{:?}", a.body);
        assert_ne!(a.body, b.body, "ids must be unique per request");
        // An explicit id is passed through untouched.
        let mut req = Request::get("/");
        req.headers.insert("x-request-id".into(), "mine".into());
        let c = client.request(&req).unwrap();
        assert_eq!(&c.body[..], b"mine");
        server.shutdown();
    }

    #[test]
    fn resilient_client_retries_transient_errors_to_success() {
        use std::sync::atomic::AtomicU64;

        let calls = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&calls);
        let handler: Handler = Arc::new(move |_| {
            if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                crate::http::Response::error(500, "transient")
            } else {
                crate::http::Response::ok("finally")
            }
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            max_retries: 5,
            jitter: 0.5,
        };
        let mut client = ResilientClient::new(server.addr(), policy, 7);
        let out = client
            .request_within(&Request::get("/flaky"), Duration::from_secs(5))
            .unwrap();
        assert_eq!(out.response.status, 200);
        assert_eq!(out.retries, 2, "two 500s before the 200");
        assert!(!out.degraded);
        assert_eq!(client.total_retries(), 2);
        server.shutdown();
    }

    #[test]
    fn resilient_client_gives_up_inside_the_budget() {
        let handler: Handler = Arc::new(|_| crate::http::Response::error(500, "always"));
        let server = start(ServerConfig::default(), handler).unwrap();
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            max_retries: 3,
            jitter: 0.0,
        };
        let mut client = ResilientClient::new(server.addr(), policy, 1);
        let started = std::time::Instant::now();
        let out = client
            .request_within(&Request::get("/dead"), Duration::from_millis(500))
            .unwrap();
        assert_eq!(out.response.status, 500, "terminal 5xx is surfaced");
        assert_eq!(out.retries, 3, "full retry budget spent");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "bounded by budget, not hung"
        );
        server.shutdown();
    }

    #[test]
    fn resilient_client_reconnects_through_connection_resets() {
        use crate::rustserver::RESET_MARKER;
        use std::sync::atomic::AtomicU64;

        let calls = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&calls);
        let handler: Handler = Arc::new(move |_| {
            let resp = crate::http::Response::ok("payload");
            if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                resp.with_header(RESET_MARKER, "1".to_string())
            } else {
                resp
            }
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            max_retries: 6,
            jitter: 0.5,
        };
        let mut client = ResilientClient::new(server.addr(), policy, 11)
            .with_attempt_timeout(Duration::from_millis(200));
        let out = client
            .request_within(&Request::get("/resetting"), Duration::from_secs(10))
            .unwrap();
        assert_eq!(out.response.status, 200);
        assert_eq!(out.retries, 2, "two resets before the clean response");
        assert!(
            client.reconnects() >= 3,
            "initial connect plus one reopen per reset, got {}",
            client.reconnects()
        );
        server.shutdown();
    }

    #[test]
    fn resilient_client_flags_degraded_responses() {
        use crate::rustserver::DEGRADED_HEADER;

        let handler: Handler = Arc::new(|_| {
            crate::http::Response::ok("0:1,1:0.5").with_header(DEGRADED_HEADER, "1".to_string())
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let mut client = ResilientClient::new(server.addr(), RetryPolicy::none(), 0);
        let out = client
            .request_within(&Request::get("/degraded"), Duration::from_secs(1))
            .unwrap();
        assert_eq!(out.response.status, 200);
        assert!(out.degraded);
        assert_eq!(out.retries, 0);
        server.shutdown();
    }

    #[test]
    fn retry_after_parsing_tolerates_hostile_values() {
        // Plain seconds, with or without surrounding whitespace.
        assert_eq!(parse_retry_after("1"), Some(Duration::from_secs(1)));
        assert_eq!(parse_retry_after(" 1 "), Some(Duration::from_secs(1)));
        assert_eq!(parse_retry_after("\t30\t"), Some(Duration::from_secs(30)));
        assert_eq!(parse_retry_after("0"), Some(Duration::ZERO));
        // Absurd-but-parseable values clamp instead of parking the
        // client for a week.
        assert_eq!(
            parse_retry_after("604800"),
            Some(Duration::from_secs(MAX_RETRY_AFTER_SECS))
        );
        assert_eq!(
            parse_retry_after("18446744073709551615"),
            Some(Duration::from_secs(MAX_RETRY_AFTER_SECS))
        );
        // Everything unparseable falls back to client backoff.
        assert_eq!(parse_retry_after(""), None);
        assert_eq!(parse_retry_after("   "), None);
        assert_eq!(parse_retry_after("soon"), None);
        assert_eq!(parse_retry_after("1.5"), None);
        assert_eq!(parse_retry_after("-2"), None);
        assert_eq!(parse_retry_after("+3"), None, "signs are not seconds");
        assert_eq!(
            parse_retry_after("99999999999999999999999"),
            None,
            "overflow"
        );
        assert_eq!(parse_retry_after("Wed, 21 Oct 2015 07:28:00 GMT"), None);
    }

    #[test]
    fn garbage_retry_after_falls_back_to_client_backoff() {
        use std::sync::atomic::AtomicU64;

        // Unparseable Retry-After values must not derail the retry loop:
        // the client converges on its own backoff schedule.
        let calls = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&calls);
        let handler: Handler = Arc::new(move |_| match seen.fetch_add(1, Ordering::SeqCst) {
            0 => crate::http::Response::error(503, "busy")
                .with_header("retry-after", "garbage".to_string()),
            1 => crate::http::Response::error(503, "busy")
                .with_header("retry-after", "Wed, 21 Oct 2015 07:28:00 GMT".to_string()),
            _ => crate::http::Response::ok("done"),
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            max_retries: 5,
            jitter: 0.0,
        };
        let mut client = ResilientClient::new(server.addr(), policy, 3);
        let out = client
            .request_within(&Request::get("/busy"), Duration::from_secs(5))
            .unwrap();
        assert_eq!(out.response.status, 200);
        assert_eq!(out.retries, 2);
        server.shutdown();
    }

    #[test]
    fn absurd_retry_after_is_clamped_to_the_deadline_budget() {
        // A server demanding a 999999999-second pause: the wait is
        // clamped to what is left of the request budget, so the call
        // returns (with the terminal outcome) instead of parking the
        // client for three decades.
        let handler: Handler = Arc::new(|_| {
            crate::http::Response::error(503, "busy")
                .with_header("retry-after", "999999999".to_string())
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            max_retries: 5,
            jitter: 0.0,
        };
        let mut client = ResilientClient::new(server.addr(), policy, 3);
        let started = std::time::Instant::now();
        let out = client.request_within(&Request::get("/busy"), Duration::from_millis(300));
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "clamped to the deadline, not the header value"
        );
        // Budget exhausted mid-loop: either the last 5xx or a timeout on
        // the final zero-budget attempt — never a hang.
        match out {
            Ok(resp) => assert_eq!(resp.response.status, 503),
            Err(ClientError::Timeout) => {}
            Err(other) => panic!("unexpected terminal error: {other}"),
        }
        server.shutdown();
    }

    #[test]
    fn traced_requests_record_retries_as_sibling_attempts() {
        use parking_lot::Mutex;
        use std::sync::atomic::AtomicU64;

        // 500 twice, then succeed — while capturing the trace contexts
        // that actually crossed the wire.
        let calls = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&calls);
        let wire_ctxs: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let wire = Arc::clone(&wire_ctxs);
        let handler: Handler = Arc::new(move |req| {
            if let Some(ctx) = req.headers.get(TRACE_HEADER) {
                wire.lock().push(ctx.clone());
            }
            if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                crate::http::Response::error(500, "transient")
            } else {
                crate::http::Response::ok("finally")
            }
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            max_retries: 5,
            jitter: 0.5,
        };
        let mut client = ResilientClient::new(server.addr(), policy, 7);
        let epoch = Instant::now();
        let mut req = Request::get("/flaky");
        req.headers.insert("x-request-id".into(), "traced-1".into());
        let (out, span) = client.request_traced(&req, Duration::from_secs(5), epoch);
        let out = out.unwrap();
        assert_eq!(out.response.status, 200);
        assert_eq!(out.retries, 2);

        // The span reconstructs the whole retry loop.
        assert_eq!(span.trace_id, request_id_hash("traced-1"));
        assert!(span.ok);
        assert_eq!(span.attempts.len(), 3, "two failures + the success");
        assert_eq!(span.attempts[0].status, Some(500));
        assert_eq!(span.attempts[1].status, Some(500));
        assert_eq!(span.attempts[2].status, Some(200));
        // Attempts are distinct sibling spans of the request root...
        let root = TraceCtx::root(span.trace_id);
        assert_eq!(span.span_id, root.span_id);
        for (k, a) in span.attempts.iter().enumerate() {
            assert_eq!(a.span_id, span_hash(span.trace_id, root.span_id, k as u64));
            assert!(a.start_nanos >= span.start_nanos);
            assert!(
                a.start_nanos + a.duration_nanos <= span.start_nanos + span.duration_nanos,
                "attempt {k} exceeds the enclosing span"
            );
        }
        // ...and exactly those contexts crossed the wire, in order.
        let on_wire = wire_ctxs.lock();
        assert_eq!(on_wire.len(), 3);
        for (k, enc) in on_wire.iter().enumerate() {
            let ctx = TraceCtx::parse(enc).expect("well-formed header");
            assert_eq!(ctx.trace_id, span.trace_id);
            assert_eq!(ctx.span_id, span.attempts[k].span_id);
            assert_eq!(ctx.hop, 1);
        }
        server.shutdown();
    }

    #[test]
    fn traced_transport_failures_have_status_none() {
        use crate::rustserver::RESET_MARKER;
        use std::sync::atomic::AtomicU64;

        let calls = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&calls);
        let handler: Handler = Arc::new(move |_| {
            let resp = crate::http::Response::ok("payload");
            if seen.fetch_add(1, Ordering::SeqCst) < 1 {
                resp.with_header(RESET_MARKER, "1".to_string())
            } else {
                resp
            }
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            max_retries: 4,
            jitter: 0.0,
        };
        let mut client = ResilientClient::new(server.addr(), policy, 13)
            .with_attempt_timeout(Duration::from_millis(200));
        let (out, span) = client.request_traced(
            &Request::get("/reset"),
            Duration::from_secs(5),
            Instant::now(),
        );
        assert_eq!(out.unwrap().response.status, 200);
        assert_eq!(span.attempts.len(), 2);
        assert_eq!(span.attempts[0].status, None, "reset mid-response");
        assert_eq!(span.attempts[1].status, Some(200));
        assert!(span.ok);
        server.shutdown();
    }

    #[test]
    fn fast_requests_succeed_within_timeout() {
        let server = start(ServerConfig::default(), slow_handler(Duration::ZERO)).unwrap();
        let mut client =
            HttpClient::connect_with_timeout(server.addr(), Duration::from_secs(1)).unwrap();
        let resp = client.request(&Request::get("/fast")).unwrap();
        assert_eq!(resp.status, 200);
        server.shutdown();
    }

    /// An address that is currently refusing connections (bound, then
    /// released).
    fn vacant_addr() -> std::net::SocketAddr {
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        listener.local_addr().unwrap()
    }

    #[test]
    fn connection_refused_during_a_restart_window_is_ridden_out() {
        use crate::rustserver::start_on;

        // A pod restart window: nothing listens on the port for ~300 ms,
        // then the replacement binds. The old client burned its whole
        // `max_retries` budget in microseconds of instant refusals and
        // surfaced a terminal error; the refused fast-path paces on the
        // deadline instead.
        let addr = vacant_addr();
        let replacement = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            start_on(addr, ServerConfig::default(), slow_handler(Duration::ZERO)).unwrap()
        });
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            max_retries: 2, // far fewer retries than the window would need
            jitter: 0.0,
        };
        let mut client = ResilientClient::new(addr, policy, 21);
        let started = std::time::Instant::now();
        let out = client
            .request_within(&Request::get("/fast"), Duration::from_secs(5))
            .unwrap();
        assert_eq!(out.response.status, 200);
        assert!(
            started.elapsed() >= Duration::from_millis(250),
            "the client waited out the restart window"
        );
        assert!(
            out.retries > 2,
            "refused reconnects are paced by the deadline, not max_retries (2): {}",
            out.retries
        );
        replacement.join().unwrap().shutdown();
    }

    #[test]
    fn refused_connections_still_fail_once_the_deadline_expires() {
        // Nothing ever binds: the fast-path must terminate at the
        // deadline with a transport error, not spin forever.
        let addr = vacant_addr();
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            max_retries: 2,
            jitter: 0.0,
        };
        let mut client = ResilientClient::new(addr, policy, 22);
        let started = std::time::Instant::now();
        let out = client.request_within(&Request::get("/gone"), Duration::from_millis(300));
        assert!(out.is_err(), "no server ever came back");
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "bounded by the deadline"
        );
    }

    #[test]
    fn open_breaker_diverts_traffic_to_a_healthy_backend() {
        use etude_control::BreakerState;

        let sick: Handler = Arc::new(|_| crate::http::Response::error(500, "sick"));
        let healthy: Handler = Arc::new(|_| crate::http::Response::ok("fine"));
        let bad = start(ServerConfig::default(), sick).unwrap();
        let good = start(ServerConfig::default(), healthy).unwrap();
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            max_retries: 6,
            jitter: 0.0,
        };
        let mut client = ResilientClient::new_multi(vec![bad.addr(), good.addr()], policy, 9)
            .with_breakers(BreakerConfig {
                failure_threshold: 1,
                open_for: Duration::from_secs(60),
                half_open_successes: 1,
            });
        // The first request eats one 500 from the sick backend — tripping
        // its breaker — then fails over to the healthy one.
        let out = client
            .request_within(&Request::get("/a"), Duration::from_secs(5))
            .unwrap();
        assert_eq!(out.response.status, 200);
        assert_eq!(out.retries, 1, "one 500 before the failover");
        assert_eq!(client.breaker_state(0), Some(BreakerState::Open));
        assert_eq!(client.breaker_state(1), Some(BreakerState::Closed));
        // While the breaker is open, requests go straight to the healthy
        // backend without ever dialling the sick one.
        for _ in 0..3 {
            let out = client
                .request_within(&Request::get("/b"), Duration::from_secs(5))
                .unwrap();
            assert_eq!(out.response.status, 200);
            assert_eq!(out.retries, 0, "open breaker skipped without an attempt");
        }
        assert_eq!(client.breaker_state(0), Some(BreakerState::Open));
        bad.shutdown();
        good.shutdown();
    }

    #[test]
    fn hedged_requests_race_a_slow_backend() {
        let fast: Handler = Arc::new(|_| crate::http::Response::ok("quick"));
        let slow = start(
            ServerConfig::default(),
            slow_handler(Duration::from_millis(400)),
        )
        .unwrap();
        let good = start(ServerConfig::default(), fast).unwrap();
        let mut client =
            ResilientClient::new_multi(vec![slow.addr(), good.addr()], RetryPolicy::none(), 17)
                .with_hedging(HedgePolicy::fixed(Duration::from_millis(50)));
        let epoch = Instant::now();
        let mut req = Request::get("/slow");
        req.headers.insert("x-request-id".into(), "hedge-1".into());
        let started = std::time::Instant::now();
        let (out, span) = client.request_traced(&req, Duration::from_secs(5), epoch);
        let out = out.unwrap();
        assert_eq!(out.response.status, 200);
        assert!(
            started.elapsed() < Duration::from_millis(350),
            "the backup answered long before the slow primary: {:?}",
            started.elapsed()
        );
        assert_eq!(
            client.hedge_stats(),
            Some((1, 1)),
            "one hedge, won by backup"
        );
        // Both legs appear as sibling attempts: the cancelled primary
        // (no status) and the winning backup.
        assert_eq!(span.attempts.len(), 2);
        let root = TraceCtx::root(span.trace_id);
        assert_eq!(
            span.attempts[0].span_id,
            span_hash(span.trace_id, root.span_id, 0)
        );
        assert_eq!(
            span.attempts[1].span_id,
            span_hash(span.trace_id, root.span_id, 1)
        );
        assert_eq!(span.attempts[0].status, None, "primary cancelled");
        assert_eq!(span.attempts[1].status, Some(200), "backup won");
        assert!(span.ok);
        slow.shutdown();
        good.shutdown();
    }

    #[test]
    fn hedging_is_dormant_while_the_primary_is_fast() {
        let fast: Handler = Arc::new(|_| crate::http::Response::ok("quick"));
        let a = start(ServerConfig::default(), Arc::clone(&fast)).unwrap();
        let b = start(ServerConfig::default(), fast).unwrap();
        let mut client =
            ResilientClient::new_multi(vec![a.addr(), b.addr()], RetryPolicy::none(), 19)
                .with_hedging(HedgePolicy::fixed(Duration::from_millis(500)));
        for _ in 0..5 {
            let out = client
                .request_within(&Request::get("/fast"), Duration::from_secs(2))
                .unwrap();
            assert_eq!(out.response.status, 200);
        }
        assert_eq!(client.hedge_stats(), Some((0, 0)), "no hedge ever launched");
    }
}
