//! A blocking keep-alive HTTP client.
//!
//! Used by the load generator's real-time mode and the integration tests
//! (the paper's load generator uses Apache HttpComponents' async client;
//! our real-time driver multiplexes many of these blocking connections
//! across threads instead).

use crate::http::{self, Request, Response};
use bytes::BytesMut;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Process-wide counter for generated request ids.
static NEXT_AUTO_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server's bytes did not parse.
    Protocol(http::HttpError),
    /// No response within the configured timeout.
    Timeout,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Timeout => write!(f, "request timed out"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A persistent connection to one server.
pub struct HttpClient {
    stream: TcpStream,
    buf: BytesMut,
    timeout: Duration,
}

impl HttpClient {
    /// Connects with a default 5 s timeout.
    pub fn connect(addr: SocketAddr) -> Result<HttpClient, ClientError> {
        Self::connect_with_timeout(addr, Duration::from_secs(5))
    }

    /// Connects with an explicit request timeout.
    pub fn connect_with_timeout(
        addr: SocketAddr,
        timeout: Duration,
    ) -> Result<HttpClient, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ClientError::Io)?;
        stream.set_nodelay(true).map_err(ClientError::Io)?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(ClientError::Io)?;
        Ok(HttpClient {
            stream,
            buf: BytesMut::with_capacity(4096),
            timeout,
        })
    }

    /// Changes the per-request timeout.
    pub fn set_timeout(&mut self, timeout: Duration) -> Result<(), ClientError> {
        self.timeout = timeout;
        self.stream
            .set_read_timeout(Some(timeout))
            .map_err(ClientError::Io)
    }

    /// Sends a request and blocks for its response.
    ///
    /// Requests without an `x-request-id` header get a generated one
    /// (`auto-<local port>-<n>`) so server-side stage spans can always be
    /// correlated per request; the server echoes the id back.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        if req.headers.contains_key("x-request-id") {
            return self.send(req);
        }
        let port = self.stream.local_addr().map(|a| a.port()).unwrap_or(0);
        let n = NEXT_AUTO_REQUEST_ID.fetch_add(1, Ordering::Relaxed);
        let mut tagged = req.clone();
        tagged
            .headers
            .insert("x-request-id".into(), format!("auto-{port}-{n}"));
        self.send(&tagged)
    }

    fn send(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.stream
            .write_all(&req.encode())
            .map_err(ClientError::Io)?;
        let mut chunk = [0u8; 4096];
        loop {
            match http::parse_response(&mut self.buf) {
                Ok(resp) => return Ok(resp),
                Err(http::HttpError::Incomplete) => {}
                Err(e) => return Err(ClientError::Protocol(e)),
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed connection",
                    )))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(ClientError::Timeout)
                }
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;
    use crate::rustserver::{start, Handler, ServerConfig};
    use std::sync::Arc;

    fn slow_handler(delay: Duration) -> Handler {
        Arc::new(move |req| {
            if req.method == Method::Get && req.path == "/slow" {
                std::thread::sleep(delay);
            }
            crate::http::Response::ok("done")
        })
    }

    #[test]
    fn timeouts_are_reported() {
        let server = start(
            ServerConfig::default(),
            slow_handler(Duration::from_millis(300)),
        )
        .unwrap();
        let mut client =
            HttpClient::connect_with_timeout(server.addr(), Duration::from_millis(30)).unwrap();
        match client.request(&Request::get("/slow")) {
            Err(ClientError::Timeout) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn missing_request_ids_are_generated_and_unique() {
        // Echo the request id back so the test can see what went on the
        // wire.
        let handler: Handler = Arc::new(|req| {
            let id = req.headers.get("x-request-id").cloned().unwrap_or_default();
            crate::http::Response::ok(id)
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let a = client.request(&Request::get("/")).unwrap();
        let b = client.request(&Request::get("/")).unwrap();
        assert!(a.body.starts_with(b"auto-"), "{:?}", a.body);
        assert_ne!(a.body, b.body, "ids must be unique per request");
        // An explicit id is passed through untouched.
        let mut req = Request::get("/");
        req.headers.insert("x-request-id".into(), "mine".into());
        let c = client.request(&req).unwrap();
        assert_eq!(&c.body[..], b"mine");
        server.shutdown();
    }

    #[test]
    fn fast_requests_succeed_within_timeout() {
        let server = start(ServerConfig::default(), slow_handler(Duration::ZERO)).unwrap();
        let mut client =
            HttpClient::connect_with_timeout(server.addr(), Duration::from_secs(1)).unwrap();
        let resp = client.request(&Request::get("/fast")).unwrap();
        assert_eq!(resp.status, 200);
        server.shutdown();
    }
}
