//! A blocking keep-alive HTTP client.
//!
//! Used by the load generator's real-time mode and the integration tests
//! (the paper's load generator uses Apache HttpComponents' async client;
//! our real-time driver multiplexes many of these blocking connections
//! across threads instead).

use crate::http::{self, Request, Response};
use bytes::BytesMut;
use etude_faults::{Backoff, Deadline, RetryPolicy};
use etude_obs::request_id_hash;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Process-wide counter for generated request ids.
static NEXT_AUTO_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server's bytes did not parse.
    Protocol(http::HttpError),
    /// No response within the configured timeout.
    Timeout,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Timeout => write!(f, "request timed out"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A persistent connection to one server.
pub struct HttpClient {
    stream: TcpStream,
    buf: BytesMut,
    timeout: Duration,
}

impl HttpClient {
    /// Connects with a default 5 s timeout.
    pub fn connect(addr: SocketAddr) -> Result<HttpClient, ClientError> {
        Self::connect_with_timeout(addr, Duration::from_secs(5))
    }

    /// Connects with an explicit request timeout.
    pub fn connect_with_timeout(
        addr: SocketAddr,
        timeout: Duration,
    ) -> Result<HttpClient, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ClientError::Io)?;
        stream.set_nodelay(true).map_err(ClientError::Io)?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(ClientError::Io)?;
        Ok(HttpClient {
            stream,
            buf: BytesMut::with_capacity(4096),
            timeout,
        })
    }

    /// Changes the per-request timeout.
    pub fn set_timeout(&mut self, timeout: Duration) -> Result<(), ClientError> {
        self.timeout = timeout;
        self.stream
            .set_read_timeout(Some(timeout))
            .map_err(ClientError::Io)
    }

    /// Sends a request and blocks for its response.
    ///
    /// Requests without an `x-request-id` header get a generated one
    /// (`auto-<local port>-<n>`) so server-side stage spans can always be
    /// correlated per request; the server echoes the id back.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        if req.headers.contains_key("x-request-id") {
            return self.send(req);
        }
        let port = self.stream.local_addr().map(|a| a.port()).unwrap_or(0);
        let n = NEXT_AUTO_REQUEST_ID.fetch_add(1, Ordering::Relaxed);
        let mut tagged = req.clone();
        tagged
            .headers
            .insert("x-request-id".into(), format!("auto-{port}-{n}"));
        self.send(&tagged)
    }

    fn send(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.stream
            .write_all(&req.encode())
            .map_err(ClientError::Io)?;
        let mut chunk = [0u8; 4096];
        loop {
            match http::parse_response(&mut self.buf) {
                Ok(resp) => return Ok(resp),
                Err(http::HttpError::Incomplete) => {}
                Err(e) => return Err(ClientError::Protocol(e)),
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed connection",
                    )))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(ClientError::Timeout)
                }
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }
}

/// The outcome of a resilient request: the final response plus how hard
/// the client had to work for it.
#[derive(Debug)]
pub struct ResilientResponse {
    /// The response that ended the retry loop (2xx/4xx, or the last 5xx
    /// when the budget ran out).
    pub response: Response,
    /// Retries spent on this request (0 = first attempt succeeded).
    pub retries: u32,
    /// Whether the response came from the server's degraded
    /// (popularity-fallback) path.
    pub degraded: bool,
}

/// A retrying HTTP client: [`HttpClient`] plus a per-request deadline
/// budget, bounded exponential backoff with seeded jitter, and
/// `Retry-After` honoring.
///
/// Retryable outcomes are transport errors (the connection is reopened),
/// timeouts, truncated/unparseable responses (mid-response resets) and
/// 5xx statuses; 2xx/4xx end the loop immediately. Backoff jitter is
/// drawn from a per-request RNG seeded by `client seed ^ request-id
/// hash`, so a rerun with the same seed and ids retries on a
/// bit-identical schedule.
pub struct ResilientClient {
    addr: SocketAddr,
    conn: Option<HttpClient>,
    policy: RetryPolicy,
    attempt_timeout: Duration,
    seed: u64,
    total_retries: u64,
    reconnects: u64,
}

impl ResilientClient {
    /// Creates a client for `addr`. Nothing is connected until the first
    /// request (and reconnection after failures is automatic).
    pub fn new(addr: SocketAddr, policy: RetryPolicy, seed: u64) -> ResilientClient {
        ResilientClient {
            addr,
            conn: None,
            policy,
            attempt_timeout: Duration::from_secs(5),
            seed,
            total_retries: 0,
            reconnects: 0,
        }
    }

    /// Overrides the per-attempt timeout (default 5 s). Each attempt is
    /// additionally clamped to what is left of the request budget.
    pub fn with_attempt_timeout(mut self, timeout: Duration) -> Self {
        self.attempt_timeout = timeout;
        self
    }

    /// Retries spent across every request on this client.
    pub fn total_retries(&self) -> u64 {
        self.total_retries
    }

    /// Connections opened: the initial connect plus every reopen after a
    /// transport failure.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Sends `req`, retrying under `budget`. The request must carry an
    /// `x-request-id` header (the retry schedule is keyed by it); one is
    /// generated when missing, like [`HttpClient::request`].
    pub fn request_within(
        &mut self,
        req: &Request,
        budget: Duration,
    ) -> Result<ResilientResponse, ClientError> {
        let mut tagged;
        let req = if req.headers.contains_key("x-request-id") {
            req
        } else {
            tagged = req.clone();
            let n = NEXT_AUTO_REQUEST_ID.fetch_add(1, Ordering::Relaxed);
            tagged
                .headers
                .insert("x-request-id".into(), format!("auto-r-{n}"));
            &tagged
        };
        let rid = req.headers.get("x-request-id").expect("tagged above");
        let deadline = Deadline::after(budget);
        let mut backoff = Backoff::new(self.policy.clone(), self.seed ^ request_id_hash(rid));
        let mut retries = 0u32;
        loop {
            let outcome = self.attempt(req, &deadline);
            let (retry_after, last_err) = match outcome {
                Ok(resp) if resp.status < 500 => {
                    let degraded = resp
                        .headers
                        .contains_key(crate::rustserver::DEGRADED_HEADER);
                    return Ok(ResilientResponse {
                        response: resp,
                        retries,
                        degraded,
                    });
                }
                Ok(resp) => {
                    // 5xx: retryable; the server may name its own pause.
                    let after = resp
                        .headers
                        .get("retry-after")
                        .and_then(|v| v.parse::<u64>().ok())
                        .map(Duration::from_secs);
                    (after, Err(resp))
                }
                Err(e) => {
                    // Transport failure: the connection state is unknown
                    // (a response could still be in flight), start fresh.
                    self.conn = None;
                    (None, Ok(e))
                }
            };
            let Some(mut delay) = backoff.next_delay_within(&deadline) else {
                // Budget exhausted: surface the terminal outcome.
                return match last_err {
                    Err(resp) => Ok(ResilientResponse {
                        response: resp,
                        retries,
                        degraded: false,
                    }),
                    Ok(e) => Err(e),
                };
            };
            if let Some(after) = retry_after {
                delay = delay.max(deadline.clamp(after));
            }
            std::thread::sleep(delay);
            retries += 1;
            self.total_retries += 1;
        }
    }

    /// One attempt: (re)connect if needed and send, with the read
    /// timeout clamped to the remaining budget.
    fn attempt(&mut self, req: &Request, deadline: &Deadline) -> Result<Response, ClientError> {
        let timeout = deadline.clamp(self.attempt_timeout);
        if timeout.is_zero() {
            return Err(ClientError::Timeout);
        }
        if self.conn.is_none() {
            self.reconnects += 1;
            self.conn = Some(HttpClient::connect_with_timeout(self.addr, timeout)?);
        }
        let conn = self.conn.as_mut().expect("connected above");
        conn.set_timeout(timeout)?;
        conn.request(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;
    use crate::rustserver::{start, Handler, ServerConfig};
    use std::sync::Arc;

    fn slow_handler(delay: Duration) -> Handler {
        Arc::new(move |req| {
            if req.method == Method::Get && req.path == "/slow" {
                std::thread::sleep(delay);
            }
            crate::http::Response::ok("done")
        })
    }

    #[test]
    fn timeouts_are_reported() {
        let server = start(
            ServerConfig::default(),
            slow_handler(Duration::from_millis(300)),
        )
        .unwrap();
        let mut client =
            HttpClient::connect_with_timeout(server.addr(), Duration::from_millis(30)).unwrap();
        match client.request(&Request::get("/slow")) {
            Err(ClientError::Timeout) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn missing_request_ids_are_generated_and_unique() {
        // Echo the request id back so the test can see what went on the
        // wire.
        let handler: Handler = Arc::new(|req| {
            let id = req.headers.get("x-request-id").cloned().unwrap_or_default();
            crate::http::Response::ok(id)
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let a = client.request(&Request::get("/")).unwrap();
        let b = client.request(&Request::get("/")).unwrap();
        assert!(a.body.starts_with(b"auto-"), "{:?}", a.body);
        assert_ne!(a.body, b.body, "ids must be unique per request");
        // An explicit id is passed through untouched.
        let mut req = Request::get("/");
        req.headers.insert("x-request-id".into(), "mine".into());
        let c = client.request(&req).unwrap();
        assert_eq!(&c.body[..], b"mine");
        server.shutdown();
    }

    #[test]
    fn resilient_client_retries_transient_errors_to_success() {
        use std::sync::atomic::AtomicU64;

        let calls = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&calls);
        let handler: Handler = Arc::new(move |_| {
            if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                crate::http::Response::error(500, "transient")
            } else {
                crate::http::Response::ok("finally")
            }
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            max_retries: 5,
            jitter: 0.5,
        };
        let mut client = ResilientClient::new(server.addr(), policy, 7);
        let out = client
            .request_within(&Request::get("/flaky"), Duration::from_secs(5))
            .unwrap();
        assert_eq!(out.response.status, 200);
        assert_eq!(out.retries, 2, "two 500s before the 200");
        assert!(!out.degraded);
        assert_eq!(client.total_retries(), 2);
        server.shutdown();
    }

    #[test]
    fn resilient_client_gives_up_inside_the_budget() {
        let handler: Handler = Arc::new(|_| crate::http::Response::error(500, "always"));
        let server = start(ServerConfig::default(), handler).unwrap();
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            max_retries: 3,
            jitter: 0.0,
        };
        let mut client = ResilientClient::new(server.addr(), policy, 1);
        let started = std::time::Instant::now();
        let out = client
            .request_within(&Request::get("/dead"), Duration::from_millis(500))
            .unwrap();
        assert_eq!(out.response.status, 500, "terminal 5xx is surfaced");
        assert_eq!(out.retries, 3, "full retry budget spent");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "bounded by budget, not hung"
        );
        server.shutdown();
    }

    #[test]
    fn resilient_client_reconnects_through_connection_resets() {
        use crate::rustserver::RESET_MARKER;
        use std::sync::atomic::AtomicU64;

        let calls = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&calls);
        let handler: Handler = Arc::new(move |_| {
            let resp = crate::http::Response::ok("payload");
            if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                resp.with_header(RESET_MARKER, "1".to_string())
            } else {
                resp
            }
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            max_retries: 6,
            jitter: 0.5,
        };
        let mut client = ResilientClient::new(server.addr(), policy, 11)
            .with_attempt_timeout(Duration::from_millis(200));
        let out = client
            .request_within(&Request::get("/resetting"), Duration::from_secs(10))
            .unwrap();
        assert_eq!(out.response.status, 200);
        assert_eq!(out.retries, 2, "two resets before the clean response");
        assert!(
            client.reconnects() >= 3,
            "initial connect plus one reopen per reset, got {}",
            client.reconnects()
        );
        server.shutdown();
    }

    #[test]
    fn resilient_client_flags_degraded_responses() {
        use crate::rustserver::DEGRADED_HEADER;

        let handler: Handler = Arc::new(|_| {
            crate::http::Response::ok("0:1,1:0.5").with_header(DEGRADED_HEADER, "1".to_string())
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let mut client = ResilientClient::new(server.addr(), RetryPolicy::none(), 0);
        let out = client
            .request_within(&Request::get("/degraded"), Duration::from_secs(1))
            .unwrap();
        assert_eq!(out.response.status, 200);
        assert!(out.degraded);
        assert_eq!(out.retries, 0);
        server.shutdown();
    }

    #[test]
    fn fast_requests_succeed_within_timeout() {
        let server = start(ServerConfig::default(), slow_handler(Duration::ZERO)).unwrap();
        let mut client =
            HttpClient::connect_with_timeout(server.addr(), Duration::from_secs(1)).unwrap();
        let resp = client.request(&Request::get("/fast")).unwrap();
        assert_eq!(resp.status, 200);
        server.shutdown();
    }
}
