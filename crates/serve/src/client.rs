//! A blocking keep-alive HTTP client.
//!
//! Used by the load generator's real-time mode and the integration tests
//! (the paper's load generator uses Apache HttpComponents' async client;
//! our real-time driver multiplexes many of these blocking connections
//! across threads instead).

use crate::http::{self, Request, Response};
use bytes::BytesMut;
use etude_faults::{Backoff, Deadline, RetryPolicy};
use etude_obs::trace::span_hash;
use etude_obs::{request_id_hash, ClientAttempt, ClientSpan, TraceCtx, TRACE_HEADER};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Process-wide counter for generated request ids.
static NEXT_AUTO_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Upper bound on a server-suggested `Retry-After` pause. A production
/// server naming an hour-plus pause is either misconfigured or being
/// spoofed; honoring it verbatim would park the client forever (the
/// request deadline clamps it further, but the clamp keeps the
/// arithmetic sane even under absurd header values).
const MAX_RETRY_AFTER_SECS: u64 = 3600;

/// Parses a `Retry-After` header value defensively.
///
/// Accepts only whole non-negative seconds, tolerating surrounding
/// whitespace. Anything else — empty strings, fractional or negative
/// numbers, HTTP-dates, values that overflow `u64` — yields `None` (the
/// client falls back to its own backoff schedule). Parseable but absurd
/// values are clamped to [`MAX_RETRY_AFTER_SECS`].
fn parse_retry_after(value: &str) -> Option<Duration> {
    let trimmed = value.trim();
    // All-digits, explicitly: u64's own parser accepts a leading `+`,
    // which no server emits on purpose.
    if trimmed.is_empty() || !trimmed.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let secs: u64 = trimmed.parse().ok()?;
    Some(Duration::from_secs(secs.min(MAX_RETRY_AFTER_SECS)))
}

fn nanos_since(epoch: Instant) -> u64 {
    epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server's bytes did not parse.
    Protocol(http::HttpError),
    /// No response within the configured timeout.
    Timeout,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Timeout => write!(f, "request timed out"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A persistent connection to one server.
pub struct HttpClient {
    stream: TcpStream,
    buf: BytesMut,
    timeout: Duration,
}

impl HttpClient {
    /// Connects with a default 5 s timeout.
    pub fn connect(addr: SocketAddr) -> Result<HttpClient, ClientError> {
        Self::connect_with_timeout(addr, Duration::from_secs(5))
    }

    /// Connects with an explicit request timeout.
    pub fn connect_with_timeout(
        addr: SocketAddr,
        timeout: Duration,
    ) -> Result<HttpClient, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ClientError::Io)?;
        stream.set_nodelay(true).map_err(ClientError::Io)?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(ClientError::Io)?;
        Ok(HttpClient {
            stream,
            buf: BytesMut::with_capacity(4096),
            timeout,
        })
    }

    /// Changes the per-request timeout.
    pub fn set_timeout(&mut self, timeout: Duration) -> Result<(), ClientError> {
        self.timeout = timeout;
        self.stream
            .set_read_timeout(Some(timeout))
            .map_err(ClientError::Io)
    }

    /// Sends a request and blocks for its response.
    ///
    /// Requests without an `x-request-id` header get a generated one
    /// (`auto-<local port>-<n>`) so server-side stage spans can always be
    /// correlated per request; the server echoes the id back.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        if req.headers.contains_key("x-request-id") {
            return self.send(req);
        }
        let port = self.stream.local_addr().map(|a| a.port()).unwrap_or(0);
        let n = NEXT_AUTO_REQUEST_ID.fetch_add(1, Ordering::Relaxed);
        let mut tagged = req.clone();
        tagged
            .headers
            .insert("x-request-id".into(), format!("auto-{port}-{n}"));
        self.send(&tagged)
    }

    fn send(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.stream
            .write_all(&req.encode())
            .map_err(ClientError::Io)?;
        let mut chunk = [0u8; 4096];
        loop {
            match http::parse_response(&mut self.buf) {
                Ok(resp) => return Ok(resp),
                Err(http::HttpError::Incomplete) => {}
                Err(e) => return Err(ClientError::Protocol(e)),
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed connection",
                    )))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(ClientError::Timeout)
                }
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }
}

/// The outcome of a resilient request: the final response plus how hard
/// the client had to work for it.
#[derive(Debug)]
pub struct ResilientResponse {
    /// The response that ended the retry loop (2xx/4xx, or the last 5xx
    /// when the budget ran out).
    pub response: Response,
    /// Retries spent on this request (0 = first attempt succeeded).
    pub retries: u32,
    /// Whether the response came from the server's degraded
    /// (popularity-fallback) path.
    pub degraded: bool,
}

/// A retrying HTTP client: [`HttpClient`] plus a per-request deadline
/// budget, bounded exponential backoff with seeded jitter, and
/// `Retry-After` honoring.
///
/// Retryable outcomes are transport errors (the connection is reopened),
/// timeouts, truncated/unparseable responses (mid-response resets) and
/// 5xx statuses; 2xx/4xx end the loop immediately. Backoff jitter is
/// drawn from a per-request RNG seeded by `client seed ^ request-id
/// hash`, so a rerun with the same seed and ids retries on a
/// bit-identical schedule.
pub struct ResilientClient {
    addr: SocketAddr,
    conn: Option<HttpClient>,
    policy: RetryPolicy,
    attempt_timeout: Duration,
    seed: u64,
    total_retries: u64,
    reconnects: u64,
}

impl ResilientClient {
    /// Creates a client for `addr`. Nothing is connected until the first
    /// request (and reconnection after failures is automatic).
    pub fn new(addr: SocketAddr, policy: RetryPolicy, seed: u64) -> ResilientClient {
        ResilientClient {
            addr,
            conn: None,
            policy,
            attempt_timeout: Duration::from_secs(5),
            seed,
            total_retries: 0,
            reconnects: 0,
        }
    }

    /// Overrides the per-attempt timeout (default 5 s). Each attempt is
    /// additionally clamped to what is left of the request budget.
    pub fn with_attempt_timeout(mut self, timeout: Duration) -> Self {
        self.attempt_timeout = timeout;
        self
    }

    /// Retries spent across every request on this client.
    pub fn total_retries(&self) -> u64 {
        self.total_retries
    }

    /// Connections opened: the initial connect plus every reopen after a
    /// transport failure.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Sends `req`, retrying under `budget`. The request must carry an
    /// `x-request-id` header (the retry schedule is keyed by it); one is
    /// generated when missing, like [`HttpClient::request`].
    pub fn request_within(
        &mut self,
        req: &Request,
        budget: Duration,
    ) -> Result<ResilientResponse, ClientError> {
        self.request_impl(req, budget, None).0
    }

    /// [`Self::request_within`] with distributed tracing: every attempt
    /// carries an [`TRACE_HEADER`] context (trace id = the request-id
    /// hash; each retry is a fresh child span, so retries show up as
    /// sibling attempts in the assembled trace tree), and the returned
    /// [`ClientSpan`] records the whole retry loop with per-attempt
    /// timings relative to `epoch` (the run's start instant — all spans
    /// of one run must share it).
    pub fn request_traced(
        &mut self,
        req: &Request,
        budget: Duration,
        epoch: Instant,
    ) -> (Result<ResilientResponse, ClientError>, ClientSpan) {
        let (out, span) = self.request_impl(req, budget, Some(epoch));
        (out, span.expect("tracing was requested"))
    }

    fn request_impl(
        &mut self,
        req: &Request,
        budget: Duration,
        epoch: Option<Instant>,
    ) -> (Result<ResilientResponse, ClientError>, Option<ClientSpan>) {
        let mut tagged;
        let req = if req.headers.contains_key("x-request-id") {
            req
        } else {
            tagged = req.clone();
            let n = NEXT_AUTO_REQUEST_ID.fetch_add(1, Ordering::Relaxed);
            tagged
                .headers
                .insert("x-request-id".into(), format!("auto-r-{n}"));
            &tagged
        };
        let rid = req.headers.get("x-request-id").expect("tagged above");
        let trace_id = request_id_hash(rid);
        let root = TraceCtx::root(trace_id);
        let mut span = epoch.map(|e| ClientSpan {
            trace_id,
            span_id: root.span_id,
            start_nanos: nanos_since(e),
            duration_nanos: 0,
            ok: false,
            attempts: Vec::new(),
        });
        let deadline = Deadline::after(budget);
        let mut backoff = Backoff::new(self.policy.clone(), self.seed ^ trace_id);
        let mut retries = 0u32;
        let mut attempt_index = 0u64;
        let result = loop {
            let outcome = match epoch {
                Some(e) => {
                    // Each attempt is its own span: the pod's stage
                    // records parent to it, so retries reassemble as
                    // sibling subtrees rather than one merged blob.
                    let attempt_span = span_hash(trace_id, root.span_id, attempt_index);
                    let ctx = TraceCtx {
                        trace_id,
                        span_id: attempt_span,
                        hop: 1,
                    };
                    let mut traced = req.clone();
                    traced.headers.insert(TRACE_HEADER.into(), ctx.encode());
                    let start = nanos_since(e);
                    let out = self.attempt(&traced, &deadline);
                    let status = match &out {
                        Ok(resp) => Some(resp.status),
                        Err(_) => None,
                    };
                    if let Some(s) = span.as_mut() {
                        s.attempts.push(ClientAttempt {
                            span_id: attempt_span,
                            start_nanos: start,
                            duration_nanos: nanos_since(e).saturating_sub(start),
                            status,
                        });
                    }
                    out
                }
                None => self.attempt(req, &deadline),
            };
            attempt_index += 1;
            let (retry_after, last_err) = match outcome {
                Ok(resp) if resp.status < 500 => {
                    let degraded = resp
                        .headers
                        .contains_key(crate::rustserver::DEGRADED_HEADER);
                    break Ok(ResilientResponse {
                        response: resp,
                        retries,
                        degraded,
                    });
                }
                Ok(resp) => {
                    // 5xx: retryable; the server may name its own pause.
                    let after = resp
                        .headers
                        .get("retry-after")
                        .and_then(|v| parse_retry_after(v));
                    (after, Err(resp))
                }
                Err(e) => {
                    // Transport failure: the connection state is unknown
                    // (a response could still be in flight), start fresh.
                    self.conn = None;
                    (None, Ok(e))
                }
            };
            let Some(mut delay) = backoff.next_delay_within(&deadline) else {
                // Budget exhausted: surface the terminal outcome.
                break match last_err {
                    Err(resp) => Ok(ResilientResponse {
                        response: resp,
                        retries,
                        degraded: false,
                    }),
                    Ok(e) => Err(e),
                };
            };
            if let Some(after) = retry_after {
                delay = delay.max(deadline.clamp(after));
            }
            std::thread::sleep(delay);
            retries += 1;
            self.total_retries += 1;
        };
        if let (Some(e), Some(s)) = (epoch, span.as_mut()) {
            s.duration_nanos = nanos_since(e).saturating_sub(s.start_nanos);
            s.ok = matches!(&result, Ok(r) if r.response.status < 500);
        }
        (result, span)
    }

    /// One attempt: (re)connect if needed and send, with the read
    /// timeout clamped to the remaining budget.
    fn attempt(&mut self, req: &Request, deadline: &Deadline) -> Result<Response, ClientError> {
        let timeout = deadline.clamp(self.attempt_timeout);
        if timeout.is_zero() {
            return Err(ClientError::Timeout);
        }
        if self.conn.is_none() {
            self.reconnects += 1;
            self.conn = Some(HttpClient::connect_with_timeout(self.addr, timeout)?);
        }
        let conn = self.conn.as_mut().expect("connected above");
        conn.set_timeout(timeout)?;
        conn.request(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;
    use crate::rustserver::{start, Handler, ServerConfig};
    use std::sync::Arc;

    fn slow_handler(delay: Duration) -> Handler {
        Arc::new(move |req| {
            if req.method == Method::Get && req.path == "/slow" {
                std::thread::sleep(delay);
            }
            crate::http::Response::ok("done")
        })
    }

    #[test]
    fn timeouts_are_reported() {
        let server = start(
            ServerConfig::default(),
            slow_handler(Duration::from_millis(300)),
        )
        .unwrap();
        let mut client =
            HttpClient::connect_with_timeout(server.addr(), Duration::from_millis(30)).unwrap();
        match client.request(&Request::get("/slow")) {
            Err(ClientError::Timeout) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn missing_request_ids_are_generated_and_unique() {
        // Echo the request id back so the test can see what went on the
        // wire.
        let handler: Handler = Arc::new(|req| {
            let id = req.headers.get("x-request-id").cloned().unwrap_or_default();
            crate::http::Response::ok(id)
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let a = client.request(&Request::get("/")).unwrap();
        let b = client.request(&Request::get("/")).unwrap();
        assert!(a.body.starts_with(b"auto-"), "{:?}", a.body);
        assert_ne!(a.body, b.body, "ids must be unique per request");
        // An explicit id is passed through untouched.
        let mut req = Request::get("/");
        req.headers.insert("x-request-id".into(), "mine".into());
        let c = client.request(&req).unwrap();
        assert_eq!(&c.body[..], b"mine");
        server.shutdown();
    }

    #[test]
    fn resilient_client_retries_transient_errors_to_success() {
        use std::sync::atomic::AtomicU64;

        let calls = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&calls);
        let handler: Handler = Arc::new(move |_| {
            if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                crate::http::Response::error(500, "transient")
            } else {
                crate::http::Response::ok("finally")
            }
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            max_retries: 5,
            jitter: 0.5,
        };
        let mut client = ResilientClient::new(server.addr(), policy, 7);
        let out = client
            .request_within(&Request::get("/flaky"), Duration::from_secs(5))
            .unwrap();
        assert_eq!(out.response.status, 200);
        assert_eq!(out.retries, 2, "two 500s before the 200");
        assert!(!out.degraded);
        assert_eq!(client.total_retries(), 2);
        server.shutdown();
    }

    #[test]
    fn resilient_client_gives_up_inside_the_budget() {
        let handler: Handler = Arc::new(|_| crate::http::Response::error(500, "always"));
        let server = start(ServerConfig::default(), handler).unwrap();
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            max_retries: 3,
            jitter: 0.0,
        };
        let mut client = ResilientClient::new(server.addr(), policy, 1);
        let started = std::time::Instant::now();
        let out = client
            .request_within(&Request::get("/dead"), Duration::from_millis(500))
            .unwrap();
        assert_eq!(out.response.status, 500, "terminal 5xx is surfaced");
        assert_eq!(out.retries, 3, "full retry budget spent");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "bounded by budget, not hung"
        );
        server.shutdown();
    }

    #[test]
    fn resilient_client_reconnects_through_connection_resets() {
        use crate::rustserver::RESET_MARKER;
        use std::sync::atomic::AtomicU64;

        let calls = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&calls);
        let handler: Handler = Arc::new(move |_| {
            let resp = crate::http::Response::ok("payload");
            if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                resp.with_header(RESET_MARKER, "1".to_string())
            } else {
                resp
            }
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            max_retries: 6,
            jitter: 0.5,
        };
        let mut client = ResilientClient::new(server.addr(), policy, 11)
            .with_attempt_timeout(Duration::from_millis(200));
        let out = client
            .request_within(&Request::get("/resetting"), Duration::from_secs(10))
            .unwrap();
        assert_eq!(out.response.status, 200);
        assert_eq!(out.retries, 2, "two resets before the clean response");
        assert!(
            client.reconnects() >= 3,
            "initial connect plus one reopen per reset, got {}",
            client.reconnects()
        );
        server.shutdown();
    }

    #[test]
    fn resilient_client_flags_degraded_responses() {
        use crate::rustserver::DEGRADED_HEADER;

        let handler: Handler = Arc::new(|_| {
            crate::http::Response::ok("0:1,1:0.5").with_header(DEGRADED_HEADER, "1".to_string())
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let mut client = ResilientClient::new(server.addr(), RetryPolicy::none(), 0);
        let out = client
            .request_within(&Request::get("/degraded"), Duration::from_secs(1))
            .unwrap();
        assert_eq!(out.response.status, 200);
        assert!(out.degraded);
        assert_eq!(out.retries, 0);
        server.shutdown();
    }

    #[test]
    fn retry_after_parsing_tolerates_hostile_values() {
        // Plain seconds, with or without surrounding whitespace.
        assert_eq!(parse_retry_after("1"), Some(Duration::from_secs(1)));
        assert_eq!(parse_retry_after(" 1 "), Some(Duration::from_secs(1)));
        assert_eq!(parse_retry_after("\t30\t"), Some(Duration::from_secs(30)));
        assert_eq!(parse_retry_after("0"), Some(Duration::ZERO));
        // Absurd-but-parseable values clamp instead of parking the
        // client for a week.
        assert_eq!(
            parse_retry_after("604800"),
            Some(Duration::from_secs(MAX_RETRY_AFTER_SECS))
        );
        assert_eq!(
            parse_retry_after("18446744073709551615"),
            Some(Duration::from_secs(MAX_RETRY_AFTER_SECS))
        );
        // Everything unparseable falls back to client backoff.
        assert_eq!(parse_retry_after(""), None);
        assert_eq!(parse_retry_after("   "), None);
        assert_eq!(parse_retry_after("soon"), None);
        assert_eq!(parse_retry_after("1.5"), None);
        assert_eq!(parse_retry_after("-2"), None);
        assert_eq!(parse_retry_after("+3"), None, "signs are not seconds");
        assert_eq!(
            parse_retry_after("99999999999999999999999"),
            None,
            "overflow"
        );
        assert_eq!(parse_retry_after("Wed, 21 Oct 2015 07:28:00 GMT"), None);
    }

    #[test]
    fn garbage_retry_after_falls_back_to_client_backoff() {
        use std::sync::atomic::AtomicU64;

        // Unparseable Retry-After values must not derail the retry loop:
        // the client converges on its own backoff schedule.
        let calls = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&calls);
        let handler: Handler = Arc::new(move |_| match seen.fetch_add(1, Ordering::SeqCst) {
            0 => crate::http::Response::error(503, "busy")
                .with_header("retry-after", "garbage".to_string()),
            1 => crate::http::Response::error(503, "busy")
                .with_header("retry-after", "Wed, 21 Oct 2015 07:28:00 GMT".to_string()),
            _ => crate::http::Response::ok("done"),
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            max_retries: 5,
            jitter: 0.0,
        };
        let mut client = ResilientClient::new(server.addr(), policy, 3);
        let out = client
            .request_within(&Request::get("/busy"), Duration::from_secs(5))
            .unwrap();
        assert_eq!(out.response.status, 200);
        assert_eq!(out.retries, 2);
        server.shutdown();
    }

    #[test]
    fn absurd_retry_after_is_clamped_to_the_deadline_budget() {
        // A server demanding a 999999999-second pause: the wait is
        // clamped to what is left of the request budget, so the call
        // returns (with the terminal outcome) instead of parking the
        // client for three decades.
        let handler: Handler = Arc::new(|_| {
            crate::http::Response::error(503, "busy")
                .with_header("retry-after", "999999999".to_string())
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            max_retries: 5,
            jitter: 0.0,
        };
        let mut client = ResilientClient::new(server.addr(), policy, 3);
        let started = std::time::Instant::now();
        let out = client.request_within(&Request::get("/busy"), Duration::from_millis(300));
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "clamped to the deadline, not the header value"
        );
        // Budget exhausted mid-loop: either the last 5xx or a timeout on
        // the final zero-budget attempt — never a hang.
        match out {
            Ok(resp) => assert_eq!(resp.response.status, 503),
            Err(ClientError::Timeout) => {}
            Err(other) => panic!("unexpected terminal error: {other}"),
        }
        server.shutdown();
    }

    #[test]
    fn traced_requests_record_retries_as_sibling_attempts() {
        use parking_lot::Mutex;
        use std::sync::atomic::AtomicU64;

        // 500 twice, then succeed — while capturing the trace contexts
        // that actually crossed the wire.
        let calls = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&calls);
        let wire_ctxs: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let wire = Arc::clone(&wire_ctxs);
        let handler: Handler = Arc::new(move |req| {
            if let Some(ctx) = req.headers.get(TRACE_HEADER) {
                wire.lock().push(ctx.clone());
            }
            if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                crate::http::Response::error(500, "transient")
            } else {
                crate::http::Response::ok("finally")
            }
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            max_retries: 5,
            jitter: 0.5,
        };
        let mut client = ResilientClient::new(server.addr(), policy, 7);
        let epoch = Instant::now();
        let mut req = Request::get("/flaky");
        req.headers.insert("x-request-id".into(), "traced-1".into());
        let (out, span) = client.request_traced(&req, Duration::from_secs(5), epoch);
        let out = out.unwrap();
        assert_eq!(out.response.status, 200);
        assert_eq!(out.retries, 2);

        // The span reconstructs the whole retry loop.
        assert_eq!(span.trace_id, request_id_hash("traced-1"));
        assert!(span.ok);
        assert_eq!(span.attempts.len(), 3, "two failures + the success");
        assert_eq!(span.attempts[0].status, Some(500));
        assert_eq!(span.attempts[1].status, Some(500));
        assert_eq!(span.attempts[2].status, Some(200));
        // Attempts are distinct sibling spans of the request root...
        let root = TraceCtx::root(span.trace_id);
        assert_eq!(span.span_id, root.span_id);
        for (k, a) in span.attempts.iter().enumerate() {
            assert_eq!(a.span_id, span_hash(span.trace_id, root.span_id, k as u64));
            assert!(a.start_nanos >= span.start_nanos);
            assert!(
                a.start_nanos + a.duration_nanos <= span.start_nanos + span.duration_nanos,
                "attempt {k} exceeds the enclosing span"
            );
        }
        // ...and exactly those contexts crossed the wire, in order.
        let on_wire = wire_ctxs.lock();
        assert_eq!(on_wire.len(), 3);
        for (k, enc) in on_wire.iter().enumerate() {
            let ctx = TraceCtx::parse(enc).expect("well-formed header");
            assert_eq!(ctx.trace_id, span.trace_id);
            assert_eq!(ctx.span_id, span.attempts[k].span_id);
            assert_eq!(ctx.hop, 1);
        }
        server.shutdown();
    }

    #[test]
    fn traced_transport_failures_have_status_none() {
        use crate::rustserver::RESET_MARKER;
        use std::sync::atomic::AtomicU64;

        let calls = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&calls);
        let handler: Handler = Arc::new(move |_| {
            let resp = crate::http::Response::ok("payload");
            if seen.fetch_add(1, Ordering::SeqCst) < 1 {
                resp.with_header(RESET_MARKER, "1".to_string())
            } else {
                resp
            }
        });
        let server = start(ServerConfig::default(), handler).unwrap();
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            max_retries: 4,
            jitter: 0.0,
        };
        let mut client = ResilientClient::new(server.addr(), policy, 13)
            .with_attempt_timeout(Duration::from_millis(200));
        let (out, span) = client.request_traced(
            &Request::get("/reset"),
            Duration::from_secs(5),
            Instant::now(),
        );
        assert_eq!(out.unwrap().response.status, 200);
        assert_eq!(span.attempts.len(), 2);
        assert_eq!(span.attempts[0].status, None, "reset mid-response");
        assert_eq!(span.attempts[1].status, Some(200));
        assert!(span.ok);
        server.shutdown();
    }

    #[test]
    fn fast_requests_succeed_within_timeout() {
        let server = start(ServerConfig::default(), slow_handler(Duration::ZERO)).unwrap();
        let mut client =
            HttpClient::connect_with_timeout(server.addr(), Duration::from_secs(1)).unwrap();
        let resp = client.request(&Request::get("/fast")).unwrap();
        assert_eq!(resp.status, 200);
        server.shutdown();
    }
}
