//! A `batched-fn`-style request batcher for the real server.
//!
//! The paper's Rust server uses the `batched-fn` crate to gather
//! concurrent requests into GPU batches: requests accumulate in a buffer
//! of up to 1,024 entries which is flushed every two milliseconds. This
//! is the same mechanism on a crossbeam channel: handler threads submit
//! work and block on a per-request response channel; a dedicated batcher
//! thread drains the queue on size or deadline and hands whole batches to
//! the batch handler.

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use etude_faults::Deadline;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of the batcher (paper defaults: 1,024 / 2 ms).
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Maximum requests fused into one batch.
    pub max_batch: usize,
    /// Maximum time a request waits for co-batched peers.
    pub flush_every: Duration,
    /// Maximum requests queued ahead of the batcher. When the queue is
    /// full, [`Batcher::try_call`] sheds load with
    /// [`CallError::Overloaded`] instead of letting latency grow without
    /// bound (and with it, the memory holding the queue).
    pub max_queue: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 1024,
            flush_every: Duration::from_millis(2),
            max_queue: 4096,
        }
    }
}

impl BatchConfig {
    /// Sets the queue bound.
    pub fn with_max_queue(mut self, max_queue: usize) -> Self {
        self.max_queue = max_queue;
        self
    }
}

/// Why a [`Batcher::try_call`] failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallError {
    /// The submission queue is full; the caller should shed the request
    /// (HTTP 503) rather than wait.
    Overloaded,
    /// The batcher thread has shut down.
    Closed,
}

struct Job<T, R> {
    input: T,
    respond: Sender<R>,
}

/// A handle submitting work into the batcher.
pub struct Batcher<T, R> {
    submit: Sender<Job<T, R>>,
    worker: Option<JoinHandle<()>>,
}

impl<T: Send + 'static, R: Send + 'static> Batcher<T, R> {
    /// Spawns the batcher thread around a batch handler. The handler
    /// receives whole batches and returns one result per input, in order.
    pub fn spawn<F>(config: BatchConfig, handler: F) -> Batcher<T, R>
    where
        F: Fn(Vec<T>) -> Vec<R> + Send + 'static,
    {
        let (tx, rx) = bounded::<Job<T, R>>(config.max_queue.max(1));
        let worker = std::thread::Builder::new()
            .name("etude-batcher".into())
            .spawn(move || run_batcher(rx, config, handler))
            .expect("spawn batcher thread");
        Batcher {
            submit: tx,
            worker: Some(worker),
        }
    }

    /// Submits one input and blocks until its result arrives (waiting for
    /// queue space if necessary). Returns `None` if the batcher has shut
    /// down.
    pub fn call(&self, input: T) -> Option<R> {
        let (tx, rx) = bounded(1);
        self.submit.send(Job { input, respond: tx }).ok()?;
        rx.recv().ok()
    }

    /// Submits one input without waiting for queue space: a full queue
    /// fails fast with [`CallError::Overloaded`] so the server can shed
    /// load instead of stacking up latency. On success, blocks until the
    /// result arrives, like [`Batcher::call`].
    pub fn try_call(&self, input: T) -> Result<R, CallError> {
        let (tx, rx) = bounded(1);
        match self.submit.try_send(Job { input, respond: tx }) {
            Ok(()) => rx.recv().map_err(|_| CallError::Closed),
            Err(TrySendError::Full(_)) => Err(CallError::Overloaded),
            Err(TrySendError::Disconnected(_)) => Err(CallError::Closed),
        }
    }

    /// Requests currently queued ahead of the batcher (a point-in-time
    /// gauge; the batcher drains concurrently).
    pub fn queue_depth(&self) -> usize {
        self.submit.len()
    }
}

impl<T, R> Drop for Batcher<T, R> {
    fn drop(&mut self) {
        // Closing the channel stops the worker loop.
        let (empty_tx, _) = bounded(0);
        let _ = std::mem::replace(&mut self.submit, empty_tx);
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

fn run_batcher<T, R, F>(rx: Receiver<Job<T, R>>, config: BatchConfig, handler: F)
where
    F: Fn(Vec<T>) -> Vec<R>,
{
    loop {
        // Block for the first job of a batch.
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return, // channel closed
        };
        let mut jobs = vec![first];
        let deadline = Deadline::after(config.flush_every);
        // Gather until full or the flush deadline passes.
        while jobs.len() < config.max_batch {
            if deadline.expired() {
                break;
            }
            match rx.recv_timeout(deadline.remaining()) {
                Ok(job) => jobs.push(job),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        let mut inputs = Vec::with_capacity(jobs.len());
        let mut responders = Vec::with_capacity(jobs.len());
        for job in jobs {
            inputs.push(job.input);
            responders.push(job.respond);
        }
        let results = handler(inputs);
        debug_assert_eq!(results.len(), responders.len());
        for (respond, result) in responders.into_iter().zip(results) {
            let _ = respond.send(result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn single_calls_round_trip() {
        let b: Batcher<u32, u32> = Batcher::spawn(BatchConfig::default(), |xs| {
            xs.into_iter().map(|x| x * 2).collect()
        });
        assert_eq!(b.call(21), Some(42));
    }

    #[test]
    fn concurrent_calls_are_batched() {
        let max_seen = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&max_seen);
        let b: Arc<Batcher<u32, u32>> = Arc::new(Batcher::spawn(
            BatchConfig {
                max_batch: 64,
                flush_every: Duration::from_millis(5),
                ..BatchConfig::default()
            },
            move |xs| {
                seen.fetch_max(xs.len(), Ordering::SeqCst);
                xs
            },
        ));
        let mut handles = Vec::new();
        for i in 0..32 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || b.call(i).unwrap()));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            max_seen.load(Ordering::SeqCst) > 1,
            "no batch larger than one was formed"
        );
    }

    #[test]
    fn try_call_sheds_load_when_the_queue_is_full() {
        // Gate the handler so the batcher thread blocks mid-batch while
        // the test fills the queue behind it.
        let gate = Arc::new(parking_lot::Mutex::new(()));
        let held = gate.lock();
        let handler_gate = Arc::clone(&gate);
        let b: Arc<Batcher<u32, u32>> = Arc::new(Batcher::spawn(
            BatchConfig {
                max_batch: 1,
                flush_every: Duration::from_micros(1),
                max_queue: 2,
            },
            move |xs| {
                let _open = handler_gate.lock();
                xs
            },
        ));
        // First call is consumed by the batcher thread, which then blocks
        // on the gate; park it in a helper thread since call() waits for
        // its response.
        let blocked = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || b.call(1))
        };
        // Wait for the batcher to pick the first job up, then fill the
        // two queue slots behind it.
        let deadline = Instant::now() + Duration::from_secs(5);
        while b.queue_depth() > 0 {
            assert!(Instant::now() < deadline, "batcher never started");
            std::thread::yield_now();
        }
        let mut waiters = Vec::new();
        for i in [2u32, 3] {
            let caller = Arc::clone(&b);
            waiters.push(std::thread::spawn(move || caller.call(i)));
            let deadline = Instant::now() + Duration::from_secs(5);
            while b.queue_depth() < i as usize - 1 {
                assert!(Instant::now() < deadline, "job {i} never queued");
                std::thread::yield_now();
            }
        }
        assert_eq!(b.try_call(4), Err(CallError::Overloaded));
        // Releasing the gate drains the queue; the shed request was never
        // enqueued, everything else completes.
        drop(held);
        assert_eq!(blocked.join().unwrap(), Some(1));
        let mut drained: Vec<u32> = waiters
            .into_iter()
            .map(|w| w.join().unwrap().unwrap())
            .collect();
        drained.sort_unstable();
        assert_eq!(drained, [2, 3]);
        // Out of overload: try_call succeeds again.
        assert_eq!(b.try_call(9), Ok(9));
    }

    #[test]
    fn full_batches_flush_immediately() {
        let b: Batcher<u32, u32> = Batcher::spawn(
            BatchConfig {
                max_batch: 1,
                flush_every: Duration::from_secs(10), // must not matter
                ..BatchConfig::default()
            },
            |xs| xs,
        );
        let start = Instant::now();
        assert_eq!(b.call(7), Some(7));
        assert!(start.elapsed() < Duration::from_secs(1));
    }
}
