//! A `batched-fn`-style request batcher for the real server.
//!
//! The paper's Rust server uses the `batched-fn` crate to gather
//! concurrent requests into GPU batches: requests accumulate in a buffer
//! of up to 1,024 entries which is flushed every two milliseconds. This
//! is the same mechanism on a crossbeam channel: handler threads submit
//! work and block on a per-request response channel; a dedicated batcher
//! thread drains the queue on size or deadline and hands whole batches to
//! the batch handler.

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of the batcher (paper defaults: 1,024 / 2 ms).
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Maximum requests fused into one batch.
    pub max_batch: usize,
    /// Maximum time a request waits for co-batched peers.
    pub flush_every: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 1024,
            flush_every: Duration::from_millis(2),
        }
    }
}

struct Job<T, R> {
    input: T,
    respond: Sender<R>,
}

/// A handle submitting work into the batcher.
pub struct Batcher<T, R> {
    submit: Sender<Job<T, R>>,
    worker: Option<JoinHandle<()>>,
}

impl<T: Send + 'static, R: Send + 'static> Batcher<T, R> {
    /// Spawns the batcher thread around a batch handler. The handler
    /// receives whole batches and returns one result per input, in order.
    pub fn spawn<F>(config: BatchConfig, handler: F) -> Batcher<T, R>
    where
        F: Fn(Vec<T>) -> Vec<R> + Send + 'static,
    {
        let (tx, rx) = bounded::<Job<T, R>>(config.max_batch * 4);
        let worker = std::thread::Builder::new()
            .name("etude-batcher".into())
            .spawn(move || run_batcher(rx, config, handler))
            .expect("spawn batcher thread");
        Batcher {
            submit: tx,
            worker: Some(worker),
        }
    }

    /// Submits one input and blocks until its result arrives.
    /// Returns `None` if the batcher has shut down.
    pub fn call(&self, input: T) -> Option<R> {
        let (tx, rx) = bounded(1);
        self.submit.send(Job { input, respond: tx }).ok()?;
        rx.recv().ok()
    }
}

impl<T, R> Drop for Batcher<T, R> {
    fn drop(&mut self) {
        // Closing the channel stops the worker loop.
        let (empty_tx, _) = bounded(0);
        let _ = std::mem::replace(&mut self.submit, empty_tx);
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

fn run_batcher<T, R, F>(rx: Receiver<Job<T, R>>, config: BatchConfig, handler: F)
where
    F: Fn(Vec<T>) -> Vec<R>,
{
    loop {
        // Block for the first job of a batch.
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return, // channel closed
        };
        let mut jobs = vec![first];
        let deadline = Instant::now() + config.flush_every;
        // Gather until full or the flush deadline passes.
        while jobs.len() < config.max_batch {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match rx.recv_timeout(remaining) {
                Ok(job) => jobs.push(job),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        let mut inputs = Vec::with_capacity(jobs.len());
        let mut responders = Vec::with_capacity(jobs.len());
        for job in jobs {
            inputs.push(job.input);
            responders.push(job.respond);
        }
        let results = handler(inputs);
        debug_assert_eq!(results.len(), responders.len());
        for (respond, result) in responders.into_iter().zip(results) {
            let _ = respond.send(result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_calls_round_trip() {
        let b: Batcher<u32, u32> = Batcher::spawn(BatchConfig::default(), |xs| {
            xs.into_iter().map(|x| x * 2).collect()
        });
        assert_eq!(b.call(21), Some(42));
    }

    #[test]
    fn concurrent_calls_are_batched() {
        let max_seen = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&max_seen);
        let b: Arc<Batcher<u32, u32>> = Arc::new(Batcher::spawn(
            BatchConfig {
                max_batch: 64,
                flush_every: Duration::from_millis(5),
            },
            move |xs| {
                seen.fetch_max(xs.len(), Ordering::SeqCst);
                xs
            },
        ));
        let mut handles = Vec::new();
        for i in 0..32 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || b.call(i).unwrap()));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            max_seen.load(Ordering::SeqCst) > 1,
            "no batch larger than one was formed"
        );
    }

    #[test]
    fn full_batches_flush_immediately() {
        let b: Batcher<u32, u32> = Batcher::spawn(
            BatchConfig {
                max_batch: 1,
                flush_every: Duration::from_secs(10), // must not matter
            },
            |xs| xs,
        );
        let start = Instant::now();
        assert_eq!(b.call(7), Some(7));
        assert!(start.elapsed() < Duration::from_secs(1));
    }
}
