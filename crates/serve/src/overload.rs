//! Criticality-aware overload control: the brownout ladder.
//!
//! PR 8's continuous batcher made overload *safe* (blown budgets shed
//! before compute); this module makes it *graceful*. Instead of the
//! binary serve-exactly-or-503, a retrieval backend under pressure
//! steps down a quality ladder, spending less compute per request as
//! measured queue delay burns a larger fraction of the deadline budget:
//!
//! | level | name      | what is served                              |
//! |-------|-----------|---------------------------------------------|
//! | 0     | exact     | full-precision exhaustive scan, full k      |
//! | 1     | quantized | int8 [`QuantizedIndex`] scan, full k        |
//! | 2     | reduced-k | int8 scan, [`LadderConfig::reduced_k`] items|
//! | 3     | fallback  | popularity fallback, no slot consumed       |
//!
//! Every response is stamped with [`BROWNOUT_HEADER`] and counted in
//! `/stats` (`brownout_quantized` / `brownout_reduced` /
//! `brownout_fallback`). The ladder preserves one invariant above all:
//! **a browned-out 200 always beats a 503 for `normal` and `critical`
//! traffic** — those classes are only ever refused outright when their
//! budget is already dead (serving a late fallback would still be
//! late).
//!
//! In front of the ladder sits an [`AdmissionController`]: an AIMD
//! concurrency limiter fed by measured service latency. Its refusals
//! are criticality-ordered — `shed-first` traffic is turned away (HTTP
//! 429 + `retry-after`) while `normal`/`critical` still ride the
//! ladder, so under a flash crowd the refusal mass lands almost
//! entirely on the class that opted into being shed.
//!
//! Deadline semantics are inherited from [`ContinuousBatcher`]: budgets
//! are anchored at wire-parse time and re-checked at dequeue, so *no
//! inference starts past its budget* regardless of brownout level.

use crate::contbatch::{request_budget, AdmitError, Admitted, ContinuousBatcher, ContinuousConfig};
use crate::http::{self, Method, Request, Response};
use crate::rustserver::{
    correlation_id, echo_request_id, nanos, note_trace, parse_prediction, shared_routes, trace_ctx,
    Degradation, DegradationPolicy, Handler, DEGRADED_HEADER,
};
use etude_control::{AdmissionConfig, AdmissionController, Criticality};
use etude_faults::Deadline;
use etude_models::retrieval::{encode_session_query, ExactIndex, MipsIndex, QuantizedIndex};
use etude_obs::{Recorder, Stage};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Response header naming the brownout level a request was served at
/// (`0`–`3`). Requests to the scatter/gather router inherit the
/// router's level via the same header on shard legs.
pub const BROWNOUT_HEADER: &str = "x-brownout-level";

/// One rung of the brownout ladder. Ordering is degradation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BrownoutLevel {
    /// Full-precision scan, full k.
    Exact,
    /// Int8 quantized scan, full k.
    Quantized,
    /// Int8 scan at a reduced k.
    ReducedK,
    /// Popularity fallback; consumes no inference slot.
    Fallback,
}

impl BrownoutLevel {
    /// Wire value for [`BROWNOUT_HEADER`].
    pub fn as_u8(&self) -> u8 {
        match self {
            BrownoutLevel::Exact => 0,
            BrownoutLevel::Quantized => 1,
            BrownoutLevel::ReducedK => 2,
            BrownoutLevel::Fallback => 3,
        }
    }

    /// Parses a wire value, saturating above the ladder's top.
    pub fn from_u8(v: u8) -> BrownoutLevel {
        match v {
            0 => BrownoutLevel::Exact,
            1 => BrownoutLevel::Quantized,
            2 => BrownoutLevel::ReducedK,
            _ => BrownoutLevel::Fallback,
        }
    }

    /// Reads an inherited level from a request header (absent → exact).
    pub fn from_request(req: &Request) -> BrownoutLevel {
        req.headers
            .get(BROWNOUT_HEADER)
            .and_then(|v| v.trim().parse::<u8>().ok())
            .map(BrownoutLevel::from_u8)
            .unwrap_or(BrownoutLevel::Exact)
    }

    /// Human label used in bench reports.
    pub fn name(&self) -> &'static str {
        match self {
            BrownoutLevel::Exact => "exact",
            BrownoutLevel::Quantized => "quantized",
            BrownoutLevel::ReducedK => "reduced-k",
            BrownoutLevel::Fallback => "fallback",
        }
    }
}

/// Brownout-ladder tuning: at which fraction of the deadline budget the
/// predicted queue delay pushes requests down each rung.
#[derive(Debug, Clone)]
pub struct LadderConfig {
    /// Master switch; off = always exact (admission may still refuse).
    pub enabled: bool,
    /// Burn fraction at which the int8 rung engages.
    pub quantized_at: f64,
    /// Burn fraction at which k is reduced.
    pub reduced_k_at: f64,
    /// Burn fraction past which only the fallback is worth serving.
    pub fallback_at: f64,
    /// k served on the reduced-k rung.
    pub reduced_k: usize,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            enabled: true,
            quantized_at: 0.25,
            reduced_k_at: 0.5,
            fallback_at: 0.75,
            reduced_k: 5,
        }
    }
}

/// Configuration of an overload-controlled retrieval backend.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Continuous-batcher shape (slots, queue bound, default budget).
    pub batch: ContinuousConfig,
    /// Top-k served on the exact and quantized rungs.
    pub k: usize,
    /// Admission control; `None` disables the limiter entirely.
    pub admission: Option<AdmissionConfig>,
    /// The brownout ladder.
    pub ladder: LadderConfig,
    /// Artificial per-request service-time floor (scaled down by rung:
    /// quantized 40%, reduced-k 15%). Zero in production; benches and
    /// chaos tests use it to pin a known capacity so "5× capacity" is a
    /// statement, not a guess.
    pub service_floor: Duration,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            batch: ContinuousConfig::default(),
            k: 21,
            admission: Some(AdmissionConfig::default()),
            ladder: LadderConfig::default(),
            service_floor: Duration::ZERO,
        }
    }
}

/// Shared overload state: the admission controller plus the measured
/// queue-delay EWMA that drives the ladder.
pub struct OverloadState {
    admission: Option<AdmissionController>,
    ladder: LadderConfig,
    /// EWMA of the wait a request suffered before compute (dispatch +
    /// batcher queue), in microseconds. `new = old·7/8 + sample/8`.
    ewma_wait_us: AtomicU64,
    /// Construction time; timestamps admission-journal entries.
    epoch: Instant,
}

impl OverloadState {
    fn new(admission: Option<AdmissionConfig>, ladder: LadderConfig) -> OverloadState {
        OverloadState {
            admission: admission.map(AdmissionController::new),
            ladder,
            ewma_wait_us: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn observe_wait(&self, wait: Duration) {
        let sample = wait.as_micros().min(u64::MAX as u128) as u64;
        let old = self.ewma_wait_us.load(Ordering::Relaxed);
        self.ewma_wait_us
            .store(old - old / 8 + sample / 8, Ordering::Relaxed);
    }

    /// Picks the rung for a request whose budget has `remaining` left:
    /// the predicted queue delay (the EWMA) as a fraction of the
    /// remaining budget, against the configured thresholds.
    pub fn level_for(&self, remaining: Duration) -> BrownoutLevel {
        if !self.ladder.enabled {
            return BrownoutLevel::Exact;
        }
        let remaining_us = remaining.as_micros().max(1) as f64;
        let burn = self.ewma_wait_us.load(Ordering::Relaxed) as f64 / remaining_us;
        if burn >= self.ladder.fallback_at {
            BrownoutLevel::Fallback
        } else if burn >= self.ladder.reduced_k_at {
            BrownoutLevel::ReducedK
        } else if burn >= self.ladder.quantized_at {
            BrownoutLevel::Quantized
        } else {
            BrownoutLevel::Exact
        }
    }

    /// The admission controller, when one is installed.
    pub fn admission(&self) -> Option<&AdmissionController> {
        self.admission.as_ref()
    }

    /// Current queue-delay EWMA.
    pub fn ewma_wait(&self) -> Duration {
        Duration::from_micros(self.ewma_wait_us.load(Ordering::Relaxed))
    }
}

/// What a ladder worker computes per request.
struct OverloadReply {
    ids: Vec<u32>,
    scores: Vec<f32>,
    inference: Duration,
}

type LadderJob = (Vec<u32>, BrownoutLevel);

/// Builds an overload-controlled retrieval backend over a `[catalog ×
/// dim]` embedding table: admission → ladder → continuous batcher →
/// exact/int8 scan. Returns the route table and the shared
/// [`OverloadState`] so callers (benches, chaos tests) can read the
/// learned limit and drive assertions.
pub fn overload_routes_with_state(
    table: Vec<f32>,
    catalog_size: usize,
    dim: usize,
    query_seed: u64,
    config: OverloadConfig,
    recorder: Arc<Recorder>,
) -> (Handler, Arc<OverloadState>) {
    assert_eq!(table.len(), catalog_size * dim, "table shape mismatch");
    let quantized = QuantizedIndex::from_f32(&table, catalog_size, dim);
    let exact = ExactIndex::new(table, catalog_size, dim);
    let state = Arc::new(OverloadState::new(
        config.admission.clone(),
        config.ladder.clone(),
    ));
    let k = config.k.max(1);
    let reduced_k = config.ladder.reduced_k.clamp(1, k);
    let floor = config.service_floor;
    let batcher: Arc<ContinuousBatcher<LadderJob, OverloadReply>> = Arc::new(
        ContinuousBatcher::spawn(config.batch.clone(), move |(items, level): LadderJob| {
            let t = Instant::now();
            let query = encode_session_query(&items, dim, query_seed);
            let (ids, scores) = match level {
                BrownoutLevel::Exact => exact.search(&query, k),
                BrownoutLevel::Quantized => quantized.search(&query, k),
                // Reduced-k rides the int8 index too: each rung
                // strictly cheaper than the one above it.
                _ => quantized.search(&query, reduced_k),
            };
            let budgeted = match level {
                BrownoutLevel::Exact => floor,
                BrownoutLevel::Quantized => floor.mul_f64(0.4),
                _ => floor.mul_f64(0.15),
            };
            if let Some(pad) = budgeted.checked_sub(t.elapsed()) {
                if !pad.is_zero() {
                    std::thread::sleep(pad);
                }
            }
            OverloadReply {
                ids,
                scores,
                inference: t.elapsed(),
            }
        }),
    );
    // The fallback body is PR 3's popularity fallback, shared with the
    // model-serving tier via `Degradation`.
    let degradation = Degradation::new(
        DegradationPolicy {
            top_k: k,
            ..DegradationPolicy::default()
        },
        catalog_size,
    );
    let fallback_body = degradation.fallback_body.clone();
    let default_deadline = config.batch.default_deadline;
    let route_state = Arc::clone(&state);
    let handler: Handler = Arc::new(move |req: &Request| -> Response {
        if let Some(resp) = shared_routes(req, &recorder) {
            return resp;
        }
        match (req.method, req.path.as_str()) {
            (Method::Post, "/predictions") => {
                let t_total = Instant::now();
                let (rid, echo) = correlation_id(req);
                let mark = recorder.exemplars().begin();
                let t_parse = Instant::now();
                let items = match parse_prediction(&req.body, catalog_size) {
                    Ok(items) => items,
                    Err(resp) => return echo_request_id(resp, echo),
                };
                let parse = t_parse.elapsed();
                let crit = Criticality::from_header(
                    req.headers.get(Criticality::HEADER).map(String::as_str),
                );
                // Same anchoring as the model tier: the budget starts
                // at wire-parse time, capped so a hostile header can't
                // overflow the deadline instant.
                let budget = request_budget(req, default_deadline).min(Duration::from_secs(86_400));
                let deadline = Deadline::at(req.arrival + budget);
                let dispatch_wait = t_total.saturating_duration_since(req.arrival);
                recorder.set_queue_depth(batcher.queue_depth() as u64);
                if deadline.expired() {
                    // Dead on arrival: a fallback would still be late.
                    recorder.note_shed();
                    if let Some(a) = route_state.admission() {
                        a.on_shed(route_state.now());
                    }
                    return echo_request_id(
                        Response::error(503, "deadline exhausted before inference")
                            .with_header("retry-after", "1".to_string()),
                        echo,
                    );
                }
                // ── Admission ───────────────────────────────────────
                let admitted = match route_state.admission() {
                    Some(a) => {
                        recorder.set_admission_limit_milli(a.limit_milli());
                        a.try_acquire(crit)
                    }
                    None => true,
                };
                if !admitted {
                    return match crit {
                        // The class that opted into shedding is turned
                        // away outright — 429, not 503: refusal happened
                        // *before* queueing and is retryable elsewhere.
                        Criticality::ShedFirst => {
                            recorder.note_refused();
                            echo_request_id(
                                Response::error(429, "admission refused, retry later")
                                    .with_header("retry-after", "1".to_string()),
                                echo,
                            )
                        }
                        // A browned-out 200 beats a 503: over-limit
                        // normal/critical traffic gets the fallback,
                        // which costs no inference slot.
                        _ => {
                            recorder.note_brownout(BrownoutLevel::Fallback.as_u8());
                            recorder.note_degraded();
                            serve_fallback(&fallback_body, echo)
                        }
                    };
                }
                let admission_t0 = Instant::now();
                // ── Ladder ──────────────────────────────────────────
                let level = route_state.level_for(deadline.remaining());
                if level == BrownoutLevel::Fallback {
                    // The ladder says queueing would burn the budget:
                    // serve the fallback inline, return the token
                    // unused (no service-latency signal to feed back).
                    if let Some(a) = route_state.admission() {
                        a.abandon();
                    }
                    recorder.note_brownout(BrownoutLevel::Fallback.as_u8());
                    recorder.note_degraded();
                    return serve_fallback(&fallback_body, echo);
                }
                match batcher.try_call((items, level), deadline) {
                    Ok(Admitted {
                        result: reply,
                        queue_wait,
                    }) => {
                        if let Some(a) = route_state.admission() {
                            a.release(route_state.now(), admission_t0.elapsed());
                            recorder.set_admission_limit_milli(a.limit_milli());
                        }
                        let queued = dispatch_wait + queue_wait;
                        route_state.observe_wait(queued);
                        recorder.note_brownout(level.as_u8());
                        let t_ser = Instant::now();
                        let body = http::encode_recommendations(&reply.ids, &reply.scores);
                        let resp = echo_request_id(
                            Response::ok(body)
                                .with_header(BROWNOUT_HEADER, level.as_u8().to_string())
                                .with_header(
                                    "x-inference-duration-micros",
                                    reply.inference.as_micros().to_string(),
                                ),
                            echo,
                        );
                        let serialize = t_ser.elapsed();
                        let total = req.arrival.elapsed();
                        let stages = [
                            (Stage::Parse, nanos(parse)),
                            (Stage::Queue, nanos(queued)),
                            (Stage::Inference, nanos(reply.inference)),
                            (Stage::Serialize, nanos(serialize)),
                            (Stage::Total, nanos(total)),
                        ];
                        for &(stage, ns) in &stages {
                            recorder.record(rid, stage, ns);
                        }
                        match echo {
                            Some(id) => {
                                recorder.exemplars().offer(id, &stages, nanos(total), &mark)
                            }
                            None => recorder.exemplars().offer(
                                &format!("{rid:016x}"),
                                &stages,
                                nanos(total),
                                &mark,
                            ),
                        }
                        note_trace(&recorder, trace_ctx(req), resp, &stages)
                    }
                    Err(AdmitError::Expired) => {
                        // The budget died in the queue; the wait was at
                        // least the remaining budget — feed that back so
                        // the ladder reacts even while nothing is being
                        // served.
                        if let Some(a) = route_state.admission() {
                            a.abandon();
                            a.on_shed(route_state.now());
                        }
                        route_state.observe_wait(deadline.remaining().max(budget));
                        recorder.note_shed();
                        echo_request_id(
                            Response::error(503, "deadline exhausted before inference")
                                .with_header("retry-after", "1".to_string()),
                            echo,
                        )
                    }
                    Err(AdmitError::Overloaded) => {
                        if let Some(a) = route_state.admission() {
                            a.abandon();
                            a.on_shed(route_state.now());
                        }
                        match crit {
                            Criticality::ShedFirst => {
                                recorder.note_shed();
                                echo_request_id(
                                    Response::error(503, "server overloaded, retry later")
                                        .with_header("retry-after", "1".to_string()),
                                    echo,
                                )
                            }
                            // Queue full, budget alive: the browned-out
                            // 200 still beats the 503.
                            _ => {
                                recorder.note_brownout(BrownoutLevel::Fallback.as_u8());
                                recorder.note_degraded();
                                serve_fallback(&fallback_body, echo)
                            }
                        }
                    }
                    Err(AdmitError::Closed) => {
                        if let Some(a) = route_state.admission() {
                            a.abandon();
                        }
                        echo_request_id(Response::error(503, "batcher unavailable"), echo)
                    }
                }
            }
            _ => Response::error(404, "no such route"),
        }
    });
    (handler, state)
}

/// [`overload_routes_with_state`] without the state handle.
pub fn overload_routes(
    table: Vec<f32>,
    catalog_size: usize,
    dim: usize,
    query_seed: u64,
    config: OverloadConfig,
    recorder: Arc<Recorder>,
) -> Handler {
    overload_routes_with_state(table, catalog_size, dim, query_seed, config, recorder).0
}

fn serve_fallback(body: &str, echo: Option<&str>) -> Response {
    echo_request_id(
        Response::ok(body.to_string())
            .with_header(DEGRADED_HEADER, "1".to_string())
            .with_header(BROWNOUT_HEADER, BrownoutLevel::Fallback.as_u8().to_string()),
        echo,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(c: usize, d: usize) -> Vec<f32> {
        (0..c * d)
            .map(|i| ((i * 37 + 11) % 97) as f32 / 97.0)
            .collect()
    }

    fn backend(config: OverloadConfig) -> (Handler, Arc<OverloadState>) {
        overload_routes_with_state(table(64, 8), 64, 8, 7, config, Arc::new(Recorder::new()))
    }

    #[test]
    fn exact_level_serves_full_k_with_header() {
        let (h, _) = backend(OverloadConfig {
            k: 5,
            ..OverloadConfig::default()
        });
        let resp = h(&Request::post("/predictions", "1,2,3"));
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.headers.get(BROWNOUT_HEADER).map(String::as_str),
            Some("0")
        );
        let body = String::from_utf8(resp.body.to_vec()).unwrap();
        assert_eq!(body.split(',').count(), 5, "full k items served: {body}");
    }

    #[test]
    fn ladder_levels_order_and_round_trip() {
        for v in 0..=4u8 {
            let level = BrownoutLevel::from_u8(v);
            assert_eq!(BrownoutLevel::from_u8(level.as_u8()), level);
        }
        assert!(BrownoutLevel::Exact < BrownoutLevel::Quantized);
        assert!(BrownoutLevel::Quantized < BrownoutLevel::ReducedK);
        assert!(BrownoutLevel::ReducedK < BrownoutLevel::Fallback);
        assert_eq!(BrownoutLevel::from_u8(9), BrownoutLevel::Fallback);
    }

    #[test]
    fn burn_fraction_picks_the_rung() {
        let state = OverloadState::new(None, LadderConfig::default());
        // EWMA 0 → exact regardless of budget.
        assert_eq!(
            state.level_for(Duration::from_millis(100)),
            BrownoutLevel::Exact
        );
        // Pump the EWMA to ~40 ms of measured wait.
        for _ in 0..200 {
            state.observe_wait(Duration::from_millis(40));
        }
        assert_eq!(
            state.level_for(Duration::from_millis(500)),
            BrownoutLevel::Exact
        );
        assert_eq!(
            state.level_for(Duration::from_millis(120)),
            BrownoutLevel::Quantized
        );
        assert_eq!(
            state.level_for(Duration::from_millis(70)),
            BrownoutLevel::ReducedK
        );
        assert_eq!(
            state.level_for(Duration::from_millis(20)),
            BrownoutLevel::Fallback
        );
        // Ladder off: always exact.
        let off = OverloadState::new(
            None,
            LadderConfig {
                enabled: false,
                ..LadderConfig::default()
            },
        );
        for _ in 0..200 {
            off.observe_wait(Duration::from_millis(40));
        }
        assert_eq!(
            off.level_for(Duration::from_millis(20)),
            BrownoutLevel::Exact
        );
    }

    #[test]
    fn dead_on_arrival_budgets_get_503_even_for_critical() {
        let (h, _) = backend(OverloadConfig::default());
        let resp = h(&Request::post("/predictions", "1,2")
            .with_header(crate::contbatch::DEADLINE_HEADER, "0")
            .with_header(Criticality::HEADER, "critical"));
        assert_eq!(resp.status, 503);
    }

    #[test]
    fn admission_refusal_is_criticality_ordered() {
        // A zero-capacity admission window: everything is over-limit.
        let (h, state) = backend(OverloadConfig {
            admission: Some(AdmissionConfig {
                initial: 0.0,
                min_limit: 0.0,
                headroom: [0.0, 0.0, 0.0],
                ..AdmissionConfig::default()
            }),
            ..OverloadConfig::default()
        });
        let shed =
            h(&Request::post("/predictions", "1").with_header(Criticality::HEADER, "shed-first"));
        assert_eq!(shed.status, 429, "shed-first is refused outright");
        assert!(shed.headers.contains_key("retry-after"));
        let normal = h(&Request::post("/predictions", "1"));
        assert_eq!(normal.status, 200, "normal gets the browned-out 200");
        assert_eq!(
            normal.headers.get(BROWNOUT_HEADER).map(String::as_str),
            Some("3")
        );
        let critical =
            h(&Request::post("/predictions", "1").with_header(Criticality::HEADER, "critical"));
        assert_eq!(critical.status, 200);
        assert_eq!(
            critical.headers.get(BROWNOUT_HEADER).map(String::as_str),
            Some("3")
        );
        // Limiter-level refusals hit all three classes; only the
        // shed-first one surfaced as a client-visible 429.
        assert_eq!(
            state.admission().unwrap().refused(Criticality::ShedFirst),
            1
        );
        assert_eq!(state.admission().unwrap().refused_total(), 3);
    }

    #[test]
    fn quantized_rung_is_served_when_inherited() {
        // Drive the EWMA up so the ladder picks the quantized rung for
        // a mid-sized budget, then check the header reports it.
        let (h, state) = backend(OverloadConfig {
            admission: None,
            ..OverloadConfig::default()
        });
        for _ in 0..200 {
            state.observe_wait(Duration::from_millis(40));
        }
        let resp = h(&Request::post("/predictions", "1,2,3")
            .with_header(crate::contbatch::DEADLINE_HEADER, "120"));
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.headers.get(BROWNOUT_HEADER).map(String::as_str),
            Some("1")
        );
    }
}
