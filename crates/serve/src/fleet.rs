//! The fleet aggregation endpoint.
//!
//! A deployment of N server pods exposes N separate `/stats` documents;
//! operators (and the benchmark harness) want *one* view: merged
//! per-stage latency histograms, per-replica skew, and per-pod health
//! counters. This module provides that view as a route table for a
//! standalone aggregator server:
//!
//! * `GET /fleet` — scrape every peer's `/stats`, merge, render the
//!   [`etude_obs::FleetSnapshot`] JSON document,
//! * `GET /fleet/metrics` — the same snapshot as Prometheus text,
//! * `GET /ping` — aggregator readiness.
//!
//! Scraping happens on request (pull model, like Prometheus federation):
//! the aggregator holds no state between scrapes, so a fresh `/fleet`
//! is always a consistent point-in-time merge. Peers that fail to answer
//! within [`SCRAPE_TIMEOUT`] are counted as `unreachable` rather than
//! failing the whole view — a half-dead fleet is exactly when you need
//! the endpoint most.
//!
//! The merge itself happens at bucket resolution on the wire-carried
//! sparse histogram counts, which makes it *bit-identical* regardless of
//! scrape order or which process performs it (see
//! [`etude_obs::fleet::FleetSnapshot::merged_stage`]).

use crate::client::HttpClient;
use crate::http::{Method, Request, Response};
use crate::rustserver::Handler;
use etude_obs::fleet::fleet_from_bodies;
use etude_obs::FleetSnapshot;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// How long one peer scrape may take before the pod is declared
/// unreachable for this snapshot. Short: `/stats` is a memory read on
/// the pod's side, so a slow answer means a sick pod, and the fleet
/// view must not block behind it.
pub const SCRAPE_TIMEOUT: Duration = Duration::from_millis(500);

/// Scrapes one peer's `/stats`, yielding the raw JSON body.
fn scrape_one(addr: SocketAddr) -> Option<String> {
    let mut client = HttpClient::connect_with_timeout(addr, SCRAPE_TIMEOUT).ok()?;
    let resp = client.request(&Request::get("/stats")).ok()?;
    if resp.status != 200 {
        return None;
    }
    String::from_utf8(resp.body.to_vec()).ok()
}

/// Scrapes every peer and assembles the fleet snapshot. Unreachable or
/// unparseable peers are counted, not fatal.
pub fn scrape_fleet(peers: &[SocketAddr]) -> FleetSnapshot {
    let bodies: Vec<Option<String>> = peers.iter().map(|&addr| scrape_one(addr)).collect();
    fleet_from_bodies(bodies.iter().map(|b| b.as_deref()))
}

/// Failed scrapes in a row before a pod is declared unhealthy.
pub const DEFAULT_UNHEALTHY_AFTER: u32 = 3;

/// A stateful fleet scraper: the point-in-time merge of [`scrape_fleet`]
/// plus a per-peer consecutive-failure count. One failed scrape is a
/// blip (`unreachable` in that snapshot); [`Self::unhealthy_after`]
/// failed scrapes *in a row* mark the pod `unhealthy` in every snapshot
/// until its next good scrape, which recovers it immediately. The
/// distinction is what an autoscaler or alert wants: page on dead pods,
/// not on one dropped scrape.
pub struct FleetScraper {
    peers: Vec<SocketAddr>,
    unhealthy_after: u32,
    strikes: parking_lot::Mutex<Vec<u32>>,
}

impl FleetScraper {
    /// A scraper over a fixed peer set with the default threshold.
    pub fn new(peers: Vec<SocketAddr>) -> FleetScraper {
        let strikes = parking_lot::Mutex::new(vec![0; peers.len()]);
        FleetScraper {
            peers,
            unhealthy_after: DEFAULT_UNHEALTHY_AFTER,
            strikes,
        }
    }

    /// Overrides the consecutive-failure threshold (minimum 1).
    pub fn with_unhealthy_after(mut self, n: u32) -> FleetScraper {
        self.unhealthy_after = n.max(1);
        self
    }

    /// The configured consecutive-failure threshold.
    pub fn unhealthy_after(&self) -> u32 {
        self.unhealthy_after
    }

    /// Scrapes every peer, updates the strike counts, and returns the
    /// snapshot with its unhealthy-pod count attached.
    pub fn scrape(&self) -> FleetSnapshot {
        let bodies: Vec<Option<String>> = self.peers.iter().map(|&a| scrape_one(a)).collect();
        let mut strikes = self.strikes.lock();
        for (count, body) in strikes.iter_mut().zip(&bodies) {
            match body {
                Some(_) => *count = 0,
                None => *count = count.saturating_add(1),
            }
        }
        let unhealthy = strikes
            .iter()
            .filter(|&&c| c >= self.unhealthy_after)
            .count();
        drop(strikes);
        fleet_from_bodies(bodies.iter().map(|b| b.as_deref())).with_unhealthy(unhealthy)
    }

    /// Pods currently past the unhealthy threshold (as of the last
    /// scrape).
    pub fn unhealthy_pods(&self) -> usize {
        self.strikes
            .lock()
            .iter()
            .filter(|&&c| c >= self.unhealthy_after)
            .count()
    }
}

/// Builds the aggregator route table over a fixed peer set (pod
/// addresses are deployment-time configuration, exactly like a
/// Prometheus static scrape config). Both fleet routes share one
/// [`FleetScraper`], so unhealthy verdicts accumulate across requests.
pub fn fleet_routes(peers: Vec<SocketAddr>) -> Handler {
    let scraper = Arc::new(FleetScraper::new(peers));
    Arc::new(move |req: &Request| -> Response {
        match (req.method, req.path.as_str()) {
            (Method::Get, "/ping") => Response::ok("pong"),
            (Method::Get, "/fleet") => Response::ok(scraper.scrape().render_json())
                .with_header("content-type", "application/json".to_string()),
            (Method::Get, "/fleet/metrics") => Response::ok(scraper.scrape().render_prometheus())
                .with_header("content-type", "text/plain; version=0.0.4".to_string()),
            _ => Response::error(404, "no such route"),
        }
    })
}
