//! A non-blocking, epoll-style event-loop server — the 100k-connection
//! rewrite of [`crate::rustserver`]'s accept/read/write path.
//!
//! The thread-per-connection baseline (kept, selected by
//! `etude_core::ServingMode`, as the architectural comparison point)
//! spends one OS thread scanning every connection it owns; at tens of
//! thousands of open keep-alive connections the scan itself saturates
//! the host. This module replaces it with the classic reactor shape:
//!
//! * a **portable poller trait** ([`Poller`]) over readiness APIs, with
//!   an edge-free level-triggered epoll backend on Linux
//!   ([`EpollPoller`], raw `std::os::fd` + FFI — no external crates)
//!   and a `poll(2)` fallback ([`PollPoller`]) everywhere else
//!   (selectable via `ETUDE_POLLER=poll` for A/B testing),
//! * **single-digit event-loop threads** ([`ReactorConfig::event_loops`])
//!   owning per-connection state machines that reuse the incremental
//!   [`crate::http`] parser and the blocking server's buffering caps
//!   verbatim — idle connections cost one registration, not a thread or
//!   a scan,
//! * a small **dispatch pool** ([`ReactorConfig::dispatch_threads`])
//!   running the (possibly blocking, e.g. continuous-batched) route
//!   [`Handler`]s off-loop, with per-connection response sequencing so
//!   pipelined requests answer in order even when handlers finish out
//!   of order.
//!
//! Behavior is bit-compatible with the blocking server — same routes,
//! same malformed-request 500s, same oversized-body rejection, same
//! [`crate::rustserver::RESET_MARKER`] chaos semantics, same write-stall
//! eviction — which the `reactor_protocol` test suite locks in by
//! running every scenario against both flavours.

use crate::http::{self, Response};
use crate::rustserver::{assemble_handle, Handler, ServerHandle, RESET_MARKER};
use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, Sender};
use etude_metrics::hdr::Histogram;
use etude_obs::{profile_scope, ReactorTelemetry, Recorder};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Raw bindings to the handful of poller syscalls the reactor needs.
/// Declared here instead of pulling in a `libc` dependency: the symbols
/// live in the C library every `std` binary already links.
mod sys {
    /// `epoll_event`. The kernel packs it **only on x86-64** (12 bytes,
    /// `data` at offset 4); every other Linux arch uses natural
    /// alignment (16 bytes, `data` at offset 8). Mirroring the per-arch
    /// layout exactly is what makes the FFI sound — a packed struct on
    /// aarch64 would make `epoll_wait` write past the buffer.
    #[cfg(target_os = "linux")]
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(target_os = "linux")]
    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_ADD: i32 = 1;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_DEL: i32 = 2;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_MOD: i32 = 3;
    #[cfg(target_os = "linux")]
    pub const EPOLLIN: u32 = 0x001;
    #[cfg(target_os = "linux")]
    pub const EPOLLOUT: u32 = 0x004;
    #[cfg(target_os = "linux")]
    pub const EPOLLERR: u32 = 0x008;
    #[cfg(target_os = "linux")]
    pub const EPOLLHUP: u32 = 0x010;

    /// `struct pollfd`, identical on every POSIX platform we target.
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    #[cfg(target_os = "linux")]
    pub type Nfds = u64;
    #[cfg(not(target_os = "linux"))]
    pub type Nfds = u32;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: Nfds, timeout: i32) -> i32;
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    /// `struct rlimit` for `RLIMIT_NOFILE` manipulation (both fields
    /// are `u64` on the 64-bit platforms we build for).
    #[repr(C)]
    pub struct Rlimit {
        pub cur: u64,
        pub max: u64,
    }

    #[cfg(target_os = "linux")]
    pub const RLIMIT_NOFILE: i32 = 7;
    #[cfg(not(target_os = "linux"))]
    pub const RLIMIT_NOFILE: i32 = 8;

    extern "C" {
        pub fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        pub fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }
}

/// Readiness interest for one registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable.
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
    /// Registered but dormant (parked connection).
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: usize,
    /// Bytes (or an accept/EOF) are waiting.
    pub readable: bool,
    /// The socket can take more bytes.
    pub writable: bool,
    /// The peer hung up or the fd errored; treat as readable-to-EOF.
    pub closed: bool,
}

/// A portable readiness poller: the one seam between the reactor and
/// the OS. Implementations are level-triggered — an fd that is still
/// ready reappears on the next [`Poller::wait`].
pub trait Poller: Send {
    /// Starts watching `fd` under `token`.
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> std::io::Result<()>;
    /// Changes an existing registration's interest.
    fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> std::io::Result<()>;
    /// Stops watching `fd`.
    fn deregister(&mut self, fd: RawFd) -> std::io::Result<()>;
    /// Blocks up to `timeout` for readiness, appending into `events`
    /// (cleared first). Returns the number of events delivered.
    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> std::io::Result<usize>;
    /// Backend name for logs and bench headers.
    fn name(&self) -> &'static str;
}

/// The Linux epoll backend: O(ready) wakeups regardless of how many
/// tens of thousands of connections are registered.
#[cfg(target_os = "linux")]
pub struct EpollPoller {
    epfd: std::os::fd::OwnedFd,
    buf: Vec<sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    /// Creates an epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> std::io::Result<EpollPoller> {
        // EPOLL_CLOEXEC == O_CLOEXEC == 0o2000000 on Linux.
        let fd = unsafe { sys::epoll_create1(0o2000000) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(EpollPoller {
            epfd: unsafe { std::os::fd::FromRawFd::from_raw_fd(fd) },
            buf: Vec::with_capacity(1024),
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: usize, interest: Interest) -> std::io::Result<()> {
        let mut events = 0u32;
        if interest.read {
            events |= sys::EPOLLIN;
        }
        if interest.write {
            events |= sys::EPOLLOUT;
        }
        let mut ev = sys::EpollEvent {
            events,
            data: token as u64,
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Poller for EpollPoller {
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    fn deregister(&mut self, fd: RawFd) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, Interest::NONE)
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> std::io::Result<usize> {
        events.clear();
        // `maxevents` must never exceed the allocation the kernel
        // writes into: reserve up to the floor first, then derive the
        // count from the actual capacity.
        self.buf.clear();
        self.buf.reserve(64);
        let cap = self.buf.capacity();
        let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        let n = unsafe {
            sys::epoll_wait(
                self.epfd.as_raw_fd(),
                self.buf.as_mut_ptr(),
                cap as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let e = std::io::Error::last_os_error();
            if e.kind() == ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        // SAFETY: the kernel initialised the first `n` entries.
        unsafe { self.buf.set_len(n as usize) };
        for ev in &self.buf {
            let bits = ev.events;
            events.push(Event {
                token: ev.data as usize,
                readable: bits & sys::EPOLLIN != 0,
                writable: bits & sys::EPOLLOUT != 0,
                closed: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(events.len())
    }

    fn name(&self) -> &'static str {
        "epoll"
    }
}

/// The portable `poll(2)` fallback: O(registered) per wait, fine for
/// hundreds of connections and any POSIX platform without epoll.
pub struct PollPoller {
    entries: Vec<(RawFd, usize, Interest)>,
    fds: Vec<sys::PollFd>,
}

impl PollPoller {
    /// Creates an empty poll set.
    pub fn new() -> PollPoller {
        PollPoller {
            entries: Vec::new(),
            fds: Vec::new(),
        }
    }
}

impl Default for PollPoller {
    fn default() -> Self {
        PollPoller::new()
    }
}

impl Poller for PollPoller {
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> std::io::Result<()> {
        if self.entries.iter().any(|&(f, _, _)| f == fd) {
            return Err(std::io::Error::new(
                ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.entries.push((fd, token, interest));
        Ok(())
    }

    fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> std::io::Result<()> {
        for e in &mut self.entries {
            if e.0 == fd {
                e.1 = token;
                e.2 = interest;
                return Ok(());
            }
        }
        Err(std::io::Error::new(
            ErrorKind::NotFound,
            "fd not registered",
        ))
    }

    fn deregister(&mut self, fd: RawFd) -> std::io::Result<()> {
        let before = self.entries.len();
        self.entries.retain(|&(f, _, _)| f != fd);
        if self.entries.len() == before {
            return Err(std::io::Error::new(
                ErrorKind::NotFound,
                "fd not registered",
            ));
        }
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> std::io::Result<usize> {
        events.clear();
        self.fds.clear();
        for &(fd, _, interest) in &self.entries {
            let mut mask = 0i16;
            if interest.read {
                mask |= sys::POLLIN;
            }
            if interest.write {
                mask |= sys::POLLOUT;
            }
            self.fds.push(sys::PollFd {
                fd,
                events: mask,
                revents: 0,
            });
        }
        let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        let n = unsafe {
            sys::poll(
                self.fds.as_mut_ptr(),
                self.fds.len() as sys::Nfds,
                timeout_ms,
            )
        };
        if n < 0 {
            let e = std::io::Error::last_os_error();
            if e.kind() == ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        for (pfd, &(_, token, _)) in self.fds.iter().zip(&self.entries) {
            if pfd.revents == 0 {
                continue;
            }
            events.push(Event {
                token,
                readable: pfd.revents & sys::POLLIN != 0,
                writable: pfd.revents & sys::POLLOUT != 0,
                closed: pfd.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0,
            });
        }
        Ok(events.len())
    }

    fn name(&self) -> &'static str {
        "poll"
    }
}

/// The backend [`new_poller`] will build, without building one: what
/// bench headers and results record so a run is reproducible from its
/// own output. Honors `ETUDE_POLLER=poll` like the real constructor.
pub fn poller_backend_name() -> &'static str {
    if std::env::var("ETUDE_POLLER").as_deref() == Ok("poll") {
        return "poll";
    }
    #[cfg(target_os = "linux")]
    {
        "epoll"
    }
    #[cfg(not(target_os = "linux"))]
    {
        "poll"
    }
}

/// Builds the platform's best poller: epoll on Linux, `poll(2)`
/// elsewhere. `ETUDE_POLLER=poll` forces the fallback for A/B runs.
pub fn new_poller() -> std::io::Result<Box<dyn Poller>> {
    if std::env::var("ETUDE_POLLER").as_deref() == Ok("poll") {
        return Ok(Box::new(PollPoller::new()));
    }
    #[cfg(target_os = "linux")]
    {
        Ok(Box::new(EpollPoller::new()?))
    }
    #[cfg(not(target_os = "linux"))]
    {
        Ok(Box::new(PollPoller::new()))
    }
}

/// Raises `RLIMIT_NOFILE` toward `target` file descriptors (soft and,
/// when permitted, hard), returning the resulting soft limit. Callers
/// opening tens of thousands of sockets (the 10k-idle smoke test, the
/// saturation bench) size themselves off the returned value instead of
/// assuming the raise succeeded.
pub fn raise_nofile_limit(target: u64) -> std::io::Result<u64> {
    let mut cur = sys::Rlimit { cur: 0, max: 0 };
    if unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut cur) } != 0 {
        return Err(std::io::Error::last_os_error());
    }
    if cur.cur >= target {
        return Ok(cur.cur);
    }
    // Root (CAP_SYS_RESOURCE) may raise the hard limit too; try the
    // ambitious set first and fall back to maxing the soft limit.
    let want = sys::Rlimit {
        cur: target,
        max: cur.max.max(target),
    };
    if unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &want) } == 0 {
        return Ok(target);
    }
    let capped = sys::Rlimit {
        cur: cur.max,
        max: cur.max,
    };
    if unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &capped) } == 0 {
        return Ok(cur.max);
    }
    Ok(cur.cur)
}

/// The process's current soft `RLIMIT_NOFILE`.
pub fn nofile_limit() -> std::io::Result<u64> {
    let mut cur = sys::Rlimit { cur: 0, max: 0 };
    if unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut cur) } != 0 {
        return Err(std::io::Error::last_os_error());
    }
    Ok(cur.cur)
}

/// Reactor server configuration.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Event-loop threads (single-digit by design; each owns a poller
    /// and a share of the connections).
    pub event_loops: usize,
    /// Handler threads running route handlers off-loop. These are the
    /// threads that may block (continuous-batch admission, inference).
    pub dispatch_threads: usize,
    /// Requests dispatched-but-unanswered per connection before the
    /// loop stops parsing further pipelined requests (resumed as
    /// responses drain). Bounds memory under hostile pipelining.
    pub max_inflight_per_conn: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            event_loops: 2,
            dispatch_threads: 4,
            max_inflight_per_conn: 256,
        }
    }
}

/// Shared reactor telemetry: counters bumped by the event loops and
/// dispatch workers, scraped into [`ReactorTelemetry`] by the recorder
/// probe (`/stats`, `/metrics`, `/fleet`). Counters are relaxed atomics
/// (per-event cost: one `fetch_add`); the three histograms are
/// preallocated at construction and recorded under short mutexes held
/// only by loop/worker threads, never by request handlers.
pub struct ReactorMetrics {
    loops: u64,
    busy_nanos: AtomicU64,
    wait_nanos: AtomicU64,
    accepts: AtomicU64,
    conns: AtomicU64,
    write_stalls: AtomicU64,
    evictions: AtomicU64,
    poll_batch: Mutex<Histogram>,
    wake_us: Mutex<Histogram>,
    dispatch_wait_us: Mutex<Histogram>,
}

impl ReactorMetrics {
    fn new(loops: usize) -> ReactorMetrics {
        ReactorMetrics {
            loops: loops as u64,
            busy_nanos: AtomicU64::new(0),
            wait_nanos: AtomicU64::new(0),
            accepts: AtomicU64::new(0),
            conns: AtomicU64::new(0),
            write_stalls: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            poll_batch: Mutex::new(Histogram::new()),
            wake_us: Mutex::new(Histogram::new()),
            dispatch_wait_us: Mutex::new(Histogram::new()),
        }
    }

    /// Snapshots the counters and the histograms' sparse buckets into
    /// the wire form `/stats` and `/fleet` carry.
    pub fn telemetry(&self) -> ReactorTelemetry {
        ReactorTelemetry {
            loops: self.loops,
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
            wait_nanos: self.wait_nanos.load(Ordering::Relaxed),
            accepts: self.accepts.load(Ordering::Relaxed),
            conns: self.conns.load(Ordering::Relaxed),
            write_stalls: self.write_stalls.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            poll_batch: self.poll_batch.lock().nonzero_buckets().collect(),
            wake_us: self.wake_us.lock().nonzero_buckets().collect(),
            dispatch_wait_us: self.dispatch_wait_us.lock().nonzero_buckets().collect(),
        }
    }
}

fn duration_nanos(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

fn duration_micros(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

/// How long a write may stall on a peer that stopped draining before
/// the connection is evicted — the same budget as the blocking server.
const WRITE_STALL_BUDGET: Duration = Duration::from_secs(1);

/// Poll tick: the upper bound on shutdown/stall-check latency.
const TICK: Duration = Duration::from_millis(25);

/// Token of the per-loop waker pipe.
const WAKER_TOKEN: usize = 0;
/// Token of the listener (loop 0 only).
const LISTENER_TOKEN: usize = 1;
/// First connection token; slab slot `i` lives at `FIRST_CONN + i`.
const FIRST_CONN: usize = 2;

/// A message into an event loop from outside its thread.
enum LoopMsg {
    /// A freshly accepted connection to adopt.
    Adopt(TcpStream),
    /// A handler finished: response for `(slot, gen, seq)`.
    Done {
        slot: usize,
        gen: u64,
        seq: u64,
        resp: Response,
    },
}

/// An event loop's inbox: a queue plus the write end of its waker pipe.
/// Messages carry their enqueue time so the loop can histogram
/// wake-to-dequeue latency — how long work sat waiting for the loop.
struct Mailbox {
    queue: Mutex<Vec<(Instant, LoopMsg)>>,
    waker: UnixStream,
}

impl Mailbox {
    fn push(&self, msg: LoopMsg) {
        self.queue.lock().push((Instant::now(), msg));
        // A full pipe already guarantees a pending wakeup.
        let _ = (&self.waker).write(&[1u8]);
    }
}

/// A unit of work for the dispatch pool.
struct DispatchJob {
    mailbox: Arc<Mailbox>,
    slot: usize,
    gen: u64,
    seq: u64,
    req: http::Request,
    /// When the loop handed the job to the pool (queue-wait telemetry).
    enqueued: Instant,
}

/// Per-connection reactor state machine.
struct RConn {
    stream: TcpStream,
    gen: u64,
    /// Incremental read buffer feeding [`http::parse_request`].
    rbuf: BytesMut,
    /// Bytes accepted for write but not yet on the wire.
    wbuf: BytesMut,
    /// Sequence assigned to the next parsed request.
    next_seq: u64,
    /// Sequence of the next response allowed onto the wire.
    next_write: u64,
    /// Out-of-order handler completions waiting their turn.
    pending: BTreeMap<u64, Response>,
    /// Dispatched-but-unwritten request count.
    inflight: usize,
    /// Parsing is halted (malformed request or injected reset).
    stop_reading: bool,
    /// An injected reset abandoned this connection's pipeline: late
    /// handler completions are dropped instead of re-entering `pending`.
    discarding: bool,
    /// Tear the connection down once `wbuf` drains.
    close_after_flush: bool,
    /// When the current write stall began.
    stall_since: Option<Instant>,
    /// Interest currently registered with the poller.
    interest: Interest,
}

impl RConn {
    fn new(stream: TcpStream, gen: u64) -> std::io::Result<RConn> {
        stream.set_nonblocking(true)?;
        Ok(RConn {
            stream,
            gen,
            rbuf: BytesMut::new(),
            wbuf: BytesMut::new(),
            next_seq: 0,
            next_write: 0,
            pending: BTreeMap::new(),
            inflight: 0,
            stop_reading: false,
            discarding: false,
            close_after_flush: false,
            stall_since: None,
            interest: Interest::READ,
        })
    }

    fn desired_interest(&self) -> Interest {
        Interest {
            read: !self.stop_reading,
            write: !self.wbuf.is_empty(),
        }
    }
}

/// One event loop: poller, slab of connections, inbox, and (on loop 0)
/// the listener.
struct EventLoop {
    poller: Box<dyn Poller>,
    waker_rx: UnixStream,
    mailbox: Arc<Mailbox>,
    /// All loops' mailboxes, for round-robin accept distribution.
    mailboxes: Arc<Vec<Arc<Mailbox>>>,
    listener: Option<TcpListener>,
    next_loop: usize,
    slab: Vec<Option<RConn>>,
    gens: Vec<u64>,
    free: Vec<usize>,
    dispatch: Sender<DispatchJob>,
    shutdown: Arc<AtomicBool>,
    config: ReactorConfig,
    metrics: Arc<ReactorMetrics>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let wait_start = Instant::now();
            if self.poller.wait(&mut events, TICK).is_err() {
                return;
            }
            // Busy/wait split: everything after the poller returns,
            // until the next wait, is busy time; the blocking wait
            // itself is wait time. Their ratio is the loop utilization
            // gauge — the number that says whether the loop or the
            // handlers are the bottleneck.
            let busy_start = Instant::now();
            self.metrics
                .wait_nanos
                .fetch_add(duration_nanos(busy_start - wait_start), Ordering::Relaxed);
            if !events.is_empty() {
                // Empty wakeups are just the tick timeout; utilization
                // already accounts for them.
                self.metrics.poll_batch.lock().record(events.len() as u64);
            }
            // Drain the inbox before handling IO so adopted connections
            // and finished handlers are visible to this pass. Waker
            // bytes are consumed BEFORE the queue is taken: a push that
            // lands between the two steps then leaves its byte in the
            // pipe (one spurious wakeup next pass) instead of having
            // its byte eaten while the message sits queued until the
            // next poll timeout.
            let mut sink = [0u8; 256];
            while matches!((&self.waker_rx).read(&mut sink), Ok(n) if n > 0) {}
            let inbox: Vec<(Instant, LoopMsg)> = std::mem::take(&mut *self.mailbox.queue.lock());
            if !inbox.is_empty() {
                let mut wake = self.metrics.wake_us.lock();
                for (at, _) in &inbox {
                    wake.record(duration_micros(at.elapsed()));
                }
            }
            for (_, msg) in inbox {
                match msg {
                    LoopMsg::Adopt(stream) => self.adopt(stream),
                    LoopMsg::Done {
                        slot,
                        gen,
                        seq,
                        resp,
                    } => self.complete(slot, gen, seq, resp),
                }
            }
            for &ev in events.iter() {
                match ev.token {
                    // Already drained at the top of the pass, before the
                    // queue was taken.
                    WAKER_TOKEN => {}
                    LISTENER_TOKEN => self.accept_burst(),
                    token => {
                        let slot = token - FIRST_CONN;
                        if ev.closed && !ev.readable && !ev.writable {
                            self.close(slot);
                            continue;
                        }
                        if ev.readable || ev.closed {
                            self.on_readable(slot);
                        }
                        if ev.writable {
                            self.on_writable(slot);
                        }
                    }
                }
            }
            self.tick();
            self.metrics
                .busy_nanos
                .fetch_add(duration_nanos(busy_start.elapsed()), Ordering::Relaxed);
        }
    }

    /// Accepts until the listener would block, spreading connections
    /// round-robin across all loops.
    fn accept_burst(&mut self) {
        let mut mine = Vec::new();
        {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        self.metrics.accepts.fetch_add(1, Ordering::Relaxed);
                        let _ = stream.set_nodelay(true);
                        let target = self.next_loop % self.mailboxes.len();
                        self.next_loop = self.next_loop.wrapping_add(1);
                        if target == 0 {
                            // This loop is always loop 0 when it owns
                            // the listener; adopt directly.
                            mine.push(stream);
                        } else {
                            self.mailboxes[target].push(LoopMsg::Adopt(stream));
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }
        for stream in mine {
            self.adopt(stream);
        }
    }

    fn adopt(&mut self, stream: TcpStream) {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slab.push(None);
                self.gens.push(0);
                self.slab.len() - 1
            }
        };
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        let conn = match RConn::new(stream, self.gens[slot]) {
            Ok(c) => c,
            Err(_) => {
                self.free.push(slot);
                return;
            }
        };
        let fd = conn.stream.as_raw_fd();
        if self
            .poller
            .register(fd, FIRST_CONN + slot, Interest::READ)
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.slab[slot] = Some(conn);
        self.metrics.conns.fetch_add(1, Ordering::Relaxed);
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.slab.get_mut(slot).and_then(Option::take) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.free.push(slot);
            self.metrics.conns.fetch_sub(1, Ordering::Relaxed);
            drop(conn);
        }
    }

    /// Reads everything available, then parses and dispatches complete
    /// requests. Mirrors the blocking server: EOF closes immediately
    /// (pending work is abandoned), runaway unparsed buffers are capped
    /// at `2 * MAX_BODY_BYTES`, malformed requests answer 500 and
    /// close.
    fn on_readable(&mut self, slot: usize) {
        let Some(conn) = self.slab.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.stop_reading {
            return;
        }
        let mut chunk = [0u8; 4096];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    self.close(slot);
                    return;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    if conn.rbuf.len() > 2 * http::MAX_BODY_BYTES {
                        self.close(slot);
                        return;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
        self.parse_and_dispatch(slot);
    }

    /// Parses as many complete pipelined requests as the inflight cap
    /// admits, dispatching each to the handler pool.
    fn parse_and_dispatch(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.slab.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            if conn.stop_reading || conn.inflight >= self.config.max_inflight_per_conn {
                break;
            }
            match http::parse_request(&mut conn.rbuf) {
                Ok(req) => {
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.inflight += 1;
                    let job = DispatchJob {
                        mailbox: Arc::clone(&self.mailbox),
                        slot,
                        gen: conn.gen,
                        seq,
                        req,
                        enqueued: Instant::now(),
                    };
                    if self.dispatch.send(job).is_err() {
                        self.close(slot);
                        return;
                    }
                }
                Err(http::HttpError::Incomplete) => break,
                Err(http::HttpError::Malformed(_)) => {
                    // Same contract as the blocking server: earlier
                    // pipelined responses flush first, then a 500, then
                    // teardown.
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.inflight += 1;
                    conn.stop_reading = true;
                    conn.close_after_flush = true;
                    let gen = conn.gen;
                    self.complete(slot, gen, seq, Response::error(500, "bad request"));
                    break;
                }
            }
        }
        self.refresh_interest(slot);
    }

    /// Files a finished response and writes everything now in order.
    fn complete(&mut self, slot: usize, gen: u64, seq: u64, resp: Response) {
        let Some(conn) = self.slab.get_mut(slot).and_then(Option::as_mut) else {
            return; // connection died while the handler ran
        };
        if conn.gen != gen {
            return; // slot was recycled; stale completion
        }
        if conn.discarding {
            return; // pipeline abandoned by an injected reset
        }
        conn.pending.insert(seq, resp);
        self.flush_ready(slot);
    }

    /// Moves in-order responses from `pending` into the write buffer
    /// (handling injected resets), pushes bytes, and resumes parsing if
    /// the inflight cap had paused it.
    fn flush_ready(&mut self, slot: usize) {
        let Some(conn) = self.slab.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let mut freed = false;
        while let Some(mut resp) = conn.pending.remove(&conn.next_write) {
            conn.next_write += 1;
            conn.inflight -= 1;
            freed = true;
            let inject_reset = resp.headers.remove(RESET_MARKER).is_some();
            let encoded = resp.encode();
            if inject_reset {
                // Chaos semantics: half the bytes, then a hard close.
                // Anything still pipelined behind this response dies
                // with the connection.
                conn.wbuf.extend_from_slice(&encoded[..encoded.len() / 2]);
                conn.stop_reading = true;
                conn.discarding = true;
                conn.close_after_flush = true;
                conn.pending.clear();
                conn.inflight = 0;
                break;
            }
            conn.wbuf.extend_from_slice(&encoded);
        }
        self.try_write(slot);
        if freed {
            // Draining may have unblocked the pipelining cap.
            self.parse_and_dispatch(slot);
        }
    }

    fn on_writable(&mut self, slot: usize) {
        self.try_write(slot);
        self.refresh_interest(slot);
    }

    /// Pushes buffered bytes until the socket would block.
    fn try_write(&mut self, slot: usize) {
        let Some(conn) = self.slab.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        while !conn.wbuf.is_empty() {
            match conn.stream.write(&conn.wbuf) {
                Ok(0) => {
                    self.close(slot);
                    return;
                }
                Ok(n) => {
                    let _ = conn.wbuf.split_to(n);
                    conn.stall_since = None;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if conn.stall_since.is_none() {
                        conn.stall_since = Some(Instant::now());
                        self.metrics.write_stalls.fetch_add(1, Ordering::Relaxed);
                    }
                    self.refresh_interest(slot);
                    return;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
        conn.stall_since = None;
        // "Flushed" means nothing more will ever be written: no bytes
        // buffered, no responses waiting their turn, no handlers still
        // running.
        if conn.close_after_flush && conn.pending.is_empty() && conn.inflight == 0 {
            self.close(slot);
            return;
        }
        self.refresh_interest(slot);
    }

    /// Re-registers the connection if its desired interest changed.
    fn refresh_interest(&mut self, slot: usize) {
        let Some(conn) = self.slab.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let want = conn.desired_interest();
        if want != conn.interest {
            let fd = conn.stream.as_raw_fd();
            conn.interest = want;
            let _ = self.poller.modify(fd, FIRST_CONN + slot, want);
        }
    }

    /// Periodic housekeeping: evict connections whose peer stopped
    /// draining its socket past the stall budget.
    fn tick(&mut self) {
        let stalled: Vec<usize> = self
            .slab
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let c = c.as_ref()?;
                let since = c.stall_since?;
                (since.elapsed() > WRITE_STALL_BUDGET).then_some(i)
            })
            .collect();
        for slot in stalled {
            self.metrics.evictions.fetch_add(1, Ordering::Relaxed);
            self.close(slot);
        }
    }
}

fn dispatch_worker(
    rx: Receiver<DispatchJob>,
    handler: Handler,
    served: Arc<AtomicU64>,
    metrics: Arc<ReactorMetrics>,
) {
    while let Ok(job) = rx.recv() {
        metrics
            .dispatch_wait_us
            .lock()
            .record(duration_micros(job.enqueued.elapsed()));
        let resp = {
            profile_scope!("reactor::handler");
            handler(&job.req)
        };
        served.fetch_add(1, Ordering::Relaxed);
        job.mailbox.push(LoopMsg::Done {
            slot: job.slot,
            gen: job.gen,
            seq: job.seq,
            resp,
        });
    }
}

/// Starts a reactor server with the given route handler on an
/// OS-assigned port. The returned handle is interchangeable with the
/// blocking server's.
pub fn start(config: ReactorConfig, handler: Handler) -> std::io::Result<ServerHandle> {
    start_bound(TcpListener::bind(("127.0.0.1", 0))?, config, handler, None)
}

/// Starts a reactor server whose event-loop telemetry feeds `recorder`:
/// a probe installed on the recorder snapshots the loops' busy/wait
/// split, poll batches, wake and dispatch-wait histograms into every
/// `/stats`, `/metrics` and `/fleet` scrape.
pub fn start_observed(
    config: ReactorConfig,
    handler: Handler,
    recorder: Arc<Recorder>,
) -> std::io::Result<ServerHandle> {
    start_bound(
        TcpListener::bind(("127.0.0.1", 0))?,
        config,
        handler,
        Some(recorder),
    )
}

/// Starts a reactor server on an explicit address (restart scenarios).
pub fn start_on(
    addr: std::net::SocketAddr,
    config: ReactorConfig,
    handler: Handler,
) -> std::io::Result<ServerHandle> {
    start_bound(TcpListener::bind(addr)?, config, handler, None)
}

fn start_bound(
    listener: TcpListener,
    config: ReactorConfig,
    handler: Handler,
    recorder: Option<Arc<Recorder>>,
) -> std::io::Result<ServerHandle> {
    // Same warm-up as the blocking server: the shared kernel pool must
    // exist before the first prediction.
    etude_tensor::pool::global();
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let loops = config.event_loops.max(1);
    let metrics = Arc::new(ReactorMetrics::new(loops));
    if let Some(recorder) = recorder {
        let probe = Arc::clone(&metrics);
        recorder.set_reactor_probe(Some(Box::new(move || probe.telemetry())));
    }

    let mut mailboxes = Vec::with_capacity(loops);
    let mut waker_reads = Vec::with_capacity(loops);
    for _ in 0..loops {
        let (rx, tx) = UnixStream::pair()?;
        rx.set_nonblocking(true)?;
        tx.set_nonblocking(true)?;
        mailboxes.push(Arc::new(Mailbox {
            queue: Mutex::new(Vec::new()),
            waker: tx,
        }));
        waker_reads.push(rx);
    }
    let mailboxes = Arc::new(mailboxes);

    let (dispatch_tx, dispatch_rx) = unbounded::<DispatchJob>();
    let mut threads = Vec::new();
    for i in 0..config.dispatch_threads.max(1) {
        let rx = dispatch_rx.clone();
        let handler = Arc::clone(&handler);
        let served = Arc::clone(&served);
        let metrics = Arc::clone(&metrics);
        threads.push(
            std::thread::Builder::new()
                .name(format!("etude-reactor-handler-{i}"))
                .spawn(move || dispatch_worker(rx, handler, served, metrics))
                .expect("spawn dispatch worker"),
        );
    }
    drop(dispatch_rx);

    let mut listener = Some(listener);
    for (i, waker_rx) in waker_reads.into_iter().enumerate() {
        let mut poller = new_poller()?;
        poller.register(waker_rx.as_raw_fd(), WAKER_TOKEN, Interest::READ)?;
        let lst = if i == 0 { listener.take() } else { None };
        if let Some(l) = lst.as_ref() {
            poller.register(l.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        }
        let ev_loop = EventLoop {
            poller,
            waker_rx,
            mailbox: Arc::clone(&mailboxes[i]),
            mailboxes: Arc::clone(&mailboxes),
            listener: lst,
            next_loop: 0,
            slab: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            dispatch: dispatch_tx.clone(),
            shutdown: Arc::clone(&shutdown),
            config: config.clone(),
            metrics: Arc::clone(&metrics),
        };
        threads.push(
            std::thread::Builder::new()
                .name(format!("etude-reactor-loop-{i}"))
                .spawn(move || ev_loop.run())
                .expect("spawn event loop"),
        );
    }
    drop(dispatch_tx);

    Ok(assemble_handle(addr, shutdown, threads, served))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::http::{Method, Request};

    fn static_handler() -> Handler {
        Arc::new(|req: &Request| match (req.method, req.path.as_str()) {
            (Method::Get, "/static") => Response::ok("ok"),
            (Method::Get, "/ping") => Response::ok("pong"),
            (Method::Post, "/echo") => Response::ok(req.body.clone()),
            _ => Response::error(404, "nope"),
        })
    }

    #[test]
    fn serves_requests_over_real_sockets() {
        let server = start(ReactorConfig::default(), static_handler()).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        for _ in 0..20 {
            let resp = client.request(&Request::get("/static")).unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(&resp.body[..], b"ok");
        }
        assert_eq!(server.requests_served(), 20);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = start(
            ReactorConfig {
                event_loops: 2,
                dispatch_threads: 4,
                ..Default::default()
            },
            static_handler(),
        )
        .unwrap();
        let addr = server.addr();
        let mut handles = Vec::new();
        for t in 0..8 {
            handles.push(std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                for i in 0..20 {
                    let body = format!("{t}-{i}");
                    let resp = client
                        .request(&Request::post("/echo", body.clone()))
                        .unwrap();
                    assert_eq!(resp.status, 200);
                    assert_eq!(&resp.body[..], body.as_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.requests_served(), 160);
        server.shutdown();
    }

    #[test]
    fn observed_reactor_feeds_telemetry_into_stats_snapshots() {
        let recorder = Arc::new(Recorder::new());
        let server = start_observed(
            ReactorConfig::default(),
            static_handler(),
            Arc::clone(&recorder),
        )
        .unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        for _ in 0..50 {
            let resp = client.request(&Request::get("/ping")).unwrap();
            assert_eq!(resp.status, 200);
        }
        let snap = recorder.snapshot();
        let r = snap
            .reactor
            .clone()
            .expect("probe installed by start_observed");
        assert_eq!(r.loops, ReactorConfig::default().event_loops as u64);
        assert_eq!(r.accepts, 1, "one client connection accepted");
        assert_eq!(r.conns, 1, "still open");
        let util = r.utilization();
        assert!(
            util > 0.0 && util <= 1.0,
            "utilization in (0,1], got {util}"
        );
        assert!(
            r.dispatch_wait_histogram().count() >= 50,
            "every request crossed the dispatch pool"
        );
        assert!(!r.poll_batch.is_empty(), "poll batches recorded");
        assert!(!r.wake_us.is_empty(), "handler completions woke the loop");
        // The wire representation survives the stats round-trip.
        let parsed = etude_obs::parse_stats_json(&snap.render_json()).unwrap();
        assert_eq!(parsed.reactor.as_ref(), Some(&r));
        drop(client);
        server.shutdown();
    }

    #[test]
    fn poll_fallback_poller_serves_requests() {
        // Force the portable backend regardless of platform.
        let mut poller = PollPoller::new();
        assert_eq!(poller.name(), "poll");
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, Duration::ZERO).unwrap(), 0);

        // And drive a real exchange through it via the registration API.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        poller
            .register(listener.as_raw_fd(), 7, Interest::READ)
            .unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let n = poller.wait(&mut events, Duration::from_secs(2)).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        poller.deregister(listener.as_raw_fd()).unwrap();
        assert!(poller.deregister(listener.as_raw_fd()).is_err());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_event_layout_matches_the_kernel() {
        use std::mem::size_of;
        // The kernel's epoll_event is packed (12 bytes) on x86-64 and
        // naturally aligned (16 bytes, data at offset 8) everywhere
        // else; a mismatch makes epoll_wait scribble past the buffer.
        #[cfg(target_arch = "x86_64")]
        assert_eq!(size_of::<sys::EpollEvent>(), 12);
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(size_of::<sys::EpollEvent>(), 16);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_poller_reports_readiness() {
        let mut poller = EpollPoller::new().unwrap();
        assert_eq!(poller.name(), "epoll");
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        poller
            .register(listener.as_raw_fd(), 42, Interest::READ)
            .unwrap();
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, Duration::ZERO).unwrap(), 0);
        let _client = TcpStream::connect(addr).unwrap();
        let n = poller.wait(&mut events, Duration::from_secs(2)).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);
        poller.deregister(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn nofile_limit_is_reported() {
        let limit = nofile_limit().unwrap();
        assert!(limit > 0);
        // Raising toward the current value is a no-op that must succeed.
        assert!(raise_nofile_limit(limit.min(1024)).unwrap() >= limit.min(1024));
    }
}
