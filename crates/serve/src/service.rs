//! Service-time profiles: the bridge between model inference costs and
//! the queueing models of [`crate::simserver`].
//!
//! A [`ServiceProfile`] answers one question: *how long does the device
//! stay busy to serve a batch of `b` requests for this model?* For
//! compiled (JIT) models the answer comes from the optimised graph's cost
//! spec; for eager models from the summed per-op costs plus an eager
//! dispatch penalty; for the infrastructure test (Figure 2) from a
//! constant.

use etude_models::{traits, ModelKind, SbrModel};
use etude_tensor::{CostSpec, Device, ExecMode, JitOptions, TensorError};
use std::time::Duration;

/// How the model is executed on the serving device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionKind {
    /// Eager execution: every operation dispatched separately.
    Eager,
    /// JIT-compiled graph (fused, folded, pre-transposed).
    Jit,
    /// No model at all — a static response (the paper's infrastructure
    /// test, Figure 2).
    Static,
}

/// A batch-parametric service-time model for one deployed model+device.
#[derive(Debug, Clone)]
pub struct ServiceProfile {
    /// Model name (or `"static"`).
    pub model: String,
    /// Execution mode this profile was built for.
    pub execution: ExecutionKind,
    /// Device the model is deployed on.
    pub device: Device,
    /// Cost of one forward pass (per batch invocation).
    cost: CostSpec,
    /// Fixed handler overhead per request (HTTP parsing, routing,
    /// serialisation) paid on the CPU regardless of device.
    pub handler_overhead: Duration,
}

impl ServiceProfile {
    /// Builds a profile for a model by probing its forward-pass cost.
    ///
    /// For [`ExecutionKind::Jit`] the model is traced and compiled; if
    /// compilation fails with dynamic control flow (quirky LightSANs) the
    /// profile silently falls back to eager execution, mirroring
    /// `torch.jit`'s behaviour of running unoptimised code.
    pub fn for_model(
        model: &dyn SbrModel,
        device: &Device,
        execution: ExecutionKind,
    ) -> Result<ServiceProfile, TensorError> {
        let cost = match execution {
            ExecutionKind::Jit => match traits::compile(model, JitOptions::default()) {
                Ok(compiled) => compiled.cost(),
                Err(_) => eager_cost(model, device)?,
            },
            ExecutionKind::Eager => eager_cost(model, device)?,
            ExecutionKind::Static => CostSpec::default(),
        };
        let cost = apply_batch_reuse(cost, device);
        Ok(ServiceProfile {
            model: model.name().to_string(),
            execution,
            device: device.clone(),
            cost,
            handler_overhead: device.profile().serving_overhead,
        })
    }

    /// The static-response profile of the infrastructure test.
    pub fn static_response(device: &Device) -> ServiceProfile {
        ServiceProfile {
            model: "static".to_string(),
            execution: ExecutionKind::Static,
            device: device.clone(),
            cost: CostSpec::default(),
            handler_overhead: Duration::from_micros(40),
        }
    }

    /// Builds profiles for a model kind directly from a config.
    pub fn build(
        kind: ModelKind,
        cfg: &etude_models::ModelConfig,
        device: &Device,
        execution: ExecutionKind,
    ) -> Result<ServiceProfile, TensorError> {
        let model = kind.build(cfg);
        Self::for_model(model.as_ref(), device, execution)
    }

    /// Device time to execute one batch of `b` requests.
    pub fn batch_latency(&self, batch: usize) -> Duration {
        if self.execution == ExecutionKind::Static {
            return Duration::ZERO;
        }
        self.device
            .profile()
            .latency(&self.cost.at_batch(batch.max(1)))
    }

    /// Single-request inference latency (batch of one).
    pub fn inference_latency(&self) -> Duration {
        self.batch_latency(1)
    }

    /// The underlying cost spec.
    pub fn cost(&self) -> CostSpec {
        self.cost
    }

    /// Whether the deployed model's embedding tables fit on the device.
    pub fn fits_device(&self, table_bytes: u64) -> bool {
        self.device.profile().fits(table_bytes)
    }
}

/// Reclassifies the fraction of constant-weight traffic that the device
/// fails to amortise across request batches as per-request traffic (see
/// [`etude_tensor::DeviceProfile::batch_reuse`]). Single-request latency
/// is unchanged (`shared + per_item` is preserved at batch one); batched
/// throughput ceilings drop to the calibrated levels of the paper's
/// Table I measurements.
fn apply_batch_reuse(cost: CostSpec, device: &Device) -> CostSpec {
    let reuse = device.profile().batch_reuse.clamp(0.0, 1.0);
    CostSpec {
        shared_bytes: cost.shared_bytes * reuse,
        per_item_bytes: cost.per_item_bytes + cost.shared_bytes * (1.0 - reuse),
        ..cost
    }
}

/// Cost of one eager forward pass, including the per-op dispatch penalty
/// that eager execution pays over a compiled graph.
fn eager_cost(model: &dyn SbrModel, device: &Device) -> Result<CostSpec, TensorError> {
    // Session length barely matters for cost (padding dominates); use a
    // representative short session.
    let mode = if model.config().materialize_weights {
        ExecMode::Real
    } else {
        ExecMode::CostOnly
    };
    let cost = traits::forward_cost(model, device, mode, 3)?;
    Ok(CostSpec {
        // forward_cost returns a realised Cost at batch one; rebuild a
        // spec treating arithmetic as per-item and weight traffic as
        // amortisable is not possible after the fact, so eager profiles
        // are conservatively non-amortising: eager PyTorch cannot batch
        // across requests either without explicit batching code.
        flops_per_item: cost.flops,
        shared_bytes: 0.0,
        per_item_bytes: cost.bytes,
        launches: cost.launches,
        transfers_per_item: cost.transfers,
        transfer_bytes_per_item: cost.transfer_bytes,
    })
}

/// The TorchServe baseline's architectural constants (Figure 2).
///
/// Derived from the paper's observations and TorchServe's documented
/// design: a Java (Netty) frontend dispatches to a small pool of Python
/// worker processes over a local socket; each request pays Python
/// interpreter and IPC overhead; an internal 100 ms timeout fails
/// requests under backlog.
#[derive(Debug, Clone)]
pub struct TorchServeProfile {
    /// Python worker processes (TorchServe default: one per vCPU; the
    /// paper's infra test machine had 2 vCPUs).
    pub workers: usize,
    /// Serialized frontend dispatch cost per request.
    pub frontend_overhead: Duration,
    /// Per-request Python handler + IPC overhead inside a worker.
    pub worker_overhead: Duration,
    /// Internal request timeout (the paper observed 100 ms).
    pub timeout: Duration,
}

impl Default for TorchServeProfile {
    fn default() -> Self {
        TorchServeProfile {
            workers: 2,
            frontend_overhead: Duration::from_micros(250),
            worker_overhead: Duration::from_micros(2_500),
            timeout: Duration::from_millis(100),
        }
    }
}

impl TorchServeProfile {
    /// Sustainable throughput ceiling of the worker pool (requests/s),
    /// ignoring the frontend.
    pub fn worker_capacity(&self) -> f64 {
        self.workers as f64 / self.worker_overhead.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etude_models::ModelConfig;

    fn cfg() -> ModelConfig {
        ModelConfig::new(1_000).with_max_session_len(8).with_seed(3)
    }

    #[test]
    fn jit_profile_is_no_slower_than_eager() {
        for kind in [ModelKind::Gru4Rec, ModelKind::SasRec, ModelKind::Core] {
            let cpu = Device::cpu();
            let eager = ServiceProfile::build(kind, &cfg(), &cpu, ExecutionKind::Eager).unwrap();
            let jit = ServiceProfile::build(kind, &cfg(), &cpu, ExecutionKind::Jit).unwrap();
            assert!(
                jit.inference_latency() <= eager.inference_latency(),
                "{}: jit {:?} > eager {:?}",
                kind.name(),
                jit.inference_latency(),
                eager.inference_latency()
            );
        }
    }

    #[test]
    fn quirky_lightsans_falls_back_to_eager() {
        let cpu = Device::cpu();
        let jit =
            ServiceProfile::build(ModelKind::LightSans, &cfg(), &cpu, ExecutionKind::Jit).unwrap();
        let eager = ServiceProfile::build(ModelKind::LightSans, &cfg(), &cpu, ExecutionKind::Eager)
            .unwrap();
        assert_eq!(jit.inference_latency(), eager.inference_latency());
    }

    #[test]
    fn gpu_batching_amortises_latency_imperfectly() {
        let t4 = Device::t4();
        let p = ServiceProfile::build(
            ModelKind::SasRec,
            &ModelConfig::new(1_000_000).without_weights(),
            &t4,
            ExecutionKind::Jit,
        )
        .unwrap();
        let one = p.batch_latency(1).as_secs_f64();
        let batch = p.batch_latency(64).as_secs_f64();
        // With batch_reuse = 0.7, most of the table scan amortises but a
        // calibrated remainder scales per request: the batch costs far
        // less than 64 singles, yet clearly more than a perfect GEMM
        // would (the gap behind the paper's measured per-GPU ceilings).
        assert!(
            batch < 48.0 * one,
            "batching should save a lot: {one} vs {batch}"
        );
        assert!(
            batch > 4.0 * one,
            "amortisation must stay imperfect (calibrated): {one} vs {batch}"
        );
    }

    #[test]
    fn static_profile_is_free() {
        let p = ServiceProfile::static_response(&Device::cpu());
        assert_eq!(p.batch_latency(1024), Duration::ZERO);
        assert!(p.handler_overhead > Duration::ZERO);
    }

    #[test]
    fn torchserve_capacity_is_below_one_thousand_rps() {
        // The architectural reason Figure 2's baseline collapses.
        let p = TorchServeProfile::default();
        assert!(p.worker_capacity() < 1_000.0, "{}", p.worker_capacity());
    }

    #[test]
    fn cpu_inference_latency_exceeds_50ms_at_one_million_items() {
        // Section III-B: CPU > 50 ms per prediction at C = 1e6.
        let p = ServiceProfile::build(
            ModelKind::Gru4Rec,
            &ModelConfig::new(1_000_000).without_weights(),
            &Device::cpu(),
            ExecutionKind::Jit,
        )
        .unwrap();
        assert!(p.inference_latency() > Duration::from_millis(45));
    }
}
