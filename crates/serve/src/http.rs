//! A minimal HTTP/1.1 implementation.
//!
//! Only what an inference server and its load generator need: request
//! lines, headers, `Content-Length` bodies and keep-alive. Written from
//! scratch on [`bytes`] so both the real server and the real client share
//! one parser.

use bytes::{Bytes, BytesMut};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

/// HTTP methods the server supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// GET
    Get,
    /// POST
    Post,
}

impl Method {
    fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            _ => None,
        }
    }

    /// Wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request path (no query parsing — the API does not use queries).
    pub path: String,
    /// Lower-cased header map.
    pub headers: BTreeMap<String, String>,
    /// Request body.
    pub body: Bytes,
    /// When the request came off the wire ([`parse_request`] stamps the
    /// instant the final byte was parsed; the in-process constructors
    /// stamp creation). Latency budgets anchor here, so any queueing
    /// between parse and handler execution is charged against the
    /// request's deadline rather than silently excluded from it.
    pub arrival: Instant,
}

impl Request {
    /// Creates a POST request.
    pub fn post(path: &str, body: impl Into<Bytes>) -> Request {
        Request {
            method: Method::Post,
            path: path.to_string(),
            headers: BTreeMap::new(),
            body: body.into(),
            arrival: Instant::now(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, key: &str, value: impl Into<String>) -> Request {
        self.headers.insert(key.to_ascii_lowercase(), value.into());
        self
    }

    /// Creates a GET request.
    pub fn get(path: &str) -> Request {
        Request {
            method: Method::Get,
            path: path.to_string(),
            headers: BTreeMap::new(),
            body: Bytes::new(),
            arrival: Instant::now(),
        }
    }

    /// Serialises onto the wire.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(128 + self.body.len());
        buf.extend_from_slice(self.method.as_str().as_bytes());
        buf.extend_from_slice(b" ");
        buf.extend_from_slice(self.path.as_bytes());
        buf.extend_from_slice(b" HTTP/1.1\r\n");
        for (k, v) in &self.headers {
            buf.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        buf.extend_from_slice(format!("content-length: {}\r\n", self.body.len()).as_bytes());
        buf.extend_from_slice(b"\r\n");
        buf.extend_from_slice(&self.body);
        buf.freeze()
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 404, 500, 503...).
    pub status: u16,
    /// Lower-cased header map.
    pub headers: BTreeMap<String, String>,
    /// Response body.
    pub body: Bytes,
}

impl Response {
    /// A 200 response with a body.
    pub fn ok(body: impl Into<Bytes>) -> Response {
        Response {
            status: 200,
            headers: BTreeMap::new(),
            body: body.into(),
        }
    }

    /// An error response with a status code.
    pub fn error(status: u16, message: &str) -> Response {
        Response {
            status,
            headers: BTreeMap::new(),
            body: Bytes::copy_from_slice(message.as_bytes()),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, key: &str, value: String) -> Response {
        self.headers.insert(key.to_ascii_lowercase(), value);
        self
    }

    /// Serialises onto the wire.
    pub fn encode(&self) -> Bytes {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            408 => "Request Timeout",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        };
        let mut buf = BytesMut::with_capacity(128 + self.body.len());
        buf.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", self.status, reason).as_bytes());
        for (k, v) in &self.headers {
            buf.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        buf.extend_from_slice(format!("content-length: {}\r\n", self.body.len()).as_bytes());
        buf.extend_from_slice(b"\r\n");
        buf.extend_from_slice(&self.body);
        buf.freeze()
    }
}

/// Errors from parsing HTTP messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The buffer does not yet hold a complete message.
    Incomplete,
    /// The message is malformed.
    Malformed(&'static str),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Incomplete => write!(f, "incomplete message"),
            HttpError::Malformed(why) => write!(f, "malformed message: {why}"),
        }
    }
}

impl std::error::Error for HttpError {}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

fn parse_headers(block: &str) -> Result<BTreeMap<String, String>, HttpError> {
    let mut headers = BTreeMap::new();
    for line in block.lines() {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without colon"))?;
        headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
    }
    Ok(headers)
}

/// Upper bound on accepted message bodies. Recommendation requests are a
/// few kilobytes; anything larger is hostile or broken, and an unchecked
/// value would let `header_end + body_len` overflow and panic the worker.
pub const MAX_BODY_BYTES: usize = 1 << 20;

fn content_length(headers: &BTreeMap<String, String>) -> Result<usize, HttpError> {
    match headers.get("content-length") {
        None => Ok(0),
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| HttpError::Malformed("bad content-length"))?;
            if n > MAX_BODY_BYTES {
                return Err(HttpError::Malformed("body too large"));
            }
            Ok(n)
        }
    }
}

/// Attempts to parse one request from the front of `buf`, consuming it on
/// success. Returns `Err(Incomplete)` when more bytes are needed.
pub fn parse_request(buf: &mut BytesMut) -> Result<Request, HttpError> {
    let header_end = find_header_end(buf).ok_or(HttpError::Incomplete)?;
    let head = std::str::from_utf8(&buf[..header_end - 4])
        .map_err(|_| HttpError::Malformed("non-utf8 head"))?;
    let mut lines = head.splitn(2, "\r\n");
    let request_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let mut parts = request_line.split_whitespace();
    let method = Method::parse(parts.next().ok_or(HttpError::Malformed("no method"))?)
        .ok_or(HttpError::Malformed("unsupported method"))?;
    let path = parts
        .next()
        .ok_or(HttpError::Malformed("no path"))?
        .to_string();
    let headers = parse_headers(lines.next().unwrap_or(""))?;
    let body_len = content_length(&headers)?;
    if buf.len() < header_end + body_len {
        return Err(HttpError::Incomplete);
    }
    let _head = buf.split_to(header_end);
    let body = buf.split_to(body_len).freeze();
    Ok(Request {
        method,
        path,
        headers,
        body,
        arrival: Instant::now(),
    })
}

/// Attempts to parse one response from the front of `buf`, consuming it on
/// success.
pub fn parse_response(buf: &mut BytesMut) -> Result<Response, HttpError> {
    let header_end = find_header_end(buf).ok_or(HttpError::Incomplete)?;
    let head = std::str::from_utf8(&buf[..header_end - 4])
        .map_err(|_| HttpError::Malformed("non-utf8 head"))?;
    let mut lines = head.splitn(2, "\r\n");
    let status_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let mut parts = status_line.split_whitespace();
    let _version = parts.next().ok_or(HttpError::Malformed("no version"))?;
    let status: u16 = parts
        .next()
        .ok_or(HttpError::Malformed("no status"))?
        .parse()
        .map_err(|_| HttpError::Malformed("bad status"))?;
    let headers = parse_headers(lines.next().unwrap_or(""))?;
    let body_len = content_length(&headers)?;
    if buf.len() < header_end + body_len {
        return Err(HttpError::Incomplete);
    }
    let _head = buf.split_to(header_end);
    let body = buf.split_to(body_len).freeze();
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// Encodes a session as a request body: comma-separated item ids.
pub fn encode_session(items: &[u32]) -> String {
    items
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Decodes a session request body.
pub fn decode_session(body: &[u8]) -> Result<Vec<u32>, HttpError> {
    let s = std::str::from_utf8(body).map_err(|_| HttpError::Malformed("non-utf8 body"))?;
    if s.trim().is_empty() {
        return Ok(Vec::new());
    }
    s.trim()
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .map_err(|_| HttpError::Malformed("bad item id"))
        })
        .collect()
}

/// Encodes recommendations as a response body: `id:score` pairs.
pub fn encode_recommendations(items: &[u32], scores: &[f32]) -> String {
    items
        .iter()
        .zip(scores)
        .map(|(i, s)| format!("{i}:{s}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Decodes a recommendation response body (`id:score,...`) back into
/// parallel id/score vectors — the inverse of [`encode_recommendations`].
/// Scores round-trip bit-exactly: the encoder prints f32s with Rust's
/// shortest-round-trip `Display`, which `parse::<f32>` recovers exactly,
/// so the scatter/gather router can merge shard replies without losing
/// the bit-identity contract.
pub fn decode_recommendations(body: &[u8]) -> Result<(Vec<u32>, Vec<f32>), HttpError> {
    let s = std::str::from_utf8(body).map_err(|_| HttpError::Malformed("non-utf8 body"))?;
    let mut ids = Vec::new();
    let mut scores = Vec::new();
    if s.trim().is_empty() {
        return Ok((ids, scores));
    }
    for pair in s.trim().split(',') {
        let (id, score) = pair
            .split_once(':')
            .ok_or(HttpError::Malformed("pair without colon"))?;
        ids.push(
            id.trim()
                .parse()
                .map_err(|_| HttpError::Malformed("bad item id"))?,
        );
        scores.push(
            score
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed("bad score"))?,
        );
    }
    Ok((ids, scores))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::post("/predictions/gru4rec", "1,2,3");
        let mut buf = BytesMut::from(&req.encode()[..]);
        let parsed = parse_request(&mut buf).unwrap();
        assert_eq!(parsed.method, Method::Post);
        assert_eq!(parsed.path, "/predictions/gru4rec");
        assert_eq!(&parsed.body[..], b"1,2,3");
        assert!(buf.is_empty());
    }

    #[test]
    fn response_roundtrip_with_headers() {
        let resp = Response::ok("5:0.9").with_header("X-Inference-Duration-Micros", "42".into());
        let mut buf = BytesMut::from(&resp.encode()[..]);
        let parsed = parse_response(&mut buf).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(
            parsed
                .headers
                .get("x-inference-duration-micros")
                .map(String::as_str),
            Some("42")
        );
        assert_eq!(&parsed.body[..], b"5:0.9");
    }

    #[test]
    fn incomplete_messages_wait_for_more_bytes() {
        let req = Request::post("/p", "abcdef");
        let encoded = req.encode();
        for cut in [3usize, 10, encoded.len() - 1] {
            let mut buf = BytesMut::from(&encoded[..cut]);
            assert!(matches!(
                parse_request(&mut buf),
                Err(HttpError::Incomplete)
            ));
        }
    }

    #[test]
    fn pipelined_requests_parse_sequentially() {
        let a = Request::post("/a", "1").encode();
        let b = Request::post("/b", "22").encode();
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&a);
        buf.extend_from_slice(&b);
        let first = parse_request(&mut buf).unwrap();
        let second = parse_request(&mut buf).unwrap();
        assert_eq!(first.path, "/a");
        assert_eq!(second.path, "/b");
        assert!(buf.is_empty());
    }

    #[test]
    fn malformed_messages_are_rejected() {
        let mut buf = BytesMut::from(&b"NOTAMETHOD / HTTP/1.1\r\n\r\n"[..]);
        assert!(matches!(
            parse_request(&mut buf),
            Err(HttpError::Malformed(_))
        ));
        let mut buf = BytesMut::from(&b"HTTP/1.1 abc OK\r\n\r\n"[..]);
        assert!(matches!(
            parse_response(&mut buf),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn session_body_roundtrip() {
        let items = vec![1u32, 42, 16_777_999];
        let body = encode_session(&items);
        assert_eq!(decode_session(body.as_bytes()).unwrap(), items);
        assert_eq!(decode_session(b"").unwrap(), Vec::<u32>::new());
        assert!(decode_session(b"1,x,3").is_err());
    }

    #[test]
    fn recommendation_body_format() {
        let body = encode_recommendations(&[7, 9], &[0.5, 0.25]);
        assert_eq!(body, "7:0.5,9:0.25");
    }

    #[test]
    fn recommendation_body_roundtrips_bit_exactly() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(17);
        let ids: Vec<u32> = (0..50).map(|_| rng.gen()).collect();
        let scores: Vec<f32> = (0..50)
            .map(|_| {
                f32::from_bits(rng.gen::<u32>() & 0x7f7f_ffff) * if rng.gen() { 1.0 } else { -1.0 }
            })
            .collect();
        let body = encode_recommendations(&ids, &scores);
        let (rids, rscores) = decode_recommendations(body.as_bytes()).unwrap();
        assert_eq!(rids, ids);
        for (a, b) in rscores.iter().zip(&scores) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            decode_recommendations(b"").unwrap(),
            (Vec::new(), Vec::new())
        );
        assert!(decode_recommendations(b"7:0.5,9").is_err());
        assert!(decode_recommendations(b"x:0.5").is_err());
        assert!(decode_recommendations(b"7:zz").is_err());
    }
}
