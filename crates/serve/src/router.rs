//! The scatter/gather routing tier for partitioned-catalog serving.
//!
//! At C = 10^7–10^8 the embedding table alone outgrows a single node, so
//! the catalog is partitioned across *shard groups*: each group is a
//! replica set of pods holding only its contiguous slice of the
//! embedding table ([`etude_models::retrieval::CatalogShard`]). A router
//! pod fans every prediction out to one healthy replica per group,
//! merges the partial top-k results, and answers the client — paying a
//! fan-out/merge cost instead of a memory wall.
//!
//! Correctness contract (verified by proptests and the chaos suite):
//!
//! * **Full health**: the merged top-k is **bit-identical** to an
//!   unsharded fused [`etude_tensor::topk::score_topk`] scan of the full
//!   table. Each shard runs the same kernel over its slice reporting
//!   global ids; scores survive the wire exactly (Rust's shortest
//!   round-trip f32 formatting); the merge comparator
//!   ([`etude_tensor::topk::merge_shard_topk`]) equals the kernel's.
//! * **Partial health**: when every replica of a group is unreachable,
//!   the router serves the exact top-k of the *surviving* slices —
//!   a `200` tagged [`DEGRADED_HEADER`], counted as `degraded` on
//!   `/stats` — instead of failing the request. Only the loss of every
//!   group yields an error (`503`).
//!
//! Within a group the router reuses [`ResilientClient`]: per-replica
//! circuit breakers, hedged requests and bounded retries are scoped to
//! that group's replica set. Scatter legs run concurrently (scoped
//! threads) and each leg carries its own child trace context, so traces
//! show the legs as sibling child spans under the router span.

use crate::client::ResilientClient;
use crate::contbatch::{request_budget, DEADLINE_HEADER};
use crate::http::{self, Method, Request, Response};
use crate::overload::{BrownoutLevel, LadderConfig, BROWNOUT_HEADER};
use crate::rustserver::{
    correlation_id, echo_request_id, nanos, note_trace, parse_prediction, shared_routes, trace_ctx,
    Handler, DEGRADED_HEADER,
};
use etude_control::{BreakerConfig, Criticality, HedgePolicy};
use etude_faults::{Deadline, RetryPolicy};
use etude_models::retrieval::{encode_session_query, CatalogShard};
use etude_obs::{Recorder, Stage, TRACE_HEADER};
use etude_tensor::topk::merge_shard_topk;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Salt domain for scatter-leg span ids: leg `i` of a routed request
/// gets `span_hash(trace_id, router_span, SCATTER_SPAN_SALT + i)`, so
/// sibling legs are distinct, deterministic children of the router span.
pub const SCATTER_SPAN_SALT: u64 = 0x5ca7_7e50;

/// One shard group: a contiguous catalog slice and the replica set
/// serving it.
#[derive(Debug, Clone)]
pub struct ShardGroupSpec {
    /// Group id (position in the partition).
    pub id: u32,
    /// First global catalog row of this group's slice.
    pub base: u32,
    /// Rows in the slice.
    pub rows: usize,
    /// Embedding-table bytes resident on each replica (4·rows·d).
    pub resident_bytes: u64,
    /// Addresses of the group's replicas.
    pub replicas: Vec<SocketAddr>,
}

/// The catalog partition a router serves: which rows live where, plus
/// the query-embedding parameters every backend shares.
#[derive(Debug, Clone)]
pub struct ShardTopology {
    /// Total catalog rows (shard slices tile `0..catalog_size`).
    pub catalog_size: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Seed of the shared [`encode_session_query`] hash embedding.
    pub query_seed: u64,
    /// The shard groups, in slice order.
    pub groups: Vec<ShardGroupSpec>,
}

impl ShardTopology {
    /// Partitions `catalog_size` rows into `groups` contiguous slices
    /// (the same split [`etude_tensor::pool::shard_ranges`] uses, so the
    /// proptest reference and the serving tier agree). Replica addresses
    /// start empty; fill them as backends come up.
    pub fn partition(
        catalog_size: usize,
        dim: usize,
        query_seed: u64,
        groups: usize,
    ) -> ShardTopology {
        let ranges = etude_tensor::pool::shard_ranges(catalog_size, groups.clamp(1, catalog_size));
        ShardTopology {
            catalog_size,
            dim,
            query_seed,
            groups: ranges
                .iter()
                .enumerate()
                .map(|(i, r)| ShardGroupSpec {
                    id: i as u32,
                    base: r.start as u32,
                    rows: r.len(),
                    resident_bytes: 4 * (r.len() * dim) as u64,
                    replicas: Vec::new(),
                })
                .collect(),
        }
    }

    /// The slice of `table` owned by group `i`, as a servable shard.
    pub fn shard_of(&self, table: &[f32], i: usize) -> CatalogShard {
        let g = &self.groups[i];
        CatalogShard::from_table(table, self.dim, g.base as usize..g.base as usize + g.rows)
    }

    /// Bytes of embedding table resident on the *largest* single pod —
    /// what a node memory budget must fit.
    pub fn max_resident_bytes(&self) -> u64 {
        self.groups
            .iter()
            .map(|g| g.resident_bytes)
            .max()
            .unwrap_or(0)
    }
}

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Recommendations returned to the client (and requested per shard).
    pub k: usize,
    /// Wall-clock budget for one scatter leg (retries included). A lost
    /// shard group costs at most this much extra latency.
    pub leg_budget: Duration,
    /// Retry schedule within a leg.
    pub policy: RetryPolicy,
    /// Per-replica circuit breakers (`None` disables them).
    pub breakers: Option<BreakerConfig>,
    /// Hedged requests within a group's replica set (`None` disables).
    pub hedge: Option<HedgePolicy>,
    /// Seed for the clients' deterministic backoff jitter.
    pub seed: u64,
    /// Budget granted to requests without an `x-deadline-ms` header.
    /// The router decrements the remaining budget into each shard leg.
    pub default_deadline: Duration,
    /// Brownout thresholds on the *already burned* fraction of the
    /// budget at scatter time; shard legs inherit the computed level.
    pub ladder: LadderConfig,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            k: 21,
            leg_budget: Duration::from_millis(250),
            policy: RetryPolicy::default_chaos(),
            breakers: Some(BreakerConfig::default()),
            hedge: None,
            seed: 0,
            default_deadline: Duration::from_secs(2),
            ladder: LadderConfig::default(),
        }
    }
}

/// Builds the route table of a **shard backend** pod: `/predictions`
/// over one catalog slice, answering with *global* item ids.
///
/// The session query is the shared deterministic hash embedding
/// ([`encode_session_query`]) — a shard pod cannot embed items outside
/// its slice, so the (tiny) session encoder is replicated as a pure
/// function while only the catalog scan is partitioned. Passing the
/// full-catalog range makes this the unsharded reference server, which
/// is exactly how the bit-identity acceptance test uses it.
pub fn shard_backend_routes(
    shard: CatalogShard,
    catalog_size: usize,
    query_seed: u64,
    k: usize,
    recorder: Arc<Recorder>,
) -> Handler {
    let dim = shard.dim();
    // The quantized rung of the brownout ladder, built once: when a
    // routed leg inherits level ≥ 1 the slice is scanned in int8.
    let quantized = shard.quantize();
    let base = shard.base();
    let reduced_k = (k / 4).max(1);
    Arc::new(move |req: &Request| -> Response {
        if let Some(resp) = shared_routes(req, &recorder) {
            return resp;
        }
        match (req.method, req.path.as_str()) {
            (Method::Post, "/predictions") => {
                let t_total = Instant::now();
                let (rid, echo) = correlation_id(req);
                let t_parse = Instant::now();
                // Ids validate against the *full* catalog: a shard serves
                // a slice but speaks the global id space.
                let items = match parse_prediction(&req.body, catalog_size) {
                    Ok(items) => items,
                    Err(resp) => return echo_request_id(resp, echo),
                };
                let parse = t_parse.elapsed();
                // Propagated deadline: the router decremented the
                // remaining budget into `x-deadline-ms`, so a leg whose
                // budget died in transit (or in the dispatch queue) is
                // shed before its scan starts — the no-late-inference
                // invariant, extended to the fan-out tier. Absent the
                // header, the leg is effectively unbudgeted.
                let budget = request_budget(req, Duration::from_secs(86_400))
                    .min(Duration::from_secs(86_400));
                if Deadline::at(req.arrival + budget).expired() {
                    recorder.note_shed();
                    return echo_request_id(
                        Response::error(503, "leg budget exhausted before scan")
                            .with_header("retry-after", "1".to_string()),
                        echo,
                    );
                }
                // Inherited brownout level: ≥ 1 scans int8, ≥ 2 also
                // drops to the reduced k. Level 3 never reaches a shard
                // (the router serves its popularity fallback locally),
                // but a stray inherited 3 degrades to the cheapest
                // scan rather than poisoning the merge.
                let level = BrownoutLevel::from_request(req);
                let t_inf = Instant::now();
                let query = encode_session_query(&items, dim, query_seed);
                let (ids, scores) = match level {
                    BrownoutLevel::Exact => {
                        etude_models::retrieval::MipsIndex::search(&shard, &query, k)
                    }
                    other => {
                        let kk = if other >= BrownoutLevel::ReducedK {
                            reduced_k
                        } else {
                            k
                        };
                        let (mut ids, scores) =
                            etude_models::retrieval::MipsIndex::search(&quantized, &query, kk);
                        for id in ids.iter_mut() {
                            *id += base;
                        }
                        (ids, scores)
                    }
                };
                let inference = t_inf.elapsed();
                if level > BrownoutLevel::Exact {
                    recorder.note_brownout(level.as_u8().min(2));
                }
                let t_ser = Instant::now();
                let body = http::encode_recommendations(&ids, &scores);
                let resp = echo_request_id(
                    Response::ok(body)
                        .with_header(BROWNOUT_HEADER, level.as_u8().min(2).to_string())
                        .with_header(
                            "x-inference-duration-micros",
                            inference.as_micros().to_string(),
                        ),
                    echo,
                );
                let serialize = t_ser.elapsed();
                let total = t_total.elapsed();
                recorder.record(rid, Stage::Parse, nanos(parse));
                recorder.record(rid, Stage::Inference, nanos(inference));
                recorder.record(rid, Stage::Serialize, nanos(serialize));
                recorder.record(rid, Stage::Total, nanos(total));
                note_trace(
                    &recorder,
                    trace_ctx(req),
                    resp,
                    &[
                        (Stage::Parse, nanos(parse)),
                        (Stage::Inference, nanos(inference)),
                        (Stage::Serialize, nanos(serialize)),
                        (Stage::Total, nanos(total)),
                    ],
                )
            }
            _ => Response::error(404, "no such route"),
        }
    })
}

/// One scatter leg's client state: a [`ResilientClient`] over the
/// group's replica set. Wrapped in a mutex because the retry loop is
/// `&mut self`; the router serialises in-flight legs per group, which
/// also keeps breaker state coherent.
struct GroupClient {
    client: parking_lot::Mutex<ResilientClient>,
}

/// Builds the **router** route table over a shard topology.
///
/// * `POST /predictions` — validate, scatter to one healthy replica per
///   group (concurrently), gather, merge, answer. Partial gathers are
///   degraded `200`s; an empty gather is a `503`.
/// * `GET /fleet`, `GET /fleet/metrics` — the shard-aware fleet view:
///   per-group health and resident bytes on top of the merged per-pod
///   snapshot.
/// * `/ping`, `/static`, `/stats`, `/metrics` — the shared routes, over
///   the router's own recorder (degraded counts land here).
pub fn router_routes(
    topology: ShardTopology,
    config: RouterConfig,
    recorder: Arc<Recorder>,
) -> Handler {
    assert!(
        !topology.groups.is_empty(),
        "a router needs at least one shard group"
    );
    for g in &topology.groups {
        assert!(
            !g.replicas.is_empty(),
            "shard group {} has no replicas",
            g.id
        );
    }
    let clients: Vec<GroupClient> = topology
        .groups
        .iter()
        .map(|g| {
            let mut c = ResilientClient::new_multi(
                g.replicas.clone(),
                config.policy.clone(),
                config.seed ^ u64::from(g.id),
            )
            .with_attempt_timeout(config.leg_budget);
            if let Some(b) = config.breakers {
                c = c.with_breakers(b);
            }
            if let Some(h) = config.hedge {
                c = c.with_hedging(h);
            }
            GroupClient {
                client: parking_lot::Mutex::new(c),
            }
        })
        .collect();
    let clients = Arc::new(clients);
    let topology = Arc::new(topology);
    let k = config.k;
    let leg_budget = config.leg_budget;
    let default_deadline = config.default_deadline;
    let ladder = config.ladder.clone();
    // The router's own fallback rung: the global popularity fallback,
    // served locally when the budget is nearly burned — cheaper and
    // more useful than fanning out a scatter that cannot finish.
    let fallback_body = crate::rustserver::Degradation::new(
        crate::rustserver::DegradationPolicy {
            top_k: k,
            ..Default::default()
        },
        topology.catalog_size,
    )
    .fallback_body
    .clone();

    Arc::new(move |req: &Request| -> Response {
        if let Some(resp) = shared_routes(req, &recorder) {
            return resp;
        }
        match (req.method, req.path.as_str()) {
            (Method::Post, "/predictions") => {
                let t_total = Instant::now();
                let (rid, echo) = correlation_id(req);
                let t_parse = Instant::now();
                // Reject at the edge; shards never see bad input.
                if let Err(resp) = parse_prediction(&req.body, topology.catalog_size) {
                    return echo_request_id(resp, echo);
                }
                let parse = t_parse.elapsed();
                let ctx = trace_ctx(req);

                // Deadline propagation: anchor the budget at wire-parse
                // time, shed before the fan-out when it is already
                // burned, and decrement what remains into every leg.
                let budget = request_budget(req, default_deadline).min(Duration::from_secs(86_400));
                let deadline = Deadline::at(req.arrival + budget);
                let remaining = deadline.remaining();
                let crit = Criticality::from_header(
                    req.headers.get(Criticality::HEADER).map(String::as_str),
                );
                if remaining.is_zero() {
                    recorder.note_shed();
                    return echo_request_id(
                        Response::error(503, "deadline exhausted before fan-out")
                            .with_header("retry-after", "1".to_string()),
                        echo,
                    );
                }
                // Brownout: the burned fraction of the budget picks the
                // rung; shard legs inherit it (an upstream-set level is
                // never lowered). Past the fallback threshold a scatter
                // cannot finish in time, so the router serves its local
                // popularity fallback — for traffic that did not opt
                // into shedding.
                let burned = 1.0 - remaining.as_secs_f64() / budget.as_secs_f64().max(1e-9);
                let mut level = BrownoutLevel::from_request(req);
                if ladder.enabled {
                    if burned >= ladder.fallback_at {
                        return match crit {
                            Criticality::ShedFirst => {
                                recorder.note_shed();
                                echo_request_id(
                                    Response::error(503, "budget too burned to fan out")
                                        .with_header("retry-after", "1".to_string()),
                                    echo,
                                )
                            }
                            _ => {
                                recorder.note_degraded();
                                recorder.note_brownout(BrownoutLevel::Fallback.as_u8());
                                echo_request_id(
                                    Response::ok(fallback_body.clone())
                                        .with_header(DEGRADED_HEADER, "1".to_string())
                                        .with_header(
                                            BROWNOUT_HEADER,
                                            BrownoutLevel::Fallback.as_u8().to_string(),
                                        ),
                                    echo,
                                )
                            }
                        };
                    } else if burned >= ladder.reduced_k_at {
                        level = level.max(BrownoutLevel::ReducedK);
                    } else if burned >= ladder.quantized_at {
                        level = level.max(BrownoutLevel::Quantized);
                    }
                }
                let leg_deadline_ms = remaining.as_millis().max(1).to_string();
                let leg_budget = leg_budget.min(remaining);

                // Scatter: one leg per shard group, concurrently. Each
                // leg forwards the session body untouched and carries a
                // distinct child trace context, so pod spans attach as
                // sibling children of the router span.
                let t_scatter = Instant::now();
                let mut partials: Vec<Option<(Vec<u32>, Vec<f32>)>> =
                    Vec::with_capacity(clients.len());
                partials.resize_with(clients.len(), || None);
                std::thread::scope(|scope| {
                    for (i, (gc, slot)) in clients.iter().zip(partials.iter_mut()).enumerate() {
                        let mut leg = Request::post("/predictions", req.body.clone());
                        // Always stamp the leg with a per-shard request
                        // id — derived from the client's id when it sent
                        // one, from the router's correlation id hash
                        // otherwise — so shard-side `/stats` spans and
                        // slow exemplars correlate with the router-side
                        // request even for anonymous traffic.
                        let leg_id = match echo {
                            Some(id) => format!("{id}-s{i}"),
                            None => format!("{rid:016x}-s{i}"),
                        };
                        leg.headers.insert("x-request-id".into(), leg_id);
                        // Decremented budget, inherited brownout level
                        // and criticality ride every leg.
                        leg.headers
                            .insert(DEADLINE_HEADER.into(), leg_deadline_ms.clone());
                        if level > BrownoutLevel::Exact {
                            leg.headers
                                .insert(BROWNOUT_HEADER.into(), level.as_u8().to_string());
                        }
                        if crit != Criticality::Normal {
                            leg.headers
                                .insert(Criticality::HEADER.into(), crit.name().to_string());
                        }
                        if let Some(ctx) = &ctx {
                            let child = ctx.child(etude_obs::trace::span_hash(
                                ctx.trace_id,
                                ctx.span_id,
                                SCATTER_SPAN_SALT + i as u64,
                            ));
                            leg.headers.insert(TRACE_HEADER.into(), child.encode());
                        }
                        scope.spawn(move || {
                            let mut client = gc.client.lock();
                            if let Ok(r) = client.request_within(&leg, leg_budget) {
                                if r.response.status == 200 {
                                    if let Ok(partial) =
                                        http::decode_recommendations(&r.response.body)
                                    {
                                        *slot = Some(partial);
                                    }
                                }
                            }
                        });
                    }
                });
                let scatter = t_scatter.elapsed();

                // Gather + merge.
                let t_merge = Instant::now();
                let survivors: Vec<(Vec<u32>, Vec<f32>)> = partials.into_iter().flatten().collect();
                let lost = clients.len() - survivors.len();
                if survivors.is_empty() {
                    return echo_request_id(
                        Response::error(503, "all shard groups unavailable")
                            .with_header("retry-after", "1".to_string()),
                        echo,
                    );
                }
                let (ids, scores) = merge_shard_topk(&survivors, k);
                let merge = t_merge.elapsed();

                let t_ser = Instant::now();
                let body = http::encode_recommendations(&ids, &scores);
                let mut resp =
                    Response::ok(body).with_header(BROWNOUT_HEADER, level.as_u8().to_string());
                if level > BrownoutLevel::Exact {
                    recorder.note_brownout(level.as_u8());
                }
                if lost > 0 {
                    recorder.note_degraded();
                    resp = resp.with_header(DEGRADED_HEADER, lost.to_string());
                }
                let resp = echo_request_id(resp, echo);
                let serialize = t_ser.elapsed();
                let total = t_total.elapsed();
                recorder.record(rid, Stage::Parse, nanos(parse));
                recorder.record(rid, Stage::Inference, nanos(scatter));
                recorder.record(rid, Stage::TopK, nanos(merge));
                recorder.record(rid, Stage::Serialize, nanos(serialize));
                recorder.record(rid, Stage::Total, nanos(total));
                note_trace(
                    &recorder,
                    ctx,
                    resp,
                    &[
                        (Stage::Parse, nanos(parse)),
                        (Stage::Inference, nanos(scatter)),
                        (Stage::TopK, nanos(merge)),
                        (Stage::Serialize, nanos(serialize)),
                        (Stage::Total, nanos(total)),
                    ],
                )
            }
            (Method::Get, "/fleet") => Response::ok(scrape_shard_fleet(&topology).render_json())
                .with_header("content-type", "application/json".to_string()),
            (Method::Get, "/fleet/metrics") => {
                Response::ok(scrape_shard_fleet(&topology).render_prometheus())
                    .with_header("content-type", "text/plain; version=0.0.4".to_string())
            }
            _ => Response::error(404, "no such route"),
        }
    })
}

/// Scrapes every replica of every group and assembles the shard-aware
/// fleet snapshot: the usual merged per-pod view plus one
/// [`etude_obs::ShardGroupHealth`] row per group.
pub fn scrape_shard_fleet(topology: &ShardTopology) -> etude_obs::FleetSnapshot {
    let mut pods = Vec::new();
    let mut unreachable = 0;
    let mut shards = Vec::with_capacity(topology.groups.len());
    for g in &topology.groups {
        let snap = crate::fleet::scrape_fleet(&g.replicas);
        shards.push(etude_obs::ShardGroupHealth {
            group: g.id,
            base: u64::from(g.base),
            rows: g.rows as u64,
            resident_bytes: g.resident_bytes,
            replicas: g.replicas.len(),
            healthy: snap.pods.len(),
        });
        unreachable += snap.unreachable;
        pods.extend(snap.pods);
    }
    etude_obs::FleetSnapshot::new(pods, unreachable).with_shards(shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_tiles_the_catalog() {
        let topo = ShardTopology::partition(1_000, 18, 7, 4);
        assert_eq!(topo.groups.len(), 4);
        assert_eq!(topo.groups[0].base, 0);
        let mut next = 0u32;
        let mut total = 0usize;
        for g in &topo.groups {
            assert_eq!(g.base, next, "slices are contiguous");
            assert_eq!(g.resident_bytes, 4 * (g.rows * 18) as u64);
            next += g.rows as u32;
            total += g.rows;
        }
        assert_eq!(total, 1_000);
        assert_eq!(topo.max_resident_bytes(), 4 * 250 * 18);
        // One group = the whole catalog.
        let one = ShardTopology::partition(100, 4, 0, 1);
        assert_eq!(one.groups.len(), 1);
        assert_eq!(one.groups[0].rows, 100);
    }

    #[test]
    fn shard_of_extracts_the_right_rows() {
        let (c, d) = (120usize, 6usize);
        let table: Vec<f32> = (0..c * d).map(|i| i as f32).collect();
        let topo = ShardTopology::partition(c, d, 0, 3);
        let mut rows = 0;
        for i in 0..topo.groups.len() {
            let shard = topo.shard_of(&table, i);
            assert_eq!(shard.base(), topo.groups[i].base);
            assert_eq!(shard.rows(), topo.groups[i].rows);
            rows += shard.rows();
        }
        assert_eq!(rows, c);
    }
}
