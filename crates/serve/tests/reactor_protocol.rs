//! Concurrency/protocol suite locking the reactor server to the
//! blocking server's observable behavior.
//!
//! Every scenario runs against BOTH server flavors with the same route
//! handler and asserts an identical transcript: the reactor rewrite is
//! only allowed to change *capacity*, never protocol semantics. Covered
//! hostile-client shapes:
//!
//! * keep-alive pipelining (many requests in one write, answers in
//!   order),
//! * slowloris (headers dripped one byte at a time — neither flavor
//!   times the client out; it is eventually served),
//! * mid-request disconnect (half a request then FIN — dropped without
//!   a response, server stays healthy),
//! * oversized body rejection (`Content-Length` past the cap → 500 and
//!   close, without buffering the body),
//! * a 10k-idle-connections smoke test on the reactor (the scenario
//!   the thread-per-connection baseline exists to lose).

use etude_serve::http::{self, Method, Request, Response};
use etude_serve::reactor::{self, raise_nofile_limit, ReactorConfig};
use etude_serve::rustserver::{self, Handler, ServerConfig, ServerHandle};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn echo_handler() -> Handler {
    Arc::new(|req: &Request| match (req.method, req.path.as_str()) {
        (Method::Get, "/ping") => Response::ok("pong"),
        (Method::Post, "/echo") => Response::ok(req.body.clone()),
        _ => Response::error(404, "no such route"),
    })
}

/// Both server flavors behind one seam, so every scenario is written
/// once and asserted twice.
fn both_servers() -> Vec<(&'static str, ServerHandle)> {
    vec![
        (
            "blocking",
            rustserver::start(ServerConfig::default(), echo_handler()).unwrap(),
        ),
        (
            "reactor",
            reactor::start(ReactorConfig::default(), echo_handler()).unwrap(),
        ),
    ]
}

/// Reads exactly `n` responses off a raw socket, returning parsed
/// responses plus whether the server closed the connection after them.
fn read_responses(stream: &mut TcpStream, n: usize) -> (Vec<Response>, bool) {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = bytes::BytesMut::new();
    let mut out = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut closed = false;
    while out.len() < n {
        match http::parse_response(&mut buf) {
            Ok(resp) => {
                out.push(resp);
                continue;
            }
            Err(http::HttpError::Incomplete) => {}
            Err(e) => panic!("malformed response bytes: {e:?}"),
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                closed = true;
                // Drain whatever complete responses arrived before the
                // close before giving up.
                while out.len() < n {
                    match http::parse_response(&mut buf) {
                        Ok(resp) => out.push(resp),
                        Err(http::HttpError::Incomplete) => break,
                        Err(e) => panic!("malformed response bytes: {e:?}"),
                    }
                }
                break;
            }
            Ok(got) => buf.extend_from_slice(&chunk[..got]),
            Err(e) => panic!("read failed: {e}"),
        }
    }
    if out.len() == n && !closed {
        // Probe for close without blocking the test: a short timeout
        // read distinguishes "held open" from "server closed".
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        match stream.read(&mut chunk) {
            Ok(0) => closed = true,
            Ok(_) => panic!("unexpected extra bytes after {n} responses"),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => closed = true,
        }
    }
    (out, closed)
}

/// Normalizes a transcript for cross-flavor comparison.
fn transcript(responses: &[Response], closed: bool) -> Vec<(u16, Vec<u8>, bool)> {
    responses
        .iter()
        .map(|r| (r.status, r.body.to_vec(), closed))
        .collect()
}

#[test]
fn pipelined_requests_answer_in_order_on_both_servers() {
    let mut transcripts = Vec::new();
    for (flavor, server) in both_servers() {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // Six requests in a single write: interleaved GETs and POSTs
        // whose bodies disambiguate ordering.
        let mut wire = Vec::new();
        for i in 0..3 {
            wire.extend_from_slice(&Request::get("/ping").encode());
            wire.extend_from_slice(&Request::post("/echo", format!("body-{i}")).encode());
        }
        stream.write_all(&wire).unwrap();
        let (responses, closed) = read_responses(&mut stream, 6);
        assert_eq!(responses.len(), 6, "{flavor}: lost pipelined responses");
        assert!(!closed, "{flavor}: keep-alive connection was closed");
        for (i, pair) in responses.chunks(2).enumerate() {
            assert_eq!(&pair[0].body[..], b"pong", "{flavor}");
            assert_eq!(pair[1].body, format!("body-{i}").as_bytes(), "{flavor}");
        }
        // The connection stays usable afterwards.
        stream
            .write_all(&Request::post("/echo", "after").encode())
            .unwrap();
        let (more, _) = read_responses(&mut stream, 1);
        assert_eq!(&more[0].body[..], b"after", "{flavor}");
        assert_eq!(server.requests_served(), 7, "{flavor}");
        transcripts.push(transcript(&responses, closed));
        server.shutdown();
    }
    assert_eq!(
        transcripts[0], transcripts[1],
        "blocking and reactor transcripts diverged"
    );
}

#[test]
fn slowloris_headers_are_eventually_served_on_both_servers() {
    let mut transcripts = Vec::new();
    for (flavor, server) in both_servers() {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let wire = Request::post("/echo", "drip").encode();
        // One byte at a time, with a pause every few bytes: the classic
        // slowloris shape. Neither flavor imposes a header deadline, so
        // the request must eventually complete.
        for (i, b) in wire.iter().enumerate() {
            stream.write_all(std::slice::from_ref(b)).unwrap();
            if i % 8 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let (responses, closed) = read_responses(&mut stream, 1);
        assert_eq!(responses.len(), 1, "{flavor}: slowloris never served");
        assert_eq!(&responses[0].body[..], b"drip", "{flavor}");
        assert!(!closed, "{flavor}: keep-alive closed after slowloris");
        transcripts.push(transcript(&responses, closed));
        server.shutdown();
    }
    assert_eq!(transcripts[0], transcripts[1]);
}

#[test]
fn mid_request_disconnect_is_dropped_without_wedging_either_server() {
    for (flavor, server) in both_servers() {
        let addr = server.addr();
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            let wire = Request::post("/echo", "never finished").encode();
            // Half the request, then FIN.
            stream.write_all(&wire[..wire.len() / 2]).unwrap();
        }
        // The partial request must not be served, and the server must
        // keep serving fresh connections promptly.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(&Request::post("/echo", "alive").encode())
            .unwrap();
        let (responses, _) = read_responses(&mut stream, 1);
        assert_eq!(&responses[0].body[..], b"alive", "{flavor}");
        assert_eq!(
            server.requests_served(),
            1,
            "{flavor}: the aborted request must not count as served"
        );
        server.shutdown();
    }
}

#[test]
fn oversized_bodies_are_rejected_identically() {
    let mut transcripts = Vec::new();
    for (flavor, server) in both_servers() {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // Headers declaring a body one byte past the cap; the server
        // must reject on the declaration without waiting for the bytes.
        let head = format!(
            "POST /echo HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            http::MAX_BODY_BYTES + 1
        );
        stream.write_all(head.as_bytes()).unwrap();
        let (responses, closed) = read_responses(&mut stream, 1);
        assert_eq!(responses.len(), 1, "{flavor}: no rejection response");
        assert_eq!(responses[0].status, 500, "{flavor}");
        assert_eq!(&responses[0].body[..], b"bad request", "{flavor}");
        assert!(
            closed,
            "{flavor}: connection must close after a bad request"
        );
        transcripts.push(transcript(&responses, closed));
        server.shutdown();
    }
    assert_eq!(transcripts[0], transcripts[1]);
}

#[test]
fn requests_pipelined_behind_a_malformed_one_die_with_the_connection() {
    let mut transcripts = Vec::new();
    for (flavor, server) in both_servers() {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut wire = Vec::new();
        wire.extend_from_slice(&Request::post("/echo", "first").encode());
        wire.extend_from_slice(b"NONSENSE /x HTTP/9.9\r\n\r\n");
        wire.extend_from_slice(&Request::post("/echo", "doomed").encode());
        stream.write_all(&wire).unwrap();
        // The good request answers, the malformed one gets the 500, the
        // one behind it is never served — on both flavors.
        let (responses, closed) = read_responses(&mut stream, 2);
        assert_eq!(responses.len(), 2, "{flavor}");
        assert_eq!(&responses[0].body[..], b"first", "{flavor}");
        assert_eq!(responses[1].status, 500, "{flavor}");
        assert!(closed, "{flavor}: connection must close after the 500");
        transcripts.push(transcript(&responses, closed));
        server.shutdown();
    }
    assert_eq!(transcripts[0], transcripts[1]);
}

#[test]
fn ten_thousand_idle_connections_smoke() {
    // Each in-process connection costs two fds (client + server end);
    // leave generous headroom for the harness itself.
    let limit = raise_nofile_limit(25_000).unwrap_or(1024);
    let target = 10_000usize.min(((limit.saturating_sub(500)) / 2) as usize);
    assert!(
        target >= 1_000,
        "fd limit {limit} too low for a meaningful idle-connection smoke"
    );

    let server = reactor::start(ReactorConfig::default(), echo_handler()).unwrap();
    let addr = server.addr();
    let mut idle = Vec::with_capacity(target);
    for i in 0..target {
        match TcpStream::connect(addr) {
            Ok(s) => idle.push(s),
            Err(e) => panic!("connect #{i} failed: {e}"),
        }
    }

    // With `target` idle connections parked, a live request must still
    // be served promptly: idle connections cost a registration, not a
    // scan or a thread.
    let started = Instant::now();
    let mut live = TcpStream::connect(addr).unwrap();
    live.write_all(&Request::post("/echo", "under load").encode())
        .unwrap();
    let (responses, _) = read_responses(&mut live, 1);
    let elapsed = started.elapsed();
    assert_eq!(&responses[0].body[..], b"under load");
    assert!(
        elapsed < Duration::from_secs(5),
        "request took {elapsed:?} with {target} idle connections parked"
    );

    // The parked connections are still live too: spot-check a sample
    // across the accept order (and therefore across event loops).
    for idx in [0, target / 2, target - 1] {
        let conn = &mut idle[idx];
        conn.write_all(&Request::get("/ping").encode()).unwrap();
        let (r, closed) = read_responses(conn, 1);
        assert_eq!(&r[0].body[..], b"pong", "idle conn #{idx} unservable");
        assert!(!closed, "idle conn #{idx} was dropped");
    }

    drop(idle);
    server.shutdown();
}
