//! Fleet aggregation over real sockets: several observed server pods, a
//! standalone aggregator scraping them, and the acceptance criterion
//! that the aggregator's merged histograms are **bit-identical** to
//! merging the per-pod `/stats` snapshots independently — in any scrape
//! order.

use etude_models::{ModelConfig, ModelKind, SbrModel};
use etude_obs::fleet::{parse_fleet_merged, parse_fleet_pods};
use etude_obs::{parse_stats_json, FleetSnapshot, Recorder, StatsSnapshot};
use etude_serve::http::Request;
use etude_serve::rustserver::{model_routes_observed, start, ServerConfig, ServerHandle};
use etude_serve::{fleet_routes, HttpClient};
use etude_tensor::Device;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;

/// Starts one observed pod and drives `n` predictions through it.
fn pod(id: u32, n: u32) -> ServerHandle {
    let cfg = ModelConfig::new(200)
        .with_max_session_len(8)
        .with_seed(40 + u64::from(id));
    let model: Arc<dyn SbrModel> = Arc::from(ModelKind::Stamp.build(&cfg));
    let recorder = Arc::new(Recorder::with_pod(id));
    let handler = model_routes_observed(model, Device::cpu(), false, recorder);
    let server = start(ServerConfig::default(), handler).unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();
    for i in 0..n {
        let resp = client
            .request(&Request::post(
                "/predictions",
                format!("{},{}", i % 200, id),
            ))
            .unwrap();
        assert_eq!(resp.status, 200);
    }
    server
}

/// An address nothing listens on (bind, read the port, drop the
/// listener).
fn dead_addr() -> SocketAddr {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    listener.local_addr().unwrap()
}

fn get(client: &mut HttpClient, path: &str) -> String {
    let resp = client.request(&Request::get(path)).unwrap();
    assert_eq!(resp.status, 200, "{path}");
    String::from_utf8(resp.body.to_vec()).unwrap()
}

fn scrape_stats(addr: SocketAddr) -> StatsSnapshot {
    let mut client = HttpClient::connect(addr).unwrap();
    parse_stats_json(&get(&mut client, "/stats")).unwrap()
}

#[test]
fn fleet_endpoint_merges_pods_bit_identically() {
    let pods = [pod(0, 4), pod(1, 7), pod(2, 2)];
    let peer_addrs: Vec<SocketAddr> = pods.iter().map(|p| p.addr()).collect();

    // Aggregator over the three live pods plus one dead peer.
    let mut peers = peer_addrs.clone();
    peers.push(dead_addr());
    let agg = start(ServerConfig::default(), fleet_routes(peers)).unwrap();
    let mut client = HttpClient::connect(agg.addr()).unwrap();

    let body = get(&mut client, "/fleet");
    assert!(body.contains("\"pods\": 3"));
    assert!(body.contains("\"unreachable\": 1"));
    assert!(body.contains("\"requests\": 13"));

    // Per-pod rows surfaced with their ids and request counts.
    let rows = parse_fleet_pods(&body).unwrap();
    assert_eq!(rows.len(), 3);
    let mut by_pod: Vec<(i64, u64, u64)> = rows.clone();
    by_pod.sort_unstable();
    assert_eq!(by_pod[0], (0, 4, 0));
    assert_eq!(by_pod[1], (1, 7, 0));
    assert_eq!(by_pod[2], (2, 2, 0));

    // The acceptance criterion: the aggregator's merged histograms are
    // bit-identical to merging the per-pod `/stats` snapshots ourselves,
    // regardless of scrape order.
    let wire_merged = parse_fleet_merged(&body).unwrap();
    let snaps: Vec<StatsSnapshot> = peer_addrs.iter().map(|&a| scrape_stats(a)).collect();
    let forward = FleetSnapshot::new(snaps.clone(), 0).merged_counts();
    let mut reversed_pods = snaps.clone();
    reversed_pods.reverse();
    let reversed = FleetSnapshot::new(reversed_pods, 0).merged_counts();
    assert!(!wire_merged.is_empty());
    for (w, (f, r)) in wire_merged.iter().zip(forward.iter().zip(reversed.iter())) {
        assert_eq!(w.stage, f.stage);
        assert_eq!(
            w.counts, f.counts,
            "stage {} differs from local merge",
            w.stage
        );
        assert_eq!(
            w.counts, r.counts,
            "stage {} depends on scrape order",
            w.stage
        );
        // And the reconstructed histograms agree exactly, not just the
        // counts: total, sum and extremes all come from the buckets.
        let (wh, fh) = (w.to_histogram(), f.to_histogram());
        assert_eq!(wh.count(), fh.count());
        assert_eq!(wh.p50(), fh.p50());
        assert_eq!(wh.p99(), fh.p99());
        assert_eq!(wh.max(), fh.max());
    }
    // Total-stage merged count covers every request served anywhere.
    let total = wire_merged.iter().find(|c| c.stage == "total").unwrap();
    assert_eq!(total.to_histogram().count(), 13);

    let metrics = get(&mut client, "/fleet/metrics");
    assert!(metrics.contains("etude_fleet_pods 3"));
    assert!(metrics.contains("etude_fleet_unreachable 1"));
    assert!(metrics.contains("etude_fleet_requests_total 13"));
    assert!(metrics
        .contains("etude_fleet_stage_latency_microseconds{stage=\"total\",quantile=\"0.99\"}"));
    assert!(metrics.contains("etude_pod_requests_total{pod=\"1\"} 7"));

    agg.shutdown();
    for p in pods {
        p.shutdown();
    }
}

#[test]
fn consecutive_scrape_failures_mark_a_pod_unhealthy_until_it_recovers() {
    use etude_obs::parse_fleet_health;
    use etude_serve::rustserver::start_on;
    use etude_serve::FleetScraper;

    let live = pod(7, 3);
    let flaky = dead_addr();
    let scraper = FleetScraper::new(vec![live.addr(), flaky]).with_unhealthy_after(2);

    // One failed scrape is a blip: unreachable, but not yet unhealthy.
    let snap = scraper.scrape();
    assert_eq!(
        (snap.pods.len(), snap.unreachable, snap.unhealthy),
        (1, 1, 0)
    );

    // The second consecutive failure crosses the threshold.
    let snap = scraper.scrape();
    assert_eq!(snap.unhealthy, 1, "two strikes = unhealthy");
    assert!(parse_fleet_health(&snap.render_json()).unwrap().2 == 1);
    assert!(snap.render_prometheus().contains("etude_fleet_unhealthy 1"));
    assert_eq!(scraper.unhealthy_pods(), 1);

    // The pod comes back on its old address: one good scrape recovers it.
    let replacement = start_on(
        flaky,
        ServerConfig::default(),
        Arc::new(|req: &Request| {
            if req.path == "/stats" {
                etude_serve::http::Response::ok(StatsSnapshot::default().render_json())
            } else {
                etude_serve::http::Response::ok("pong")
            }
        }),
    )
    .unwrap();
    let snap = scraper.scrape();
    assert_eq!(
        (snap.pods.len(), snap.unreachable, snap.unhealthy),
        (2, 0, 0)
    );
    assert_eq!(scraper.unhealthy_pods(), 0);

    // And a fresh failure starts the strike count from zero again.
    replacement.shutdown();
    let snap = scraper.scrape();
    assert_eq!(snap.unhealthy, 0, "first failure after recovery is a blip");

    live.shutdown();
}

#[test]
fn fleet_endpoint_survives_a_fully_dead_fleet() {
    let agg = start(
        ServerConfig::default(),
        fleet_routes(vec![dead_addr(), dead_addr()]),
    )
    .unwrap();
    let mut client = HttpClient::connect(agg.addr()).unwrap();
    let body = get(&mut client, "/fleet");
    assert!(body.contains("\"pods\": 0"));
    assert!(body.contains("\"unreachable\": 2"));
    agg.shutdown();
}
