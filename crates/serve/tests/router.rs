//! Scatter/gather routing over real sockets: shard-group backends each
//! holding one catalog slice, a router fanning out and merging, and the
//! acceptance criteria of DESIGN.md §13 — at full health the routed
//! answer is **byte-identical** to an unsharded reference server; under
//! total shard-group loss the router serves the surviving slices'
//! exact top-k tagged `x-degraded` instead of failing.

use etude_faults::RetryPolicy;
use etude_models::retrieval::{encode_session_query, CatalogShard, MipsIndex};
use etude_obs::trace::span_hash;
use etude_obs::{
    parse_fleet_shards, parse_stats_json, request_id_hash, Recorder, TraceCtx, TRACE_HEADER,
};
use etude_serve::http::{encode_recommendations, Request};
use etude_serve::rustserver::{start, ServerConfig, ServerHandle, DEGRADED_HEADER};
use etude_serve::{router_routes, shard_backend_routes, HttpClient, RouterConfig, ShardTopology};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Duration;

const C: usize = 600;
const D: usize = 8;
const K: usize = 21;
const QUERY_SEED: u64 = 42;

/// Deterministic pseudo-random table in [-1, 1).
fn table() -> Vec<f32> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    (0..C * D)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        })
        .collect()
}

/// Starts one shard-backend pod over `shard`, returning its handle and
/// its recorder (for trace/span assertions).
fn backend(shard: CatalogShard, pod: u32) -> (ServerHandle, Arc<Recorder>) {
    let recorder = Arc::new(Recorder::with_pod(pod));
    let handler = shard_backend_routes(shard, C, QUERY_SEED, K, Arc::clone(&recorder));
    let server = start(ServerConfig::default(), handler).unwrap();
    (server, recorder)
}

/// A fast-failing router config: no retries, tight leg budget, no
/// breakers — a dead group costs one refused connect, not a backoff.
fn quick_config() -> RouterConfig {
    RouterConfig {
        k: K,
        leg_budget: Duration::from_millis(500),
        policy: RetryPolicy::none(),
        breakers: None,
        hedge: None,
        seed: 0,
        ..RouterConfig::default()
    }
}

/// An address nothing listens on.
fn dead_addr() -> SocketAddr {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    listener.local_addr().unwrap()
}

/// A deterministic batch of sessions over the catalog.
fn sessions() -> Vec<String> {
    (0..20)
        .map(|i| {
            let a = (i * 37) % C;
            let b = (i * 151 + 13) % C;
            let c = (i * 211 + 101) % C;
            format!("{a},{b},{c}")
        })
        .collect()
}

#[test]
fn full_health_router_matches_unsharded_reference_byte_for_byte() {
    let table = table();
    let mut topo = ShardTopology::partition(C, D, QUERY_SEED, 3);

    // Two replicas per group, plus the unsharded reference server.
    let mut servers = Vec::new();
    for i in 0..topo.groups.len() {
        for _ in 0..2 {
            let (server, _) = backend(topo.shard_of(&table, i), topo.groups[i].id);
            topo.groups[i].replicas.push(server.addr());
            servers.push(server);
        }
    }
    let (reference, _) = backend(CatalogShard::from_table(&table, D, 0..C), 99);

    let router = start(
        ServerConfig::default(),
        router_routes(topo, quick_config(), Arc::new(Recorder::new())),
    )
    .unwrap();

    let mut via_router = HttpClient::connect(router.addr()).unwrap();
    let mut via_reference = HttpClient::connect(reference.addr()).unwrap();
    for session in sessions() {
        let routed = via_router
            .request(&Request::post("/predictions", session.clone()))
            .unwrap();
        let direct = via_reference
            .request(&Request::post("/predictions", session.clone()))
            .unwrap();
        assert_eq!(routed.status, 200, "{session}");
        assert_eq!(direct.status, 200);
        assert!(
            !routed.headers.contains_key(DEGRADED_HEADER),
            "full health must not be degraded"
        );
        assert_eq!(
            routed.body, direct.body,
            "routed top-k diverged from the unsharded scan for {session}"
        );
    }

    // Bad input is rejected at the router's edge, not scattered.
    let bad = via_router
        .request(&Request::post("/predictions", format!("{C}")))
        .unwrap();
    assert_eq!(bad.status, 400, "out-of-catalog id");

    router.shutdown();
    reference.shutdown();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn losing_a_shard_group_degrades_without_failing() {
    let table = table();
    let mut topo = ShardTopology::partition(C, D, QUERY_SEED, 2);

    let (alive, _) = backend(topo.shard_of(&table, 0), 0);
    topo.groups[0].replicas.push(alive.addr());
    // Group 1's only replica is dead from the start: total group loss.
    topo.groups[1].replicas.push(dead_addr());

    let survivor = topo.shard_of(&table, 0);
    let router_recorder = Arc::new(Recorder::new());
    let router = start(
        ServerConfig::default(),
        router_routes(topo, quick_config(), Arc::clone(&router_recorder)),
    )
    .unwrap();

    let mut client = HttpClient::connect(router.addr()).unwrap();
    let batch = sessions();
    for session in &batch {
        let resp = client
            .request(&Request::post("/predictions", session.clone()))
            .unwrap();
        assert_eq!(resp.status, 200, "degraded requests still succeed");
        assert_eq!(
            resp.headers.get(DEGRADED_HEADER).map(String::as_str),
            Some("1"),
            "one lost group must be visible on the response"
        );
        // The degraded answer is the *exact* top-k of the surviving
        // slice — same kernel, same merge, no approximation.
        let items: Vec<u32> = session.split(',').map(|s| s.parse().unwrap()).collect();
        let query = encode_session_query(&items, D, QUERY_SEED);
        let (ids, scores) = MipsIndex::search(&survivor, &query, K);
        assert_eq!(
            &resp.body[..],
            encode_recommendations(&ids, &scores).as_bytes()
        );
    }

    // Every degraded response is counted on the router's /stats.
    assert_eq!(router_recorder.degraded_count(), batch.len() as u64);
    let stats = client.request(&Request::get("/stats")).unwrap();
    let snap = parse_stats_json(std::str::from_utf8(&stats.body).unwrap()).unwrap();
    assert_eq!(snap.degraded, batch.len() as u64);

    // Only losing *every* group turns requests into errors.
    alive.shutdown();
    let resp = client
        .request(&Request::post("/predictions", batch[0].clone()))
        .unwrap();
    assert_eq!(resp.status, 503, "all groups lost");
    assert_eq!(
        resp.headers.get("retry-after").map(String::as_str),
        Some("1")
    );

    router.shutdown();
}

#[test]
fn fleet_view_reports_per_group_health_and_resident_bytes() {
    let table = table();
    let mut topo = ShardTopology::partition(C, D, QUERY_SEED, 2);

    // Group 0: both replicas live. Group 1: one of two replicas dead.
    let (a, _) = backend(topo.shard_of(&table, 0), 0);
    let (b, _) = backend(topo.shard_of(&table, 0), 0);
    topo.groups[0].replicas.extend([a.addr(), b.addr()]);
    let (c, _) = backend(topo.shard_of(&table, 1), 1);
    topo.groups[1].replicas.extend([c.addr(), dead_addr()]);
    let expected_bytes: Vec<u64> = topo.groups.iter().map(|g| g.resident_bytes).collect();

    let router = start(
        ServerConfig::default(),
        router_routes(topo, quick_config(), Arc::new(Recorder::new())),
    )
    .unwrap();
    let mut client = HttpClient::connect(router.addr()).unwrap();

    let resp = client.request(&Request::get("/fleet")).unwrap();
    assert_eq!(resp.status, 200);
    let body = std::str::from_utf8(&resp.body).unwrap();
    let shards = parse_fleet_shards(body).unwrap();
    assert_eq!(shards.len(), 2);
    assert_eq!((shards[0].replicas, shards[0].healthy), (2, 2));
    assert_eq!((shards[1].replicas, shards[1].healthy), (2, 1));
    assert_eq!(shards[0].base, 0);
    assert_eq!(shards[0].rows + shards[1].rows, C as u64);
    for (row, bytes) in shards.iter().zip(expected_bytes) {
        assert_eq!(row.resident_bytes, bytes);
    }

    // The Prometheus rendering carries the same per-group gauges.
    let metrics = client.request(&Request::get("/fleet/metrics")).unwrap();
    let text = std::str::from_utf8(&metrics.body).unwrap();
    assert!(text.contains("etude_shard_healthy_replicas{group=\"0\"} 2"));
    assert!(text.contains("etude_shard_healthy_replicas{group=\"1\"} 1"));

    router.shutdown();
    for s in [a, b, c] {
        s.shutdown();
    }
}

#[test]
fn scatter_legs_trace_as_sibling_child_spans() {
    let table = table();
    let mut topo = ShardTopology::partition(C, D, QUERY_SEED, 3);

    let mut servers = Vec::new();
    let mut recorders = Vec::new();
    for i in 0..topo.groups.len() {
        let (server, recorder) = backend(topo.shard_of(&table, i), i as u32);
        recorder.set_trace_retention(true);
        topo.groups[i].replicas.push(server.addr());
        servers.push(server);
        recorders.push(recorder);
    }
    let router = start(
        ServerConfig::default(),
        router_routes(topo, quick_config(), Arc::new(Recorder::new())),
    )
    .unwrap();

    let root = TraceCtx::root(7);
    let mut req = Request::post("/predictions", "1,2,3".to_string());
    req.headers.insert(TRACE_HEADER.into(), root.encode());
    let mut client = HttpClient::connect(router.addr()).unwrap();
    let resp = client.request(&req).unwrap();
    assert_eq!(resp.status, 200);

    // Leg i's pod spans are parented to a *distinct* child span of the
    // router's span — sibling legs, deterministic ids.
    let mut leg_parents = Vec::new();
    for (i, recorder) in recorders.iter().enumerate() {
        let spans = recorder.take_traces();
        assert!(!spans.is_empty(), "backend {i} retained no spans");
        let expected = span_hash(
            root.trace_id,
            root.span_id,
            etude_serve::router::SCATTER_SPAN_SALT + i as u64,
        );
        for span in &spans {
            assert_eq!(span.trace_id, root.trace_id);
            assert_eq!(
                span.parent_span, expected,
                "backend {i} span not parented to its scatter leg"
            );
        }
        leg_parents.push(expected);
    }
    leg_parents.sort_unstable();
    leg_parents.dedup();
    assert_eq!(leg_parents.len(), recorders.len(), "legs must be siblings");

    router.shutdown();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn scatter_legs_carry_request_ids_even_for_anonymous_traffic() {
    let table = table();
    let mut topo = ShardTopology::partition(C, D, QUERY_SEED, 2);

    let mut servers = Vec::new();
    let mut recorders = Vec::new();
    for i in 0..topo.groups.len() {
        let (server, recorder) = backend(topo.shard_of(&table, i), i as u32);
        recorder.set_record_retention(true);
        topo.groups[i].replicas.push(server.addr());
        servers.push(server);
        recorders.push(recorder);
    }
    let router = start(
        ServerConfig::default(),
        router_routes(topo, quick_config(), Arc::new(Recorder::new())),
    )
    .unwrap();
    let mut client = HttpClient::connect(router.addr()).unwrap();

    // A client-supplied id propagates to each leg with a shard suffix:
    // the backend-side request id is the hash of exactly "<id>-s<i>".
    let mut req = Request::post("/predictions", "1,2,3".to_string());
    req.headers
        .insert("x-request-id".into(), "traceme".to_string());
    assert_eq!(client.request(&req).unwrap().status, 200);
    for (i, recorder) in recorders.iter().enumerate() {
        let records = recorder.take_records();
        assert!(!records.is_empty(), "backend {i} retained no spans");
        let expected = request_id_hash(&format!("traceme-s{i}"));
        assert!(
            records.iter().all(|r| r.request_id == expected),
            "backend {i} spans not keyed by the propagated leg id"
        );
    }

    // Anonymous traffic still gets router-derived leg ids: backend
    // spans carry an FNV hash (a full-width id), not the small
    // process-local fallback counter a header-less request would get.
    let anon = Request::post("/predictions", "4,5,6".to_string());
    assert_eq!(client.request(&anon).unwrap().status, 200);
    let mut leg_ids = Vec::new();
    for (i, recorder) in recorders.iter().enumerate() {
        let records = recorder.take_records();
        assert!(!records.is_empty(), "backend {i} retained no spans");
        let id = records[0].request_id;
        assert!(
            records.iter().all(|r| r.request_id == id),
            "backend {i} spans split across ids"
        );
        assert!(
            id > u64::from(u32::MAX),
            "backend {i} fell back to a local counter id ({id}): leg id header missing"
        );
        leg_ids.push(id);
    }
    leg_ids.sort_unstable();
    leg_ids.dedup();
    assert_eq!(leg_ids.len(), recorders.len(), "per-shard ids are distinct");

    router.shutdown();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn expired_deadline_sheds_before_fanout_and_at_the_leg() {
    let table = table();
    let mut topo = ShardTopology::partition(C, D, QUERY_SEED, 2);
    let mut servers = Vec::new();
    for i in 0..topo.groups.len() {
        let (server, _) = backend(topo.shard_of(&table, i), topo.groups[i].id);
        topo.groups[i].replicas.push(server.addr());
        servers.push(server);
    }
    let recorder = Arc::new(Recorder::new());
    let router = start(
        ServerConfig::default(),
        router_routes(topo, quick_config(), Arc::clone(&recorder)),
    )
    .unwrap();
    let mut client = HttpClient::connect(router.addr()).unwrap();

    // A zero budget is dead on arrival: shed at the router's edge,
    // before any socket is touched.
    let dead = Request::post("/predictions", "1,2,3".to_string()).with_header("x-deadline-ms", "0");
    let resp = client.request(&dead).unwrap();
    assert_eq!(resp.status, 503, "zero budget must shed, not fan out");
    assert_eq!(recorder.shed_count(), 1);

    // A healthy budget still answers, and the response carries the
    // (exact) brownout level explicitly.
    let ok =
        Request::post("/predictions", "1,2,3".to_string()).with_header("x-deadline-ms", "5000");
    let resp = client.request(&ok).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.headers.get("x-brownout-level").map(String::as_str),
        Some("0")
    );

    // The shard leg enforces its own inherited budget too.
    let mut direct = HttpClient::connect(servers[0].addr()).unwrap();
    let leg = Request::post("/predictions", "1".to_string()).with_header("x-deadline-ms", "0");
    assert_eq!(direct.request(&leg).unwrap().status, 503);

    router.shutdown();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn inherited_brownout_level_switches_legs_to_the_quantized_rung() {
    use etude_models::retrieval::QuantizedIndex;

    let table = table();
    // A single group covering the whole catalog makes the quantized
    // reference easy to compute exactly.
    let mut topo = ShardTopology::partition(C, D, QUERY_SEED, 1);
    let (server, shard_recorder) = backend(topo.shard_of(&table, 0), 0);
    topo.groups[0].replicas.push(server.addr());

    let recorder = Arc::new(Recorder::new());
    let router = start(
        ServerConfig::default(),
        router_routes(topo, quick_config(), Arc::clone(&recorder)),
    )
    .unwrap();
    let mut client = HttpClient::connect(router.addr()).unwrap();

    // Level 1 (quantized): int8 scan, full k, level echoed back.
    let req =
        Request::post("/predictions", "1,2,3".to_string()).with_header("x-brownout-level", "1");
    let resp = client.request(&req).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.headers.get("x-brownout-level").map(String::as_str),
        Some("1")
    );
    let quant = QuantizedIndex::from_f32(&table, C, D);
    let query = encode_session_query(&[1, 2, 3], D, QUERY_SEED);
    let (ids, scores) = MipsIndex::search(&quant, &query, K);
    assert_eq!(
        &resp.body[..],
        encode_recommendations(&ids, &scores).as_bytes(),
        "inherited level 1 must serve the int8 scan's exact answer"
    );

    // Level 2 (reduced-k): k/4 results from the int8 scan.
    let req =
        Request::post("/predictions", "1,2,3".to_string()).with_header("x-brownout-level", "2");
    let resp = client.request(&req).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.headers.get("x-brownout-level").map(String::as_str),
        Some("2")
    );
    let got = String::from_utf8(resp.body.to_vec()).unwrap();
    assert_eq!(
        got.split(',').count(),
        (K / 4).max(1),
        "reduced-k rung trims the answer"
    );

    // Browned-out responses are visible on both recorders.
    assert!(
        recorder.brownout_counts()[0] >= 1,
        "router counts quantized responses"
    );
    assert!(
        shard_recorder.brownout_counts()[0] >= 1,
        "shard counts quantized legs"
    );

    router.shutdown();
    server.shutdown();
}
