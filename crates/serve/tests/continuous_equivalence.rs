//! Equivalence and admission-invariant proptests for continuous
//! batching.
//!
//! Two contracts lock the new batcher to the fixed one it replaces:
//!
//! 1. **Payload equivalence** — for any arrival schedule (sessions,
//!    concurrency, ordering), the recommendation payloads served by the
//!    continuous path are byte-identical to the fixed batcher's for the
//!    same model and sessions. Batching is an execution strategy, never
//!    a semantic: per-session inference is deterministic, so how
//!    requests were grouped must be invisible in the bytes.
//! 2. **Deadline admission** — no admitted request's inference ever
//!    starts after its deadline budget is exhausted: a blown budget is
//!    shed at the queue (before compute), and every *served* request's
//!    measured queue wait is below its budget.

use etude_faults::Deadline;
use etude_models::{ModelConfig, ModelKind, SbrModel};
use etude_serve::batching::BatchConfig;
use etude_serve::contbatch::{AdmitError, ContinuousBatcher, ContinuousConfig};
use etude_serve::http::Request;
use etude_serve::rustserver::{model_routes_batched, Handler};
use etude_serve::{model_routes_continuous, ContinuousConfig as PublicContinuousConfig};
use etude_tensor::Device;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

const CATALOG: usize = 300;

/// One shared model for the whole suite: building it is the expensive
/// part, and equivalence must hold for *any* schedule against the same
/// weights anyway.
fn shared_model() -> Arc<dyn SbrModel> {
    static MODEL: OnceLock<Arc<dyn SbrModel>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        let cfg = ModelConfig::new(CATALOG)
            .with_max_session_len(8)
            .with_seed(17);
        Arc::from(ModelKind::Core.build(&cfg))
    }))
}

fn fixed_handler() -> Handler {
    model_routes_batched(shared_model(), Device::cpu(), false, BatchConfig::default())
}

fn continuous_handler() -> Handler {
    model_routes_continuous(
        shared_model(),
        Device::cpu(),
        false,
        PublicContinuousConfig::default(),
        Arc::new(etude_obs::Recorder::new()),
        None,
    )
}

/// Fires `sessions` at a handler from `fanout` concurrent submitters
/// (arrival order scrambled by the thread scheduler) and returns
/// `(status, body)` per session, indexed like the input.
fn drive(handler: &Handler, sessions: &[Vec<u32>]) -> Vec<(u16, Vec<u8>)> {
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for session in sessions {
            let handler = Arc::clone(handler);
            handles.push(scope.spawn(move || {
                let body = session
                    .iter()
                    .map(|i| i.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                let resp = handler(&Request::post("/predictions", body));
                (resp.status, resp.body.to_vec())
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any arrival schedule: fixed-window and continuous batching serve
    /// byte-identical recommendation payloads.
    #[test]
    fn payloads_match_fixed_batcher_for_any_schedule(
        sessions in proptest::collection::vec(
            proptest::collection::vec(0u32..CATALOG as u32, 1..8),
            1..10,
        ),
    ) {
        let fixed = drive(&fixed_handler(), &sessions);
        let continuous = drive(&continuous_handler(), &sessions);
        for (i, (f, c)) in fixed.iter().zip(&continuous).enumerate() {
            prop_assert_eq!(f.0, 200u16, "fixed batcher failed session {}", i);
            prop_assert_eq!(c.0, 200u16, "continuous batcher failed session {}", i);
            prop_assert_eq!(
                &f.1, &c.1,
                "payload for session {} diverged between batchers", i
            );
        }
    }

    /// Any schedule of budgets and work: inference never starts on a
    /// request whose budget already expired, and served requests'
    /// queue waits stay within budget.
    #[test]
    fn inference_never_starts_past_the_deadline(
        jobs in proptest::collection::vec(
            // (budget_us, work_us): budgets down to sub-millisecond so
            // plenty expire in the queue behind slower work.
            (0u64..40_000, 0u64..4_000),
            1..24,
        ),
    ) {
        let late_starts = Arc::new(AtomicU64::new(0));
        let ran = Arc::new(AtomicU64::new(0));
        let handler_late = Arc::clone(&late_starts);
        let handler_ran = Arc::clone(&ran);
        let batcher: Arc<ContinuousBatcher<(Deadline, Duration), ()>> =
            Arc::new(ContinuousBatcher::spawn(
                ContinuousConfig {
                    // One slot: everything queues behind the head job,
                    // maximizing in-queue expiries.
                    slots: 1,
                    max_queue: 64,
                    default_deadline: Duration::from_secs(1),
                },
                move |(deadline, work): (Deadline, Duration)| {
                    // This closure IS the start of inference.
                    if deadline.expired() {
                        handler_late.fetch_add(1, Ordering::SeqCst);
                    }
                    handler_ran.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(work);
                },
            ));

        let results: Vec<Result<Duration, AdmitError>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for &(budget_us, work_us) in &jobs {
                let batcher = Arc::clone(&batcher);
                handles.push(scope.spawn(move || {
                    let budget = Duration::from_micros(budget_us);
                    let deadline = Deadline::after(budget);
                    batcher
                        .try_call((deadline, Duration::from_micros(work_us)), deadline)
                        .map(|admitted| admitted.queue_wait)
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // The invariant itself: zero inferences started past expiry.
        prop_assert_eq!(
            late_starts.load(Ordering::SeqCst), 0,
            "inference started after the deadline was exhausted"
        );
        let mut served = 0u64;
        for (i, result) in results.iter().enumerate() {
            match result {
                Ok(queue_wait) => {
                    served += 1;
                    prop_assert!(
                        *queue_wait <= Duration::from_micros(jobs[i].0),
                        "served request {} waited {:?} on a {}us budget",
                        i, queue_wait, jobs[i].0
                    );
                }
                Err(AdmitError::Expired) => {}
                Err(e) => prop_assert!(false, "unexpected admission error: {:?}", e),
            }
        }
        // Exactly the served requests (and the in-queue expiries, which
        // run no compute) reached a slot.
        prop_assert_eq!(
            ran.load(Ordering::SeqCst), served,
            "handler ran for a request that was not served"
        );
    }
}

/// Low-load byte-identity across the full HTTP stack: the acceptance
/// criterion's "byte-identical recommendation payloads between the two
/// servers at low load", checked end-to-end over real sockets — the
/// blocking server with the fixed batcher vs the reactor server with
/// the continuous batcher.
#[test]
fn servers_agree_byte_for_byte_at_low_load() {
    use etude_serve::client::HttpClient;
    use etude_serve::reactor::{self, ReactorConfig};
    use etude_serve::rustserver::{self, ServerConfig};

    let blocking = rustserver::start(ServerConfig::default(), fixed_handler()).unwrap();
    let reactor = reactor::start(ReactorConfig::default(), continuous_handler()).unwrap();
    let mut blocking_client = HttpClient::connect(blocking.addr()).unwrap();
    let mut reactor_client = HttpClient::connect(reactor.addr()).unwrap();

    let sessions = ["1", "5,2,9", "10,20,30,40", "299", "0,0,7", "42,17,42,17,8"];
    for session in sessions {
        let req = Request::post("/predictions", session);
        let a = blocking_client.request(&req).unwrap();
        let b = reactor_client.request(&req).unwrap();
        assert_eq!(a.status, 200, "blocking+fixed failed {session}");
        assert_eq!(b.status, 200, "reactor+continuous failed {session}");
        assert_eq!(
            a.body, b.body,
            "recommendation payload diverged for session {session}"
        );
    }
    blocking.shutdown();
    reactor.shutdown();
}

/// In-queue expiry sheds with the standard overload contract (503 +
/// retry-after) through the full continuous route table.
#[test]
fn expired_requests_shed_with_503_before_compute() {
    let handler = model_routes_continuous(
        shared_model(),
        Device::cpu(),
        false,
        PublicContinuousConfig::default(),
        Arc::new(etude_obs::Recorder::new()),
        None,
    );
    // A zero budget via the deadline header: expired at admission.
    let req = Request::post("/predictions", "1,2,3").with_header(etude_serve::DEADLINE_HEADER, "0");
    let started = Instant::now();
    let resp = handler(&req);
    assert_eq!(resp.status, 503);
    assert_eq!(
        resp.headers.get("retry-after").map(String::as_str),
        Some("1")
    );
    // Shed BEFORE compute: far faster than an inference pass.
    assert!(started.elapsed() < Duration::from_millis(50));
}

/// The deadline budget is anchored at wire-parse time, not handler
/// entry: a request that exhausted its budget waiting for a dispatch
/// thread (the reactor runs route handlers on a pool behind a queue)
/// is shed even though the batcher's slots are free.
#[test]
fn dispatch_queue_wait_counts_against_the_budget() {
    let handler = model_routes_continuous(
        shared_model(),
        Device::cpu(),
        false,
        PublicContinuousConfig::default(),
        Arc::new(etude_obs::Recorder::new()),
        None,
    );
    let mut req =
        Request::post("/predictions", "1,2,3").with_header(etude_serve::DEADLINE_HEADER, "50");
    // Simulate the overloaded dispatch queue: the request came off the
    // wire long before the handler ran, blowing its 50 ms budget.
    req.arrival = Instant::now() - Duration::from_millis(200);
    let resp = handler(&req);
    assert_eq!(
        resp.status, 503,
        "budget spent in the dispatch queue must shed, not serve late"
    );
    assert_eq!(
        resp.headers.get("retry-after").map(String::as_str),
        Some("1")
    );

    // An identical request whose arrival is fresh serves normally.
    let fresh =
        Request::post("/predictions", "1,2,3").with_header(etude_serve::DEADLINE_HEADER, "50");
    assert_eq!(handler(&fresh).status, 200);
}
