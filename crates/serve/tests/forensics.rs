//! Tail-latency forensics end to end: a reactor server under
//! catalog-scan load must be able to say *why* its slowest requests
//! were slow, not just that they were.
//!
//! Three trails are asserted over real sockets:
//!
//! * `/debug/profile` — the always-on sampling profiler's folded
//!   stacks, rooted at the host ISA tag, naming the fused
//!   score+top-k kernel as a leaf,
//! * `/stats` — the reactor's own telemetry block (loop utilization in
//!   `(0, 1]`, dispatch-wait samples for every served request),
//! * `/debug/slow` — the slowest-of-window exemplar store serving a
//!   complete span tree whose component stages tile the total, as
//!   Chrome `trace_event` JSON.

use etude_models::{ModelConfig, ModelKind, SbrModel};
use etude_obs::{parse_stats_json, Recorder, Stage};
use etude_serve::http::Request;
use etude_serve::reactor::{self, ReactorConfig};
use etude_serve::{model_routes_continuous, ContinuousConfig, HttpClient};
use etude_tensor::Device;
use std::sync::Arc;

// Sized so the *deliberate* delay dwarfs what the pipeline cannot
// time: with one inference slot, 16 concurrent clients keep ~15
// requests queued behind a 32k-item catalog scan, pushing the slowest
// exemplar's queue wait into the tens of milliseconds. The untracked
// intervals (slot-wakeup and reply-handoff latency, ~0.5ms under a
// busy scheduler) then sit far inside the 10% tiling bound even in
// release builds, where compute alone would be sub-millisecond.
const CATALOG: usize = 32_000;
const THREADS: u32 = 16;
const PER_THREAD: u32 = 6;

#[test]
fn slow_requests_leave_a_complete_forensic_trail() {
    let cfg = ModelConfig::new(CATALOG)
        .with_max_session_len(8)
        .with_seed(11);
    // SASRec decodes through the fused score+top-k node — the kernel
    // the profiler must catch in the act (CORE's tempered decode takes
    // the unfused catalog-scores path instead).
    let model: Arc<dyn SbrModel> = Arc::from(ModelKind::SasRec.build(&cfg));
    let recorder = Arc::new(Recorder::new());
    // One inference slot: the concurrent burst below *must* queue, so
    // the window's slowest exemplar is a deliberately delayed request
    // whose span tree has a real queue component.
    let config = ContinuousConfig {
        slots: 1,
        // The queue is the *point* here, not an overload symptom: a
        // generous budget keeps contended debug runs from shedding the
        // deliberately delayed requests as expired.
        default_deadline: std::time::Duration::from_secs(120),
        ..ContinuousConfig::default()
    };
    let handler = model_routes_continuous(
        model,
        Device::cpu(),
        false,
        config,
        Arc::clone(&recorder),
        None,
    );
    let server =
        reactor::start_observed(ReactorConfig::default(), handler, Arc::clone(&recorder)).unwrap();

    // Catalog-scan load: concurrent sessions keep the fused kernel hot
    // long enough for the 1ms sampler to catch it in the act.
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let addr = server.addr();
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                let c = CATALOG as u32;
                for i in 0..PER_THREAD {
                    let a = (t * 31 + i * 7) % c;
                    let body = format!("{a},{},{}", (a + 5) % c, (a + 11) % c);
                    let resp = client
                        .request(&Request::post("/predictions", body))
                        .unwrap();
                    assert_eq!(resp.status, 200);
                }
            });
        }
    });

    let mut client = HttpClient::connect(server.addr()).unwrap();

    // (a) The profiler names the kernel. Every folded line is rooted at
    // the ISA tag, and the fused score+top-k path appears by name.
    let resp = client.request(&Request::get("/debug/profile")).unwrap();
    assert_eq!(resp.status, 200);
    let folded = String::from_utf8(resp.body.to_vec()).unwrap();
    assert!(!folded.trim().is_empty(), "folded stacks must not be empty");
    let root = format!("etude[{}]", etude_tensor::simd::isa_name());
    assert!(
        folded.lines().all(|l| l.starts_with(&root)),
        "every stack is rooted at the ISA tag:\n{folded}"
    );
    assert!(
        folded.contains("tensor::score_topk"),
        "the fused kernel must appear in the folded stacks:\n{folded}"
    );

    // (b) Reactor telemetry reaches /stats: the loops did real work but
    // mostly waited, and every served request left a dispatch-wait
    // sample.
    let resp = client.request(&Request::get("/stats")).unwrap();
    assert_eq!(resp.status, 200);
    let snap = parse_stats_json(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    let telemetry = snap.reactor.expect("observed reactor publishes telemetry");
    let util = telemetry.utilization();
    assert!(
        util > 0.0 && util <= 1.0,
        "loop utilization {util} outside (0, 1]"
    );
    assert!(
        telemetry.dispatch_wait_histogram().count() >= u64::from(THREADS * PER_THREAD),
        "every served request leaves a dispatch-wait sample"
    );

    // (c) The exemplar store kept the slowest requests with complete,
    // tiling span trees: every component stage present, components
    // summing to within 10% of the recorded total, and the slowest
    // exemplar's queue span visibly non-zero (the deliberate delay).
    let rows = recorder.exemplars().snapshot();
    assert!(!rows.is_empty(), "burst must leave at least one exemplar");
    for (rid, _, stages) in &rows {
        for stage in Stage::COMPONENTS {
            assert!(
                stages.iter().any(|&(s, _)| s == stage),
                "exemplar {rid} is missing the {} span",
                stage.name()
            );
        }
    }
    // Tiling is asserted on the slowest exemplar — the deliberately
    // delayed request. Its total is queue-dominated, so the intervals
    // the pipeline cannot time (e.g. slot-wakeup latency under a busy
    // scheduler) stay well under the 10% bound; the fast exemplars'
    // sub-millisecond totals would make that bound a scheduler test.
    let (slowest_rid, slowest_total, slowest_stages) = &rows[0];
    let components: u64 = slowest_stages
        .iter()
        .filter(|&&(s, _)| s != Stage::Total)
        .map(|&(_, ns)| ns)
        .sum();
    let gap = slowest_total.abs_diff(components);
    assert!(
        gap * 10 <= *slowest_total,
        "exemplar {slowest_rid}: components ({components}ns) do not tile total ({slowest_total}ns)"
    );
    let queue_ns = slowest_stages
        .iter()
        .find(|&&(s, _)| s == Stage::Queue)
        .map(|&(_, ns)| ns)
        .unwrap();
    assert!(
        queue_ns > 0,
        "the slowest exemplar ({slowest_total}ns) queued behind the single slot"
    );

    // (d) /debug/slow serves the same store as well-formed Chrome
    // trace JSON: a span tree per exemplar, component events included.
    let resp = client.request(&Request::get("/debug/slow")).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.headers.get("content-type").map(String::as_str),
        Some("application/json")
    );
    let trace = String::from_utf8(resp.body.to_vec()).unwrap();
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"ph\": \"X\""));
    assert!(trace.contains("\"name\": \"total\""));
    for stage in Stage::COMPONENTS {
        assert!(
            trace.contains(&format!("\"name\": \"{}\"", stage.name())),
            "chrome trace must include a {} event",
            stage.name()
        );
    }

    // Window aging is covered by the obs unit tests; here just confirm
    // the slowest-N store stayed bounded under a 100-request burst.
    assert!(rows.len() <= 8, "slowest-N store stays bounded");

    server.shutdown();
}
