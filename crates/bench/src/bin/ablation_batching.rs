//! **Design ablation** — GPU request batching on/off.
//!
//! The paper's inference server applies "request batching for GPUs for up
//! to 1,024 requests" with a two-millisecond buffer flush. This ablation
//! sweeps the target throughput against a T4 deployment with and without
//! the batcher, showing where unbatched GPU serving collapses.

use etude_bench::HarnessOptions;
use etude_loadgen::{LoadConfig, SimLoadGen};
use etude_metrics::report::{fmt_duration, Table};
use etude_models::{ModelConfig, ModelKind};
use etude_serve::service::ExecutionKind;
use etude_serve::simserver::{RustServerConfig, SimRustServer};
use etude_serve::ServiceProfile;
use etude_tensor::Device;
use etude_workload::{SyntheticWorkload, WorkloadConfig};
use std::time::Duration;

fn main() {
    let opts = HarnessOptions::from_args();
    println!("== Ablation: GPU request batching (1,024 / 2ms) on vs off ==\n");

    let catalog = 1_000_000;
    let profile = || {
        ServiceProfile::build(
            ModelKind::SasRec,
            &ModelConfig::new(catalog).without_weights(),
            &Device::t4(),
            ExecutionKind::Jit,
        )
        .expect("profile")
    };
    let workload = SyntheticWorkload::new(WorkloadConfig::bolcom_like(catalog));

    let mut table = Table::new([
        "target_rps",
        "batched_p90",
        "batched_err",
        "mean_batch",
        "unbatched_p90",
        "unbatched_err",
    ]);
    let mut crossover_seen = false;
    for target in [100u64, 250, 500, 600, 700, 1_000] {
        let log = workload.generate(target * opts.ramp_secs);
        let config = LoadConfig::scaled_rampup(target, opts.ramp_secs);

        let batched_server = SimRustServer::new(profile(), RustServerConfig::gpu());
        let batched = SimLoadGen::run(
            std::rc::Rc::clone(&batched_server) as _,
            &log,
            config.clone(),
        );

        let unbatched_server = SimRustServer::new(
            profile(),
            RustServerConfig {
                batching: false,
                ..RustServerConfig::gpu()
            },
        );
        let unbatched = SimLoadGen::run(unbatched_server, &log, config);

        let bs = batched.tail_summary(5);
        let us = unbatched.tail_summary(5);
        if bs.meets_slo(Duration::from_millis(50)) && !us.meets_slo(Duration::from_millis(50)) {
            crossover_seen = true;
        }
        table.row([
            target.to_string(),
            fmt_duration(bs.p90),
            batched.errors.to_string(),
            format!("{:.1}", batched_server.mean_batch_size()),
            fmt_duration(us.p90),
            unbatched.errors.to_string(),
        ]);
    }
    opts.emit("ablation_batching", &table);

    println!("paper shape checks:");
    println!(
        "  [{}] batching extends the feasible throughput range of a single GPU",
        if crossover_seen { "ok" } else { "!!" }
    );
}
