//! **latency_breakdown** — Where a prediction's milliseconds go.
//!
//! Starts live HTTP servers (plain JIT route and the batched route),
//! drives real POST `/predictions` traffic at them, then scrapes each
//! server's `/stats` endpoint and reports the per-stage latency
//! breakdown recorded by `etude-obs` (parse → queue → inference →
//! top-k → serialize → total). This is the observability subsystem's
//! end-to-end exercise: everything flows through real sockets and the
//! same Prometheus/JSON surface operators would scrape.
//!
//! A machine-readable summary is written to
//! `results/BENCH_latency_breakdown.json`. Run with `--smoke` for a
//! seconds-long single-model pass (used by `scripts/verify.sh`).

use etude_models::{ModelConfig, ModelKind, SbrModel};
use etude_obs::{parse_stats_json, Stage, StatsSnapshot};
use etude_serve::batching::BatchConfig;
use etude_serve::client::HttpClient;
use etude_serve::http::{self, Request};
use etude_serve::rustserver::{model_routes, model_routes_batched, start, Handler, ServerConfig};
use etude_tensor::Device;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

struct BenchPlan {
    models: Vec<ModelKind>,
    catalog: usize,
    requests: usize,
}

struct Cell {
    model: &'static str,
    route: &'static str,
    ok: usize,
    stats: StatsSnapshot,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let plan = if smoke {
        BenchPlan {
            models: vec![ModelKind::Core],
            catalog: 300,
            requests: 40,
        }
    } else {
        BenchPlan {
            models: vec![ModelKind::Core, ModelKind::Gru4Rec, ModelKind::Narm],
            catalog: 10_000,
            requests: 300,
        }
    };
    println!(
        "== latency_breakdown: server-side stage latencies ({} mode) ==\n",
        if smoke { "smoke" } else { "full" }
    );

    let mut cells = Vec::new();
    for &model in &plan.models {
        let cfg = ModelConfig::new(plan.catalog)
            .with_max_session_len(16)
            .with_seed(11);
        for route in ["plain_jit", "batched_jit"] {
            let shared: Arc<dyn SbrModel> = Arc::from(model.build(&cfg));
            let handler: Handler = match route {
                "plain_jit" => model_routes(shared, Device::cpu(), true),
                _ => model_routes_batched(
                    shared,
                    Device::cpu(),
                    true,
                    BatchConfig {
                        max_batch: 8,
                        flush_every: Duration::from_millis(1),
                        ..Default::default()
                    },
                ),
            };
            match drive(handler, &plan, model.name()) {
                Some((ok, stats)) => {
                    println!("-- {} / {} --", model.name(), route);
                    println!("{}", stats.render_table());
                    report_tiling(&stats);
                    cells.push(Cell {
                        model: model.name(),
                        route,
                        ok,
                        stats,
                    });
                }
                None => eprintln!("!! {} / {route}: run failed", model.name()),
            }
        }
    }
    write_summary(&cells, smoke);
}

/// Starts a server around `handler`, fires the plan's requests at it and
/// returns `(ok count, scraped /stats snapshot)`.
fn drive(handler: Handler, plan: &BenchPlan, model: &str) -> Option<(usize, StatsSnapshot)> {
    let server = start(ServerConfig { workers: 2 }, handler).ok()?;
    let mut client =
        HttpClient::connect_with_timeout(server.addr(), Duration::from_secs(5)).ok()?;
    let mut rng = SmallRng::seed_from_u64(7);
    let mut ok = 0usize;
    for i in 0..plan.requests {
        let len = rng.gen_range(1..=12usize);
        let items: Vec<u32> = (0..len)
            .map(|_| rng.gen_range(0..plan.catalog as u32))
            .collect();
        let mut req = Request::post("/predictions", http::encode_session(&items));
        req.headers
            .insert("x-request-id".into(), format!("bench-{model}-{i}"));
        if matches!(client.request(&req), Ok(resp) if resp.status == 200) {
            ok += 1;
        }
    }
    // Scrape the same surface operators would: GET /stats as JSON.
    let resp = client.request(&Request::get("/stats")).ok()?;
    let stats = (resp.status == 200)
        .then(|| parse_stats_json(std::str::from_utf8(&resp.body).ok()?))
        .flatten()?;
    server.shutdown();
    Some((ok, stats))
}

/// Prints whether the component stage means tile the observed total —
/// the subsystem's core accounting invariant, checked here on live data.
fn report_tiling(stats: &StatsSnapshot) {
    let total = match stats.stage(Stage::Total.name()) {
        Some(t) if t.count > 0 => t.mean_us,
        _ => return,
    };
    let sum: f64 = Stage::COMPONENTS
        .iter()
        .filter_map(|s| stats.stage(s.name()))
        .map(|s| s.mean_us)
        .sum();
    let gap = (total - sum).abs();
    println!(
        "  [{}] component means sum to {:.1}us vs total {:.1}us\n",
        if gap <= total * 0.1 { "ok" } else { "!!" },
        sum,
        total
    );
}

/// Writes the JSON artifact the results pipeline consumes.
fn write_summary(cells: &[Cell], smoke: bool) {
    let mut body = String::new();
    for cell in cells {
        if !body.is_empty() {
            body.push_str(",\n");
        }
        let mut stages = String::new();
        for s in &cell.stats.stages {
            if !stages.is_empty() {
                stages.push_str(", ");
            }
            stages.push_str(&format!(
                "{{\"stage\": \"{}\", \"count\": {}, \"mean_us\": {:.3}, \"p50_us\": {}, \
                 \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
                s.stage, s.count, s.mean_us, s.p50_us, s.p90_us, s.p99_us, s.max_us
            ));
        }
        body.push_str(&format!(
            "    {{\"model\": \"{}\", \"route\": \"{}\", \"ok\": {}, \"requests\": {}, \
             \"dropped\": {}, \"stages\": [{stages}]}}",
            cell.model, cell.route, cell.ok, cell.stats.requests, cell.stats.dropped
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"latency_breakdown\",\n  \"mode\": \"{}\",\n  \
         \"cells\": [\n{body}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" }
    );
    // Binaries may run from any cwd; anchor on the workspace root.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("BENCH_latency_breakdown.json");
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
