//! **Section III-A (validation)** — Synthetic vs real click workload.
//!
//! The paper validates Algorithm 1 by comparing "the latency measurements
//! achieved by replaying a real click log from bol.com to the
//! measurements achieved when using a synthetic workload generated based
//! on statistics from the real click log", finding that "the achieved
//! latencies resemble each other closely".
//!
//! The proprietary log is simulated by a *richer* generative process
//! (Zipf popularity with browsing locality and mixed session lengths);
//! its two marginal exponents are then *estimated* — exactly as a data
//! scientist would — and fed to Algorithm 1. Both workloads replay
//! against the same deployment.

use etude_bench::HarnessOptions;
use etude_loadgen::{LoadConfig, SimLoadGen};
use etude_metrics::report::{fmt_duration, Table};
use etude_metrics::LatencySummary;
use etude_models::{ModelConfig, ModelKind};
use etude_serve::service::ExecutionKind;
use etude_serve::simserver::{RustServerConfig, SimRustServer};
use etude_serve::ServiceProfile;
use etude_tensor::Device;
use etude_workload::reallog::{generate_real_log, RealLogConfig};
use etude_workload::{LogStatistics, SyntheticWorkload};

fn main() {
    let opts = HarnessOptions::from_args();
    println!("== Validation: real click-log replay vs fitted synthetic workload ==\n");

    let catalog = 100_000;
    let target_rps = 400;
    let clicks = target_rps * opts.ramp_secs;

    // The stand-in for the real bol.com click log.
    let real_cfg = RealLogConfig {
        catalog_size: catalog,
        ..Default::default()
    };
    let real_log = generate_real_log(&real_cfg, clicks);

    // Fit the two marginal statistics from it (the only thing ETUDE
    // users must provide) and generate the synthetic counterpart.
    let stats = LogStatistics::estimate(&real_log, catalog).expect("log large enough");
    println!(
        "fitted marginals: alpha_length = {:.3}, alpha_clicks = {:.3} ({} sessions, {} clicks)\n",
        stats.alpha_length, stats.alpha_clicks, stats.sessions, stats.clicks
    );
    let synthetic = SyntheticWorkload::new(stats.to_workload_config(catalog, 99));
    let synth_log = synthetic.generate(clicks);

    // Replay both against identical deployments.
    let run = |log: &etude_workload::SessionLog| {
        let profile = ServiceProfile::build(
            ModelKind::Core,
            &ModelConfig::new(catalog).without_weights(),
            &Device::cpu(),
            ExecutionKind::Jit,
        )
        .expect("profile");
        let server = SimRustServer::new(profile, RustServerConfig::cpu(5));
        SimLoadGen::run(
            server,
            log,
            LoadConfig::scaled_rampup(target_rps, opts.ramp_secs),
        )
    };
    let real_result = run(&real_log);
    let synth_result = run(&synth_log);

    let mut table = Table::new([
        "workload", "requests", "p50", "p90", "p99", "mean", "errors",
    ]);
    let mut row = |name: &str, s: &LatencySummary| {
        table.row([
            name.to_string(),
            s.count.to_string(),
            fmt_duration(s.p50),
            fmt_duration(s.p90),
            fmt_duration(s.p99),
            fmt_duration(s.mean),
            s.errors.to_string(),
        ]);
    };
    let real_summary = real_result.summary();
    let synth_summary = synth_result.summary();
    row("real-log replay", &real_summary);
    row("synthetic (fitted)", &synth_summary);
    opts.emit("validation_synthetic", &table);

    let rel = |a: f64, b: f64| (a - b).abs() / a.max(1e-12);
    let p90_gap = rel(
        real_summary.p90.as_secs_f64(),
        synth_summary.p90.as_secs_f64(),
    );
    let mean_gap = rel(
        real_summary.mean.as_secs_f64(),
        synth_summary.mean.as_secs_f64(),
    );
    println!("paper shape checks:");
    println!(
        "  [{}] p90 latencies resemble each other closely ({:.1}% apart)",
        if p90_gap < 0.15 { "ok" } else { "!!" },
        100.0 * p90_gap
    );
    println!(
        "  [{}] mean latencies resemble each other closely ({:.1}% apart)",
        if mean_gap < 0.15 { "ok" } else { "!!" },
        100.0 * mean_gap
    );
}
