//! **ablation_faults** — what fault injection costs, and what retries buy.
//!
//! Sweeps seeded fault rates × client retry policies against a live
//! rustserver: each cell wraps the observed model routes in
//! [`inject_faults`] with a train of 250 ms `ErrorResponse` bursts (one
//! per second — fault draws are pure in `(elapsed, request id)`, so a
//! faulted id keeps failing *while its window is active*; only a burst
//! shorter than the retry schedule can be ridden out), then drives it
//! with the resilient load generator. The grid shows the paper-style
//! trade-off: without retries the error rate tracks the injected fault
//! rate; with bounded backoff the client absorbs the bursts at the
//! price of retry traffic.
//!
//! Every draw derives from the plan seed, so re-running a cell replays
//! the identical fault schedule. A machine-readable summary is written
//! to `results/BENCH_faults.json`, including the stage-accounting check
//! (component stage means must tile the total within 10%) against the
//! same `/stats` surface operators would scrape. Run with `--smoke` for
//! a seconds-long pass (used by `scripts/verify.sh --chaos`).

use etude_faults::{FaultInjector, FaultKind, FaultPlan, RetryPolicy};
use etude_loadgen::{LoadConfig, RealLoadGen};
use etude_models::{ModelConfig, ModelKind, SbrModel};
use etude_obs::{Recorder, Stage, StatsSnapshot};
use etude_serve::rustserver::{inject_faults, model_routes_observed, start, ServerConfig};
use etude_tensor::Device;
use etude_workload::{SessionLog, SyntheticWorkload, WorkloadConfig};
use std::sync::Arc;
use std::time::Duration;

struct BenchPlan {
    rates: Vec<f64>,
    catalog: usize,
    target_rps: u64,
    duration: Duration,
}

struct Cell {
    rate: f64,
    policy: &'static str,
    sent: u64,
    ok: u64,
    errors: u64,
    retries: u64,
    degraded: u64,
    injected: u64,
    stats: StatsSnapshot,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let plan = if smoke {
        BenchPlan {
            rates: vec![0.0, 0.3],
            catalog: 300,
            target_rps: 80,
            duration: Duration::from_secs(2),
        }
    } else {
        BenchPlan {
            rates: vec![0.0, 0.15, 0.4],
            catalog: 10_000,
            target_rps: 100,
            duration: Duration::from_secs(4),
        }
    };
    println!(
        "== ablation_faults: fault rate x retry policy ({} mode) ==\n",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:>6}  {:>6}  {:>6}  {:>6}  {:>7}  {:>8}  {:>9}",
        "rate", "policy", "sent", "ok", "errors", "retries", "injected"
    );

    let log = workload(&plan);
    let mut cells = Vec::new();
    for &rate in &plan.rates {
        for policy_name in ["none", "chaos"] {
            match drive(&plan, &log, rate, policy_name) {
                Some(cell) => {
                    println!(
                        "{:>6.2}  {:>6}  {:>6}  {:>6}  {:>7}  {:>8}  {:>9}",
                        cell.rate,
                        cell.policy,
                        cell.sent,
                        cell.ok,
                        cell.errors,
                        cell.retries,
                        cell.injected
                    );
                    cells.push(cell);
                }
                None => eprintln!("!! rate {rate} / {policy_name}: run failed"),
            }
        }
    }
    println!();
    report_claims(&cells);
    write_summary(&cells, smoke);
}

fn workload(plan: &BenchPlan) -> SessionLog {
    SyntheticWorkload::new(WorkloadConfig {
        catalog_size: plan.catalog,
        alpha_length: 2.0,
        alpha_clicks: 1.8,
        max_session_len: 20,
        seed: 4,
    })
    .generate(plan.target_rps * (plan.duration.as_secs() + 2))
}

/// Runs one grid cell: a fault-wrapped live server driven by the
/// resilient load generator under the named retry policy.
fn drive(plan: &BenchPlan, log: &SessionLog, rate: f64, policy_name: &'static str) -> Option<Cell> {
    // One 250 ms burst per second of run (plus slack for the tail). The
    // retry policy below outlasts a burst even with jitter shrinking
    // every delay, so resilient clients ride the bursts out.
    let mut fault_plan = FaultPlan::seeded(1787);
    if rate > 0.0 {
        for second in 0..plan.duration.as_secs() + 4 {
            fault_plan = fault_plan.with_window(
                Duration::from_secs(second),
                Duration::from_secs(second) + Duration::from_millis(250),
                FaultKind::ErrorResponse {
                    prob: rate,
                    status: 503,
                },
            );
        }
    }
    let injector = FaultInjector::new(fault_plan);
    let recorder = Arc::new(Recorder::new());
    let cfg = ModelConfig::new(plan.catalog)
        .with_max_session_len(16)
        .with_seed(11);
    let model: Arc<dyn SbrModel> = Arc::from(ModelKind::Core.build(&cfg));
    let routes = model_routes_observed(model, Device::cpu(), true, Arc::clone(&recorder));
    let handler = inject_faults(routes, injector.clone(), Arc::clone(&recorder));
    let server = start(ServerConfig { workers: 2 }, handler).ok()?;

    // Minimum total span with jitter halving every delay:
    // (10+20+40+80*9)/2 = 395 ms > the 250 ms burst length.
    let policy = match policy_name {
        "none" => RetryPolicy::none(),
        _ => RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(80),
            max_retries: 12,
            jitter: 0.5,
        },
    };
    let result = RealLoadGen::run_resilient(
        server.addr(),
        log,
        LoadConfig {
            target_rps: plan.target_rps,
            ramp: plan.duration / 2,
            duration: plan.duration,
            backpressure: true,
            seed: 9,
        },
        2,
        policy,
    )
    .ok()?;
    let stats = result.server_stages.clone()?;
    server.shutdown();
    Some(Cell {
        rate,
        policy: policy_name,
        sent: result.sent,
        ok: result.ok,
        errors: result.errors,
        retries: result.retries,
        degraded: result.degraded,
        injected: injector.counters().errors(),
        stats,
    })
}

/// Whether the component stage means tile the total within 10% — the
/// accounting invariant every cell's `/stats` scrape must satisfy.
fn stage_tiling(stats: &StatsSnapshot) -> Option<(f64, f64, bool)> {
    let total = stats.stage(Stage::Total.name()).filter(|t| t.count > 0)?;
    let sum: f64 = Stage::COMPONENTS
        .iter()
        .filter_map(|s| stats.stage(s.name()))
        .map(|s| s.mean_us)
        .sum();
    let consistent = (total.mean_us - sum).abs() <= total.mean_us * 0.1;
    Some((sum, total.mean_us, consistent))
}

/// Prints the ablation's headline claims against the collected grid.
fn report_claims(cells: &[Cell]) {
    for cell in cells {
        match stage_tiling(&cell.stats) {
            Some((sum, total, consistent)) => println!(
                "  [{}] rate {:.2}/{}: stage means sum to {sum:.1}us vs total {total:.1}us",
                if consistent { "ok" } else { "!!" },
                cell.rate,
                cell.policy,
            ),
            None => println!(
                "  [--] rate {:.2}/{}: no completed requests to account for",
                cell.rate, cell.policy
            ),
        }
    }
    let absorbed = cells
        .iter()
        .filter(|c| c.rate > 0.0 && c.policy == "chaos")
        .all(|c| c.errors * 10 < c.injected.max(1));
    println!(
        "  [{}] bounded backoff absorbs injected faults (errors << injected)",
        if absorbed { "ok" } else { "!!" }
    );
}

/// Writes the JSON artifact the results pipeline consumes.
fn write_summary(cells: &[Cell], smoke: bool) {
    let mut body = String::new();
    for cell in cells {
        if !body.is_empty() {
            body.push_str(",\n");
        }
        let (stage_sum, total, consistent) = stage_tiling(&cell.stats).unwrap_or((0.0, 0.0, true));
        body.push_str(&format!(
            "    {{\"fault_rate\": {}, \"policy\": \"{}\", \"sent\": {}, \"ok\": {}, \
             \"errors\": {}, \"retries\": {}, \"degraded\": {}, \"injected_faults\": {}, \
             \"server_requests\": {}, \"server_shed\": {}, \"server_faults\": {}, \
             \"stage_sum_us\": {:.3}, \"stage_total_us\": {:.3}, \"stages_consistent\": {}}}",
            cell.rate,
            cell.policy,
            cell.sent,
            cell.ok,
            cell.errors,
            cell.retries,
            cell.degraded,
            cell.injected,
            cell.stats.requests,
            cell.stats.shed,
            cell.stats.faults,
            stage_sum,
            total,
            consistent,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"ablation_faults\",\n  \"mode\": \"{}\",\n  \
         \"plan_seed\": 1787,\n  \"client_seed\": 9,\n  \"cells\": [\n{body}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" }
    );
    // Binaries may run from any cwd; anchor on the workspace root.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("BENCH_faults.json");
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
