//! **fleet_timeline** — fleet-wide SLO timeline under chaos, swept over
//! replica counts.
//!
//! Each cell deploys N replicas of the Core model in the simulated
//! cluster, crashes replica 0 mid-ramp, and opens a drop window on the
//! client-server network during the full-rate hold. The SLO burn-rate
//! monitor then reports *when* the deployment first caught fire and
//! *why*, and the per-pod load counters show how the survivors absorbed
//! the crashed replica's traffic (serving skew). A calm baseline at the
//! same rate confirms the alerts are the faults' doing.
//!
//! Everything is seeded, so every cell replays bit-identically. The
//! summary lands in `results/BENCH_fleet_timeline.json`; run with
//! `--smoke` for the seconds-long pass `scripts/verify.sh --fleet`
//! uses.

use etude_cluster::{Deployment, DeploymentSpec, PodLoadStats};
use etude_core::runner::service_profile;
use etude_core::spec::ExperimentSpec;
use etude_faults::{FaultInjector, FaultKind, FaultPlan};
use etude_loadgen::{LoadConfig, LoadTestResult, SimLoadGen};
use etude_models::ModelKind;
use etude_obs::{SloMonitor, SloPolicy, SloReport};
use etude_simnet::Sim;
use etude_workload::SyntheticWorkload;
use std::time::Duration;

struct BenchPlan {
    replicas: Vec<usize>,
    catalog: usize,
    target_rps: u64,
    ramp: Duration,
    hold: Duration,
}

struct Cell {
    replicas: usize,
    faulted: bool,
    load: LoadTestResult,
    report: SloReport,
    pods: Vec<PodLoadStats>,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let plan = if smoke {
        BenchPlan {
            replicas: vec![2],
            catalog: 300,
            target_rps: 100,
            ramp: Duration::from_secs(6),
            hold: Duration::from_secs(5),
        }
    } else {
        BenchPlan {
            replicas: vec![1, 2, 4],
            catalog: 10_000,
            target_rps: 200,
            ramp: Duration::from_secs(12),
            hold: Duration::from_secs(8),
        }
    };
    println!(
        "== fleet_timeline: SLO burn under chaos x replicas ({} mode) ==\n",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:>8}  {:>6}  {:>6}  {:>6}  {:>7}  {:>9}  {:>8}  cause",
        "replicas", "chaos", "sent", "ok", "errors", "burn", "at_tick"
    );

    let mut cells = Vec::new();
    for &n in &plan.replicas {
        for faulted in [false, true] {
            let cell = drive(&plan, n, faulted);
            let (tick, cause) = match cell.report.violation {
                Some(v) => (v.tick.to_string(), v.cause.name()),
                None => ("-".into(), "-"),
            };
            println!(
                "{:>8}  {:>6}  {:>6}  {:>6}  {:>7}  {:>9.2}  {:>8}  {}",
                cell.replicas,
                cell.faulted,
                cell.load.sent,
                cell.load.ok,
                cell.load.errors,
                cell.report.burn,
                tick,
                cause
            );
            cells.push(cell);
        }
    }
    println!();
    report_claims(&cells);
    write_summary(&cells, smoke);
}

/// One cell: deploy, crash replica 0 mid-ramp, drop packets during the
/// hold, evaluate the SLO over the whole timeline.
fn drive(plan: &BenchPlan, replicas: usize, faulted: bool) -> Cell {
    let spec = ExperimentSpec::new(
        ModelKind::Core,
        plan.catalog,
        etude_cluster::InstanceType::CpuE2,
    )
    .with_replicas(replicas)
    .with_target_rps(plan.target_rps)
    .with_ramp(plan.ramp);
    let profile = service_profile(&spec);
    let deployment_spec = DeploymentSpec {
        instance: spec.instance,
        replicas,
        model_bytes: spec.model_bytes(),
        node_budget: None,
    };

    let mut sim = Sim::new();
    let deployment =
        Deployment::create(&mut sim, deployment_spec, &profile).expect("cell spec is feasible");
    sim.run_until(deployment.ready_at());
    let start = sim.now();
    let since_zero = start.as_duration();

    // Fault windows are anchored on the load start so every cell sees
    // the same relative schedule regardless of startup time: replica 0
    // crashes during the ramp, the network drops during the hold.
    let fault_plan = if faulted {
        FaultPlan::seeded(2033)
            .with_window(
                since_zero + plan.ramp / 2,
                since_zero + plan.ramp / 2 + Duration::from_secs(2),
                FaultKind::Crash,
            )
            .with_window(
                since_zero + plan.ramp + Duration::from_secs(1),
                since_zero + plan.ramp + Duration::from_secs(3),
                FaultKind::Drop { prob: 0.4 },
            )
    } else {
        FaultPlan::calm()
    };
    let injector = FaultInjector::new(fault_plan);
    // Only the first replica crashes — the point of the sweep is to
    // watch the survivors absorb its traffic.
    deployment.pods()[0].schedule_crashes(&mut sim, &injector);

    let workload = SyntheticWorkload::new(spec.workload_config());
    let expected =
        plan.target_rps * plan.ramp.as_secs() / 2 + plan.target_rps * (plan.hold.as_secs() + 2);
    let log = workload.generate(expected + 1_000);
    let handle = SimLoadGen::schedule_with_faults(
        &mut sim,
        deployment.service(),
        &log,
        LoadConfig {
            target_rps: plan.target_rps,
            ramp: plan.ramp,
            duration: plan.ramp + plan.hold,
            backpressure: true,
            seed: spec.seed,
        },
        start,
        injector,
    );
    sim.run_to_completion();
    let load = handle.collect();
    let monitor = SloMonitor::new(SloPolicy::from_target(spec.latency_slo));
    let report = monitor.evaluate(&load.series, &load.attribution);
    Cell {
        replicas,
        faulted,
        load,
        report,
        pods: deployment.service().pod_summaries(),
    }
}

/// Prints the bench's headline claims against the collected cells.
fn report_claims(cells: &[Cell]) {
    let calm_quiet = cells
        .iter()
        .filter(|c| !c.faulted)
        .all(|c| c.report.violation.is_none());
    println!(
        "  [{}] calm baselines never page",
        if calm_quiet { "ok" } else { "!!" }
    );
    let chaos_pages = cells
        .iter()
        .filter(|c| c.faulted)
        .all(|c| c.report.violation.is_some());
    println!(
        "  [{}] every chaos cell fires its SLO alert",
        if chaos_pages { "ok" } else { "!!" }
    );
    let skewed = cells
        .iter()
        .filter(|c| c.faulted && c.replicas >= 2)
        .all(|c| {
            let crashed = c.pods.iter().find(|p| p.id == 0).map_or(0, |p| p.served);
            c.pods
                .iter()
                .filter(|p| p.id != 0)
                .all(|p| p.served > crashed)
        });
    println!(
        "  [{}] survivors out-serve the crashed replica (serving skew)",
        if skewed { "ok" } else { "!!" }
    );
}

/// Writes the JSON artifact the results pipeline consumes.
fn write_summary(cells: &[Cell], smoke: bool) {
    let mut body = String::new();
    for cell in cells {
        if !body.is_empty() {
            body.push_str(",\n");
        }
        let violation = match cell.report.violation {
            Some(v) => format!(
                "{{\"tick\": {}, \"cause\": \"{}\", \"short_burn\": {:.3}, \
                 \"long_burn\": {:.3}, \"bad\": {}, \"total\": {}}}",
                v.tick,
                v.cause.name(),
                v.short_burn,
                v.long_burn,
                v.bad,
                v.total
            ),
            None => "null".into(),
        };
        let pods: Vec<String> = cell
            .pods
            .iter()
            .map(|p| {
                format!(
                    "{{\"pod\": {}, \"served\": {}, \"refused\": {}, \"p99_us\": {}}}",
                    p.id,
                    p.served,
                    p.refused,
                    p.latency.p99()
                )
            })
            .collect();
        body.push_str(&format!(
            "    {{\"replicas\": {}, \"chaos\": {}, \"sent\": {}, \"ok\": {}, \
             \"errors\": {}, \"slo_total\": {}, \"slo_bad\": {}, \"burn\": {:.4}, \
             \"violation\": {violation}, \"pods\": [{}]}}",
            cell.replicas,
            cell.faulted,
            cell.load.sent,
            cell.load.ok,
            cell.load.errors,
            cell.report.total,
            cell.report.bad,
            cell.report.burn,
            pods.join(", "),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"fleet_timeline\",\n  \"mode\": \"{}\",\n  \
         \"plan_seed\": 2033,\n  \"cells\": [\n{body}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" }
    );
    // Binaries may run from any cwd; anchor on the workspace root.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("BENCH_fleet_timeline.json");
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
