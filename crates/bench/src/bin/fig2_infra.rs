//! **Figure 2** — Infrastructure test: answering 1,000 requests/s
//! *without model inference*.
//!
//! The paper deploys TorchServe with "a Python model that returns an
//! empty response and does not conduct any computation" on a 2 vCPU
//! machine and ramps the load generator to 1,000 req/s over ten minutes.
//! TorchServe starts throwing HTTP errors early (its internal 100 ms
//! timeout) and serves survivors at 100–200 ms p90, while the Actix-based
//! Rust server handles the full ramp at ~1 ms p90 with zero errors.

use etude_bench::HarnessOptions;
use etude_loadgen::{LoadConfig, SimLoadGen};
use etude_metrics::report::{fmt_duration, Table};
use etude_serve::simserver::{RustServerConfig, SimRustServer, SimTorchServe};
use etude_serve::{ServiceProfile, TorchServeProfile};
use etude_tensor::Device;
use etude_workload::{SyntheticWorkload, WorkloadConfig};

fn main() {
    let opts = HarnessOptions::from_args();
    println!("== Figure 2: infrastructure test (static responses, ramp to 1,000 req/s) ==\n");

    let workload = SyntheticWorkload::new(WorkloadConfig::bolcom_like(10_000));
    let expected = 1_000 * opts.ramp_secs / 2 + 10_000;
    let log = workload.generate(expected);
    let config = LoadConfig::scaled_rampup(1_000, opts.ramp_secs);

    // TorchServe baseline: 2 vCPU machine, Python workers, 100 ms timeout.
    let torchserve = SimTorchServe::new(
        TorchServeProfile::default(),
        ServiceProfile::static_response(&Device::cpu()),
    );
    let ts_result = SimLoadGen::run(torchserve, &log, config.clone());

    // The Rust server on the same class of machine.
    let rust = SimRustServer::new(
        ServiceProfile::static_response(&Device::cpu()),
        RustServerConfig::cpu(2),
    );
    let rust_result = SimLoadGen::run(rust, &log, config);

    let mut series = Table::new([
        "tick",
        "target_rps",
        "ts_ok",
        "ts_err",
        "ts_p90",
        "rust_ok",
        "rust_err",
        "rust_p90",
    ]);
    let ts_rows = ts_result.series.rows();
    let rust_rows = rust_result.series.rows();
    let step = (opts.ramp_secs / 20).max(1) as usize;
    for i in (0..ts_rows.len().min(rust_rows.len())).step_by(step) {
        let (tick, sent, ts_ok, ts_p90, ts_err) = ts_rows[i];
        let (_, _, r_ok, r_p90, r_err) = rust_rows[i];
        series.row([
            tick.to_string(),
            sent.to_string(),
            ts_ok.to_string(),
            ts_err.to_string(),
            fmt_duration(ts_p90),
            r_ok.to_string(),
            r_err.to_string(),
            fmt_duration(r_p90),
        ]);
    }
    opts.emit("fig2_infra_series", &series);

    let mut summary = Table::new(["server", "ok", "errors", "p90", "p99", "max"]);
    for (name, result) in [("torchserve", &ts_result), ("rust-actix", &rust_result)] {
        let s = result.summary();
        summary.row([
            name.to_string(),
            s.count.to_string(),
            s.errors.to_string(),
            fmt_duration(s.p90),
            fmt_duration(s.p99),
            fmt_duration(s.max),
        ]);
    }
    opts.emit("fig2_infra_summary", &summary);

    let ts = ts_result.summary();
    let rs = rust_result.summary();
    println!("paper shape checks:");
    println!(
        "  [{}] torchserve returns a large number of HTTP errors ({})",
        if ts.errors > opts.ramp_secs * 5 {
            "ok"
        } else {
            "!!"
        },
        ts.errors
    );
    println!(
        "  [{}] torchserve p90 in the 100-200ms band ({})",
        if ts.p90.as_millis() >= 50 && ts.p90.as_millis() <= 400 {
            "ok"
        } else {
            "!!"
        },
        fmt_duration(ts.p90)
    );
    println!(
        "  [{}] rust server p90 around one millisecond ({})",
        if rs.p90.as_millis() <= 2 { "ok" } else { "!!" },
        fmt_duration(rs.p90)
    );
    println!(
        "  [{}] rust server throws no errors ({})",
        if rs.errors == 0 { "ok" } else { "!!" },
        rs.errors
    );
}
