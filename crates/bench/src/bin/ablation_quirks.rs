//! **Section III-C (bug reports)** — RecBole implementation-quirk
//! ablation.
//!
//! The paper root-causes severe performance problems in four RecBole
//! model implementations: RepeatNet (dense ops on sparse structures),
//! SR-GNN and GC-SAN (NumPy in the inference path forcing host/device
//! round-trips) and LightSANs (dynamic code paths defeating JIT). This
//! ablation runs each model with the quirk emulated (what the paper
//! measured) and repaired (what the filed bug reports would achieve),
//! reporting serial latency and sustainable capacity.

use etude_bench::HarnessOptions;
use etude_cluster::InstanceType;
use etude_core::analysis::estimate_capacity;
use etude_core::{run_serial_microbenchmark, ExperimentSpec};
use etude_metrics::report::{fmt_duration, Table};
use etude_models::ModelKind;

fn main() {
    let opts = HarnessOptions::from_args();
    println!("== Ablation: RecBole implementation quirks (quirky vs repaired) ==\n");

    let catalog = 1_000_000;
    let mut table = Table::new([
        "model",
        "instance",
        "quirky_p90",
        "fixed_p90",
        "quirky_cap_rps",
        "fixed_cap_rps",
    ]);
    let mut improvements = Vec::new();

    for model in ModelKind::WITH_IMPLEMENTATION_ERRORS {
        for instance in [InstanceType::CpuE2, InstanceType::GpuT4] {
            let quirky_spec = ExperimentSpec::new(model, catalog, instance).with_quirks(true);
            let fixed_spec = ExperimentSpec::new(model, catalog, instance).with_quirks(false);
            let quirky = run_serial_microbenchmark(&quirky_spec, 100);
            let fixed = run_serial_microbenchmark(&fixed_spec, 100);
            let quirky_cap = estimate_capacity(
                &etude_core::runner::service_profile(&quirky_spec),
                instance,
                1,
            );
            let fixed_cap = estimate_capacity(
                &etude_core::runner::service_profile(&fixed_spec),
                instance,
                1,
            );
            improvements.push((
                model, instance, quirky.p90, fixed.p90, quirky_cap, fixed_cap,
            ));
            table.row([
                model.name().to_string(),
                instance.name().to_string(),
                fmt_duration(quirky.p90),
                fmt_duration(fixed.p90),
                format!("{quirky_cap:.0}"),
                format!("{fixed_cap:.0}"),
            ]);
        }
    }
    opts.emit("ablation_quirks", &table);

    println!("paper shape checks:");
    let check = |name: &str, ok: bool| println!("  [{}] {name}", if ok { "ok" } else { "!!" });

    // RepeatNet: dense-sparse decoding slows every device down; the
    // penalty is brutal on CPUs (the dense [l, C] product is pure memory
    // traffic) and still clearly visible on the bandwidth-rich GPU.
    let repeatnet_penalty = improvements
        .iter()
        .filter(|(m, ..)| *m == ModelKind::RepeatNet)
        .all(|(_, i, q, f, ..)| {
            let factor = if *i == InstanceType::CpuE2 { 2.0 } else { 1.2 };
            q.as_secs_f64() > factor * f.as_secs_f64()
        });
    check(
        "RepeatNet's dense-sparse decode costs >2x (CPU) / >1.2x (GPU) serial latency",
        repeatnet_penalty,
    );

    // SR-GNN/GC-SAN: host ops penalise GPU capacity, not CPU.
    let gnn_gpu_penalty = improvements
        .iter()
        .filter(|(m, i, ..)| {
            matches!(m, ModelKind::SrGnn | ModelKind::GcSan) && *i == InstanceType::GpuT4
        })
        .all(|(.., qc, fc)| *fc > 1.2 * *qc);
    check(
        "fixing SR-GNN/GC-SAN host ops raises GPU capacity by >20%",
        gnn_gpu_penalty,
    );
    let gnn_cpu_unaffected = improvements
        .iter()
        .filter(|(m, i, ..)| {
            matches!(m, ModelKind::SrGnn | ModelKind::GcSan) && *i == InstanceType::CpuE2
        })
        .all(|(_, _, q, f, ..)| (q.as_secs_f64() - f.as_secs_f64()).abs() < 0.05 * q.as_secs_f64());
    check(
        "the same fix is a no-op on CPUs (data already lives on the host)",
        gnn_cpu_unaffected,
    );

    // LightSANs: the quirk is about JIT, visible as eager-vs-jit gap.
    let ls_quirky =
        ExperimentSpec::new(ModelKind::LightSans, catalog, InstanceType::CpuE2).with_quirks(true);
    let ls_fixed =
        ExperimentSpec::new(ModelKind::LightSans, catalog, InstanceType::CpuE2).with_quirks(false);
    let quirky_jitable = etude_models::traits::compile(
        ModelKind::LightSans
            .build(&ls_quirky.model_config())
            .as_ref(),
        Default::default(),
    )
    .is_ok();
    let fixed_jitable = etude_models::traits::compile(
        ModelKind::LightSans
            .build(&ls_fixed.model_config())
            .as_ref(),
        Default::default(),
    )
    .is_ok();
    check(
        "LightSANs refuses JIT compilation until its dynamic paths are fixed",
        !quirky_jitable && fixed_jitable,
    );
}
