//! **scatter_gather** — replicated vs partitioned catalog serving.
//!
//! The paper's scaling axis is catalog size C: the embedding table is
//! `4·C·d` bytes with `d = ceil(C^0.25)`, so at C = 10^7 the table
//! alone is ~2.3 GB and replication stops being an option once the
//! operator's per-node memory budget is tighter than the table
//! ([`DeploymentSpec::admit`]). This bench measures what the
//! alternative costs: at C ∈ {10^5, 10^6, 10^7} it drives identical
//! session traffic through
//!
//! * a **replicated** full-catalog pod (the unsharded reference), and
//! * a **sharded** scatter/gather router over one pod per catalog
//!   slice ([`ShardPlan::min_groups`] at a 1 GiB node budget, floor 2),
//!
//! verifying the routed answers are **byte-identical** to the
//! reference before timing anything, then killing one shard group and
//! measuring the degraded path (responses must stay `200` + tagged).
//! A machine-readable summary goes to
//! `results/BENCH_scatter_gather.json`. Run with `--smoke` for the
//! C = 10^5 cell only (used by `scripts/verify.sh --scatter`).

use etude_cluster::{DeploymentSpec, InstanceType, ShardPlan};
use etude_models::retrieval::CatalogShard;
use etude_obs::Recorder;
use etude_serve::http::Request;
use etude_serve::rustserver::{start, ServerConfig, ServerHandle, DEGRADED_HEADER};
use etude_serve::{router_routes, shard_backend_routes, HttpClient, RouterConfig, ShardTopology};
use etude_tensor::rng::Initializer;
use std::sync::Arc;
use std::time::{Duration, Instant};

const K: usize = 21;
const QUERY_SEED: u64 = 21;
/// Operator budget: 1 GiB of embedding table per node. C = 10^7 (2.28
/// GB) is the scale where replication is rejected and sharding is the
/// only deployment that admits.
const NODE_BUDGET: u64 = 1 << 30;

/// `d = ceil(C^0.25)` — the paper's embedding-dimension heuristic.
fn dim_for(c: usize) -> usize {
    (c as f64).powf(0.25).ceil() as usize
}

struct CellPlan {
    catalog: usize,
    requests: usize,
    degraded_requests: usize,
}

/// Client-side latency summary over one measured pass.
struct Summary {
    requests: usize,
    mean_us: f64,
    p50_us: u64,
    p90_us: u64,
}

fn summarize(samples: &mut [Duration]) -> Summary {
    samples.sort_unstable();
    let q = |p: f64| -> u64 {
        let at = ((samples.len() as f64 - 1.0) * p).round() as usize;
        samples[at].as_micros() as u64
    };
    let mean_us =
        samples.iter().map(Duration::as_micros).sum::<u128>() as f64 / samples.len() as f64;
    Summary {
        requests: samples.len(),
        mean_us,
        p50_us: q(0.5),
        p90_us: q(0.9),
    }
}

/// One cell's results, ready for the JSON artifact.
struct Cell {
    catalog: usize,
    dim: usize,
    table_bytes: u64,
    replicated_feasible: bool,
    shards: usize,
    resident_bytes: Vec<u64>,
    bit_identical: bool,
    replicated: Summary,
    sharded: Summary,
    degraded: Summary,
    degraded_tagged: usize,
}

/// Deterministic session for request `i` of a cell.
fn session(i: usize, catalog: usize) -> String {
    let c = catalog as u64;
    let mut items = Vec::with_capacity(3);
    let mut state = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    for _ in 0..3 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        items.push((state % c).to_string());
    }
    items.join(",")
}

/// Fires the cell's sessions at `addr`, returning per-request wall
/// times and response bodies.
fn drive(addr: std::net::SocketAddr, plan: &CellPlan, n: usize) -> (Vec<Duration>, Vec<Vec<u8>>) {
    let mut client = HttpClient::connect_with_timeout(addr, Duration::from_secs(30)).unwrap();
    let mut times = Vec::with_capacity(n);
    let mut bodies = Vec::with_capacity(n);
    for i in 0..n {
        let req = Request::post("/predictions", session(i, plan.catalog));
        let start = Instant::now();
        let resp = client.request(&req).expect("bench request failed");
        times.push(start.elapsed());
        assert_eq!(resp.status, 200, "request {i} failed");
        bodies.push(resp.body.to_vec());
    }
    (times, bodies)
}

fn spawn_backend(shard: CatalogShard, catalog: usize, pod: u32) -> ServerHandle {
    let handler = shard_backend_routes(
        shard,
        catalog,
        QUERY_SEED,
        K,
        Arc::new(Recorder::with_pod(pod)),
    );
    start(ServerConfig { workers: 2 }, handler).unwrap()
}

fn run_cell(plan: &CellPlan, smoke: bool) -> Cell {
    let c = plan.catalog;
    let d = dim_for(c);
    println!("-- C = {c}, d = {d} --");

    let shard_plan = ShardPlan::new(c, d, 2, 1);
    let table_bytes = shard_plan.full_table_bytes();
    // Replication admits only while the full table fits one node.
    let replicated_feasible = DeploymentSpec {
        instance: InstanceType::CpuE2,
        replicas: 2,
        model_bytes: table_bytes,
        node_budget: Some(NODE_BUDGET),
    }
    .admit()
    .is_ok();
    let groups = if smoke {
        2
    } else {
        ShardPlan::min_groups(c, d, NODE_BUDGET)
            .expect("budget fits at least one row")
            .max(2)
    };
    println!(
        "table: {:.1} MB, replicated feasible at {} MB/node: {}, shard groups: {groups}",
        table_bytes as f64 / 1e6,
        NODE_BUDGET / (1 << 20),
        replicated_feasible,
    );

    let mut init = Initializer::new(4242);
    let table = init.embedding(c, d).into_vec().expect("dense");

    // Build the shard slices while the table is still around, then move
    // the table itself into the reference index (no second full copy).
    let topo_template = ShardTopology::partition(c, d, QUERY_SEED, groups);
    let slices: Vec<CatalogShard> = (0..groups)
        .map(|i| topo_template.shard_of(&table, i))
        .collect();
    let reference_shard = CatalogShard::new(table, d, 0);

    // Replicated pass: one full-catalog pod, measured directly — then
    // torn down (and its table freed) before the sharded fleet starts.
    let reference = spawn_backend(reference_shard, c, 99);
    let (mut ref_times, ref_bodies) = drive(reference.addr(), plan, plan.requests);
    reference.shutdown();
    let replicated = summarize(&mut ref_times);

    // Sharded pass: one pod per slice behind the router.
    let mut topo = topo_template;
    let mut backends = Vec::with_capacity(groups);
    for (i, shard) in slices.into_iter().enumerate() {
        let server = spawn_backend(shard, c, i as u32);
        topo.groups[i].replicas.push(server.addr());
        backends.push(server);
    }
    let resident_bytes: Vec<u64> = topo.groups.iter().map(|g| g.resident_bytes).collect();
    // A dead leg consumes its whole budget (the client rides out
    // refusals until the deadline), so the budget is sized for the
    // slowest healthy scan and a one-strike breaker makes the lost
    // group fail fast after the first degraded request.
    let config = RouterConfig {
        k: K,
        leg_budget: Duration::from_secs(2),
        breakers: Some(etude_control::BreakerConfig {
            failure_threshold: 1,
            open_for: Duration::from_secs(600),
            half_open_successes: 1,
        }),
        ..Default::default()
    };
    let router = start(
        ServerConfig { workers: 2 },
        router_routes(topo, config, Arc::new(Recorder::new())),
    )
    .unwrap();
    let (mut shard_times, shard_bodies) = drive(router.addr(), plan, plan.requests);
    let sharded = summarize(&mut shard_times);
    let bit_identical = ref_bodies == shard_bodies;
    println!(
        "  [{}] full-health routed answers byte-identical to the unsharded reference",
        if bit_identical { "ok" } else { "!!" }
    );

    // Degraded pass: kill every pod of group 0, keep serving.
    backends.remove(0).shutdown();
    let mut client =
        HttpClient::connect_with_timeout(router.addr(), Duration::from_secs(30)).unwrap();
    let mut degraded_times = Vec::with_capacity(plan.degraded_requests);
    let mut degraded_tagged = 0usize;
    for i in 0..plan.degraded_requests {
        let req = Request::post("/predictions", session(i, c));
        let start = Instant::now();
        let resp = client.request(&req).expect("degraded request failed");
        degraded_times.push(start.elapsed());
        assert_eq!(resp.status, 200, "degraded request {i} must still succeed");
        if resp.headers.get(DEGRADED_HEADER).map(String::as_str) == Some("1") {
            degraded_tagged += 1;
        }
    }
    let degraded = summarize(&mut degraded_times);
    println!(
        "  [{}] one-group loss: {}/{} responses served degraded\n",
        if degraded_tagged == plan.degraded_requests {
            "ok"
        } else {
            "!!"
        },
        degraded_tagged,
        plan.degraded_requests
    );

    router.shutdown();
    for b in backends {
        b.shutdown();
    }

    Cell {
        catalog: c,
        dim: d,
        table_bytes,
        replicated_feasible,
        shards: groups,
        resident_bytes,
        bit_identical,
        replicated,
        sharded,
        degraded,
        degraded_tagged,
    }
}

fn summary_json(s: &Summary) -> String {
    format!(
        "{{\"requests\": {}, \"mean_us\": {:.1}, \"p50_us\": {}, \"p90_us\": {}}}",
        s.requests, s.mean_us, s.p50_us, s.p90_us
    )
}

fn write_summary(cells: &[Cell], smoke: bool) {
    let mut body = String::new();
    for cell in cells {
        if !body.is_empty() {
            body.push_str(",\n");
        }
        let resident: Vec<String> = cell.resident_bytes.iter().map(u64::to_string).collect();
        body.push_str(&format!(
            "    {{\"catalog\": {}, \"dim\": {}, \"k\": {K}, \"table_bytes\": {}, \
             \"node_budget_bytes\": {NODE_BUDGET}, \"replicated_feasible\": {}, \
             \"shards\": {}, \"per_pod_resident_bytes\": [{}], \"bit_identical\": {}, \
             \"replicated\": {}, \"sharded\": {}, \
             \"degraded_one_group_lost\": {}, \"degraded_tagged\": {}}}",
            cell.catalog,
            cell.dim,
            cell.table_bytes,
            cell.replicated_feasible,
            cell.shards,
            resident.join(", "),
            cell.bit_identical,
            summary_json(&cell.replicated),
            summary_json(&cell.sharded),
            summary_json(&cell.degraded),
            cell.degraded_tagged,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"scatter_gather\",\n  \"mode\": \"{}\",\n  \
         \"cells\": [\n{body}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" }
    );
    // Binaries may run from any cwd; anchor on the workspace root.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("BENCH_scatter_gather.json");
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!(
        "== scatter_gather: replicated vs sharded catalog serving ({} mode) ==\n",
        if smoke { "smoke" } else { "full" }
    );
    let plans: Vec<CellPlan> = if smoke {
        vec![CellPlan {
            catalog: 100_000,
            requests: 30,
            degraded_requests: 10,
        }]
    } else {
        vec![
            CellPlan {
                catalog: 100_000,
                requests: 200,
                degraded_requests: 50,
            },
            CellPlan {
                catalog: 1_000_000,
                requests: 80,
                degraded_requests: 25,
            },
            CellPlan {
                catalog: 10_000_000,
                requests: 20,
                degraded_requests: 8,
            },
        ]
    };
    let cells: Vec<Cell> = plans.iter().map(|p| run_cell(p, smoke)).collect();

    println!("catalog      replicated p90   sharded p90   degraded p90   shards");
    for cell in &cells {
        println!(
            "{:<12} {:>12}us {:>12}us {:>13}us {:>8}",
            cell.catalog,
            cell.replicated.p90_us,
            cell.sharded.p90_us,
            cell.degraded.p90_us,
            cell.shards
        );
    }
    write_summary(&cells, smoke);

    assert!(
        cells.iter().all(|c| c.bit_identical),
        "sharded serving must be byte-identical to the reference at full health"
    );
}
