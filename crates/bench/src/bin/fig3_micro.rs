//! **Figure 3** — Micro-benchmark: serial p90 prediction latency vs
//! catalog size, device and execution mode.
//!
//! The paper sends requests serially (one after another), measures the
//! prediction time and reports p90 for catalog sizes 10^4..10^7 on a CPU
//! and a T4, eager and JIT-optimised. Expected shapes: latency linear in
//! C; GPU more than an order of magnitude faster from C = 10^6 (where the
//! CPU already needs >50 ms); CPU competitive at C = 10^4; JIT always
//! beneficial; LightSANs not JIT-able (it silently runs eager).

use etude_bench::HarnessOptions;
use etude_cluster::InstanceType;
use etude_core::{run_serial_microbenchmark, ExecutionMode, ExperimentSpec};
use etude_metrics::report::{fmt_duration, Table};
use etude_models::ModelKind;
use std::time::Duration;

const CATALOGS: [usize; 4] = [10_000, 100_000, 1_000_000, 10_000_000];

fn main() {
    let opts = HarnessOptions::from_args();
    let threads = opts.apply_threads();
    println!("== Figure 3: micro-benchmark (serial requests, p90 prediction latency) ==");
    println!("   intra-op kernel threads: {threads}\n");

    let requests = 200;
    let mut table = Table::new([
        "model",
        "catalog",
        "cpu_eager",
        "cpu_jit",
        "t4_eager",
        "t4_jit",
    ]);
    // (model, catalog) -> (cpu_jit, t4_jit) p90s for the shape checks.
    let mut jit_cells: Vec<(ModelKind, usize, Duration, Duration)> = Vec::new();
    let mut jit_never_hurts = true;

    for model in ModelKind::ALL {
        for &catalog in &CATALOGS {
            let mut cells = Vec::new();
            let mut p90s = [Duration::ZERO; 4];
            for (i, (instance, execution)) in [
                (InstanceType::CpuE2, ExecutionMode::Eager),
                (InstanceType::CpuE2, ExecutionMode::Jit),
                (InstanceType::GpuT4, ExecutionMode::Eager),
                (InstanceType::GpuT4, ExecutionMode::Jit),
            ]
            .into_iter()
            .enumerate()
            {
                let spec = ExperimentSpec::new(model, catalog, instance).with_execution(execution);
                let result = run_serial_microbenchmark(&spec, requests);
                p90s[i] = result.p90;
                cells.push(fmt_duration(result.p90));
            }
            // JIT must never hurt (within measurement noise).
            let tolerance = Duration::from_micros(60);
            if p90s[1] > p90s[0] + tolerance || p90s[3] > p90s[2] + tolerance {
                jit_never_hurts = false;
            }
            jit_cells.push((model, catalog, p90s[1], p90s[3]));
            let mut row = vec![model.name().to_string(), catalog.to_string()];
            row.extend(cells);
            table.row(row);
        }
    }
    opts.emit("fig3_micro", &table);

    println!("paper shape checks:");
    // Linear scaling in C (JIT CPU cells, per model): 10x catalog -> ~10x
    // (plus the embedding-dim growth of the C^{1/4} heuristic). The very
    // smallest catalog is encoder-dominated, so the check starts at 1e5 —
    // the same flattening is visible at the left edge of the paper's plot.
    let mut linear_ok = true;
    for model in ModelKind::ALL {
        let per_model: Vec<&(ModelKind, usize, Duration, Duration)> = jit_cells
            .iter()
            .filter(|c| c.0 == model && c.1 >= 100_000)
            .collect();
        for w in per_model.windows(2) {
            let ratio = w[1].2.as_secs_f64() / w[0].2.as_secs_f64().max(1e-12);
            if !(5.0..=25.0).contains(&ratio) {
                linear_ok = false;
            }
        }
    }
    println!(
        "  [{}] CPU latency scales ~linearly with catalog size",
        ok(linear_ok)
    );

    // GPU >= 10x faster at C >= 1e6.
    let gpu_wins = jit_cells
        .iter()
        .filter(|c| c.1 >= 1_000_000)
        .all(|c| c.2.as_secs_f64() > 10.0 * c.3.as_secs_f64());
    println!(
        "  [{}] GPU an order of magnitude faster from one million items",
        ok(gpu_wins)
    );

    // CPU over 50 ms at C = 1e6.
    let cpu_slow = jit_cells
        .iter()
        .filter(|c| c.1 == 1_000_000)
        .all(|c| c.2 > Duration::from_millis(45));
    println!(
        "  [{}] CPU needs >50ms per prediction at one million items",
        ok(cpu_slow)
    );

    // CPU on par with or better than GPU at C = 1e4 for several models.
    let competitive = jit_cells
        .iter()
        .filter(|c| c.1 == 10_000)
        .filter(|c| c.2 <= c.3 + Duration::from_micros(200))
        .count();
    println!(
        "  [{}] CPU competitive with GPU at ten thousand items ({} of 10 models)",
        ok(competitive >= 4),
        competitive
    );

    println!("  [{}] JIT optimisation never hurts", ok(jit_never_hurts));
}

fn ok(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "!!"
    }
}
