//! **autoscale_timeline** — the SLO-driven autoscaler relieving an
//! under-provisioned deployment.
//!
//! Two cells per target rate: a *fixed* single-replica deployment of the
//! Core model on a large catalog (the paper's Section III-C setting
//! where one CPU machine drowns), and the same spec with the control
//! plane's autoscaler enabled. The autoscaled run should grow the fleet
//! under queue/latency pressure, journal every decision, and deliver a
//! visibly better steady-state tail than the fixed run at the same rate.
//!
//! Everything is seeded, so the decision journal replays byte-for-byte —
//! the bench asserts that by running one cell twice. The summary lands
//! in `results/BENCH_autoscale.json`; `--smoke` is the seconds-long pass
//! `scripts/verify.sh --selfheal` uses.

use etude_cluster::InstanceType;
use etude_control::{AutoscalerConfig, ControlAction};
use etude_core::results::ExperimentResult;
use etude_core::runner::run_experiment;
use etude_core::spec::ExperimentSpec;
use etude_models::ModelKind;
use std::time::Duration;

struct BenchPlan {
    catalog: usize,
    rates: Vec<u64>,
    ramp: Duration,
    max_replicas: usize,
}

struct Cell {
    target_rps: u64,
    autoscaled: bool,
    result: ExperimentResult,
    /// Replica count after the last scale decision (1 when none fired).
    final_replicas: usize,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let plan = if smoke {
        BenchPlan {
            catalog: 1_000_000,
            rates: vec![250],
            ramp: Duration::from_secs(10),
            max_replicas: 6,
        }
    } else {
        BenchPlan {
            catalog: 1_000_000,
            rates: vec![150, 300],
            ramp: Duration::from_secs(20),
            max_replicas: 8,
        }
    };
    println!(
        "== autoscale_timeline: SLO-driven autoscaler vs fixed fleet ({} mode) ==\n",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:>6}  {:>10}  {:>6}  {:>7}  {:>8}  {:>9}  {:>8}  {:>8}",
        "rps", "mode", "sent", "errors", "p90_ms", "thruput", "scaleups", "replicas"
    );

    let mut cells = Vec::new();
    for &rps in &plan.rates {
        for autoscaled in [false, true] {
            let cell = drive(&plan, rps, autoscaled);
            println!(
                "{:>6}  {:>10}  {:>6}  {:>7}  {:>8.1}  {:>9.1}  {:>8}  {:>8}",
                cell.target_rps,
                if cell.autoscaled {
                    "autoscaled"
                } else {
                    "fixed"
                },
                cell.result.load.sent,
                cell.result.load.errors,
                cell.result.p90().as_secs_f64() * 1e3,
                cell.result.throughput(),
                cell.result.journal.of(ControlAction::ScaleUp).len(),
                cell.final_replicas,
            );
            cells.push(cell);
        }
    }
    println!();
    report_claims(&plan, &cells);
    write_summary(&cells, smoke);
}

/// One cell: the Section III-C under-provisioned spec, with or without
/// the autoscaler closing the loop.
fn drive(plan: &BenchPlan, rps: u64, autoscaled: bool) -> Cell {
    let mut spec = ExperimentSpec::new(ModelKind::Core, plan.catalog, InstanceType::CpuE2)
        .with_target_rps(rps)
        .with_ramp(plan.ramp);
    if autoscaled {
        spec = spec.with_autoscaler(AutoscalerConfig {
            min_replicas: 1,
            max_replicas: plan.max_replicas,
            ..AutoscalerConfig::default()
        });
    }
    let result = run_experiment(&spec);
    let final_replicas = result
        .journal
        .entries
        .iter()
        .rev()
        .find(|e| matches!(e.action, ControlAction::ScaleUp | ControlAction::ScaleDown))
        .map_or(1, |e| e.b as usize);
    Cell {
        target_rps: rps,
        autoscaled,
        result,
        final_replicas,
    }
}

/// Prints the bench's headline claims against the collected cells.
fn report_claims(plan: &BenchPlan, cells: &[Cell]) {
    let fixed_drowns = cells
        .iter()
        .filter(|c| !c.autoscaled)
        .all(|c| !c.result.feasible);
    println!(
        "  [{}] one fixed CPU replica misses the SLO at every rate",
        if fixed_drowns { "ok" } else { "!!" }
    );
    let scaled_up = cells
        .iter()
        .filter(|c| c.autoscaled)
        .all(|c| !c.result.journal.of(ControlAction::ScaleUp).is_empty() && c.final_replicas > 1);
    println!(
        "  [{}] pressure scales every autoscaled cell past one replica",
        if scaled_up { "ok" } else { "!!" }
    );
    let relieved = cells.iter().filter(|c| c.autoscaled).all(|c| {
        let fixed = cells
            .iter()
            .find(|f| !f.autoscaled && f.target_rps == c.target_rps)
            .expect("paired fixed cell");
        c.result.p90() < fixed.result.p90()
    });
    println!(
        "  [{}] the grown fleet beats the fixed fleet's steady p90",
        if relieved { "ok" } else { "!!" }
    );
    // Determinism: re-running the first autoscaled cell reproduces its
    // decision journal byte-for-byte.
    let first = cells
        .iter()
        .find(|c| c.autoscaled)
        .expect("an autoscaled cell exists");
    let replay = drive(plan, first.target_rps, true);
    let identical = replay.result.journal.render_json() == first.result.journal.render_json();
    println!(
        "  [{}] the decision journal replays byte-for-byte",
        if identical { "ok" } else { "!!" }
    );
}

/// Writes the JSON artifact the results pipeline consumes.
fn write_summary(cells: &[Cell], smoke: bool) {
    let mut body = String::new();
    for cell in cells {
        if !body.is_empty() {
            body.push_str(",\n");
        }
        body.push_str(&format!(
            "    {{\"target_rps\": {}, \"autoscaled\": {}, \"sent\": {}, \"ok\": {}, \
             \"errors\": {}, \"p90_us\": {}, \"throughput\": {:.1}, \"feasible\": {}, \
             \"final_replicas\": {}, \"journal\": {}}}",
            cell.target_rps,
            cell.autoscaled,
            cell.result.load.sent,
            cell.result.load.ok,
            cell.result.load.errors,
            cell.result.p90().as_micros(),
            cell.result.throughput(),
            cell.result.feasible,
            cell.final_replicas,
            cell.result.journal.render_json(),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"autoscale_timeline\",\n  \"mode\": \"{}\",\n  \
         \"cells\": [\n{body}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" }
    );
    // Binaries may run from any cwd; anchor on the workspace root.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("BENCH_autoscale.json");
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
