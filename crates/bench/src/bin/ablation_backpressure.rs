//! **Design ablation** — Backpressure-aware vs open-loop load generation.
//!
//! Algorithm 2 pauses when the pending-request count reaches the current
//! rate, so experiments against an overloaded server degrade gracefully
//! and the failure threshold stays measurable. This ablation overloads a
//! CPU deployment with a million-item catalog and compares the two modes.

use etude_bench::HarnessOptions;
use etude_loadgen::{LoadConfig, SimLoadGen};
use etude_metrics::report::{fmt_duration, Table};
use etude_models::{ModelConfig, ModelKind};
use etude_serve::service::ExecutionKind;
use etude_serve::simserver::{RustServerConfig, SimRustServer};
use etude_serve::ServiceProfile;
use etude_tensor::Device;
use etude_workload::{SyntheticWorkload, WorkloadConfig};

fn main() {
    let opts = HarnessOptions::from_args();
    println!("== Ablation: backpressure-aware vs open-loop load generation ==\n");

    let catalog = 1_000_000;
    let target = 500u64; // far beyond one CPU machine's ~100 req/s
    let profile = || {
        ServiceProfile::build(
            ModelKind::Gru4Rec,
            &ModelConfig::new(catalog).without_weights(),
            &Device::cpu(),
            ExecutionKind::Jit,
        )
        .expect("profile")
    };
    let workload = SyntheticWorkload::new(WorkloadConfig::bolcom_like(catalog));
    let log = workload.generate(target * opts.ramp_secs);

    let mut table = Table::new([
        "mode",
        "sent",
        "ok",
        "suppressed",
        "max_p90",
        "peak_pending_proxy",
    ]);
    let mut results = Vec::new();
    for (name, backpressure) in [("backpressure", true), ("open-loop", false)] {
        let server = SimRustServer::new(profile(), RustServerConfig::cpu(5));
        let config = LoadConfig {
            backpressure,
            ..LoadConfig::scaled_rampup(target, opts.ramp_secs)
        };
        let result = SimLoadGen::run(server, &log, config);
        let max_p90 = result
            .series
            .rows()
            .iter()
            .map(|r| r.3)
            .max()
            .unwrap_or_default();
        // In-flight proxy: sent minus completed.
        let in_flight = result.sent - result.ok - result.errors;
        table.row([
            name.to_string(),
            result.sent.to_string(),
            result.ok.to_string(),
            result.suppressed.to_string(),
            fmt_duration(max_p90),
            in_flight.to_string(),
        ]);
        results.push((backpressure, result, max_p90));
    }
    opts.emit("ablation_backpressure", &table);

    let bp = &results[0];
    let ol = &results[1];
    println!("paper shape checks:");
    println!(
        "  [{}] backpressure suppresses load on a collapsing server ({} slots skipped)",
        if bp.1.suppressed > 0 { "ok" } else { "!!" },
        bp.1.suppressed
    );
    println!(
        "  [{}] open loop floods the server with more requests ({} vs {})",
        if ol.1.sent as f64 > 1.2 * bp.1.sent as f64 {
            "ok"
        } else {
            "!!"
        },
        ol.1.sent,
        bp.1.sent
    );
    println!(
        "  [{}] graceful degradation: bounded latency under backpressure ({} vs {})",
        if bp.2 < ol.2 { "ok" } else { "!!" },
        fmt_duration(bp.2),
        fmt_duration(ol.2)
    );
}
