//! **Figure 4** — End-to-end benchmark: observed latency and throughput
//! of the SBR models in deployment scenarios with varying instance types.
//!
//! For each (scenario, instance, model) cell the load generator ramps to
//! the scenario's target rate; the figure plots achieved throughput and
//! p90 latency over the ramp. The paper's findings: catalogs up to 10^5
//! are fine on CPUs; at 10^6 CPU latency degrades to ~200 ms while a T4
//! sustains >700 req/s under 50 ms; at 10^7 only GPUs keep up; at
//! 2*10^7 only A100s.

use etude_bench::{median_of, HarnessOptions};
use etude_cluster::InstanceType;
use etude_core::{run_experiment, ExperimentResult, ExperimentSpec, Scenario};
use etude_metrics::report::{fmt_duration, Table};
use etude_models::ModelKind;

fn main() {
    let opts = HarnessOptions::from_args();
    println!("== Figure 4: end-to-end latency/throughput per scenario, instance, model ==\n");

    let scenarios = [
        Scenario::GROCERIES_LARGE,
        Scenario::FASHION,
        Scenario::ECOMMERCE,
        Scenario::PLATFORM,
    ];
    let instances = InstanceType::ALL;

    let mut summary = Table::new([
        "scenario",
        "instance",
        "model",
        "target_rps",
        "achieved_rps",
        "p90",
        "errors",
        "feasible",
    ]);
    let mut cells: Vec<(Scenario, InstanceType, ModelKind, ExperimentResult)> = Vec::new();

    for scenario in scenarios {
        for instance in instances {
            for model in ModelKind::ALL {
                let spec: ExperimentSpec = scenario.spec(model, instance).with_ramp(opts.ramp());
                let result = median_of(
                    opts.repetitions,
                    |rep| run_experiment(&spec.clone().with_seed(42 + rep as u64)),
                    |r: &ExperimentResult| r.p90().as_secs_f64(),
                );
                summary.row([
                    scenario.name.to_string(),
                    instance.name().to_string(),
                    model.name().to_string(),
                    scenario.target_rps.to_string(),
                    format!("{:.0}", result.throughput()),
                    fmt_duration(result.p90()),
                    result.load.errors.to_string(),
                    if result.feasible { "yes" } else { "no" }.to_string(),
                ]);
                cells.push((scenario, instance, model, result));
            }
        }
    }
    opts.emit("fig4_e2e_summary", &summary);

    // Detailed ramp series for the paper's highlighted cells.
    let mut series = Table::new(["cell", "tick", "attempted", "achieved", "p90", "errors"]);
    for (scenario, instance, model) in [
        (Scenario::FASHION, InstanceType::CpuE2, ModelKind::Core),
        (Scenario::FASHION, InstanceType::GpuT4, ModelKind::Core),
        (Scenario::ECOMMERCE, InstanceType::GpuT4, ModelKind::SasRec),
        (Scenario::PLATFORM, InstanceType::GpuA100, ModelKind::Stamp),
    ] {
        let spec = scenario.spec(model, instance).with_ramp(opts.ramp());
        let result = run_experiment(&spec);
        let label = format!("{}/{}/{}", scenario.name, instance.name(), model.name());
        let rows = result.load.series.rows();
        let step = (rows.len() / 12).max(1);
        for row in rows.iter().step_by(step) {
            series.row([
                label.clone(),
                row.0.to_string(),
                row.1.to_string(),
                row.2.to_string(),
                fmt_duration(row.3),
                row.4.to_string(),
            ]);
        }
    }
    opts.emit("fig4_e2e_series", &series);

    println!("paper shape checks:");
    let check = |name: &str, ok: bool| println!("  [{}] {name}", if ok { "ok" } else { "!!" });

    let feasible = |s: Scenario, i: InstanceType, m: ModelKind| {
        cells
            .iter()
            .find(|(cs, ci, cm, _)| *cs == s && *ci == i && *cm == m)
            .map(|(_, _, _, r)| r.feasible)
            .unwrap_or(false)
    };

    check(
        "groceries (large) handled by CPU instances for all Table-I models",
        ModelKind::TABLE1
            .iter()
            .all(|&m| feasible(Scenario::GROCERIES_LARGE, InstanceType::CpuE2, m)),
    );
    check(
        "fashion infeasible on a single CPU instance",
        ModelKind::TABLE1
            .iter()
            .all(|&m| !feasible(Scenario::FASHION, InstanceType::CpuE2, m)),
    );
    check(
        "fashion easily handled by a single T4",
        ModelKind::TABLE1
            .iter()
            .all(|&m| feasible(Scenario::FASHION, InstanceType::GpuT4, m)),
    );
    check(
        "platform (20M items) infeasible on one T4, feasible cells only on A100s",
        ModelKind::TABLE1
            .iter()
            .all(|&m| !feasible(Scenario::PLATFORM, InstanceType::GpuT4, m)),
    );
    check(
        "quirky models (SR-GNN, GC-SAN, RepeatNet) fail scenarios the fixed set handles",
        ModelKind::WITH_IMPLEMENTATION_ERRORS
            .iter()
            .filter(|&&m| m != ModelKind::LightSans)
            .any(|&m| !feasible(Scenario::ECOMMERCE, InstanceType::GpuT4, m)),
    );
}
