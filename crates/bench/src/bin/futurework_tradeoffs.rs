//! **Section IV (future work)** — quality/latency trade-offs via model
//! quantisation and approximate nearest-neighbor search.
//!
//! The paper closes by proposing "techniques to trade-off prediction
//! quality with inference latency, such as model quantisation \[36\] or
//! approximate nearest neighbor search \[37\]". This binary implements the
//! study: the decode stage (the dominant cost) is swapped between the
//! exhaustive f32 scan, an int8-quantised scan, and an IVF ANN index at
//! several probe depths; recall@21 against the exact ranking is measured
//! on a *real* embedding table alongside real wall-clock search time,
//! and the calibrated device models price each variant at cloud scale.

use etude_bench::HarnessOptions;
use etude_metrics::report::{fmt_duration, Table};
use etude_models::retrieval::{ExactIndex, IvfIndex, MipsIndex, QuantizedIndex};
use etude_tensor::rng::Initializer;
use etude_tensor::Device;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

fn main() {
    let opts = HarnessOptions::from_args();
    println!("== Future work: decode quality/latency trade-offs (quantisation, ANN) ==\n");

    // A real table: 200k items at the heuristic dimension.
    let c = 200_000usize;
    let d = 22usize;
    let mut init = Initializer::new(11);
    let table = init.embedding(c, d).into_vec().expect("dense");
    let queries: Vec<Vec<f32>> = {
        let mut rng = SmallRng::seed_from_u64(3);
        (0..50)
            .map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect()
    };

    let exact = ExactIndex::new(table.clone(), c, d);
    let quant = QuantizedIndex::from_f32(&table, c, d);
    let ivf_fast = IvfIndex::build(table.clone(), c, d, 512, 8);
    let ivf_balanced = IvfIndex::build(table.clone(), c, d, 512, 32);
    let ivf_accurate = IvfIndex::build(table.clone(), c, d, 512, 96);

    let ground_truth: Vec<Vec<u32>> = queries.iter().map(|q| exact.search(q, 21).0).collect();

    let mut table_out = Table::new([
        "index",
        "recall@21",
        "real_latency",
        "memory",
        "modelled_cpu",
        "modelled_t4",
    ]);
    let cpu = Device::cpu();
    let t4 = Device::t4();

    let mut rows: Vec<(String, f64, Duration)> = Vec::new();
    let mut measure = |index: &dyn MipsIndex, label: String| {
        let start = Instant::now();
        let mut recall_total = 0.0;
        for (q, truth) in queries.iter().zip(&ground_truth) {
            let (ids, _) = index.search(q, 21);
            recall_total += etude_models::retrieval::recall_at_k(truth, &ids);
        }
        let elapsed = start.elapsed() / queries.len() as u32;
        let recall = recall_total / queries.len() as f64;
        let spec = index.cost_spec();
        table_out.row([
            label.clone(),
            format!("{recall:.3}"),
            fmt_duration(elapsed),
            format!("{:.1}MB", index.memory_bytes() as f64 / 1e6),
            fmt_duration(cpu.profile().latency(&spec.at_batch(1))),
            fmt_duration(t4.profile().latency(&spec.at_batch(1))),
        ]);
        rows.push((label, recall, elapsed));
    };

    measure(&exact, "exact-f32".into());
    measure(&quant, "int8".into());
    measure(
        &ivf_fast,
        format!(
            "ivf nprobe=8 ({:.0}% scanned)",
            100.0 * ivf_fast.scan_fraction()
        ),
    );
    measure(
        &ivf_balanced,
        format!(
            "ivf nprobe=32 ({:.0}% scanned)",
            100.0 * ivf_balanced.scan_fraction()
        ),
    );
    measure(
        &ivf_accurate,
        format!(
            "ivf nprobe=96 ({:.0}% scanned)",
            100.0 * ivf_accurate.scan_fraction()
        ),
    );
    opts.emit("futurework_tradeoffs", &table_out);

    println!("shape checks:");
    let check = |name: &str, ok: bool| println!("  [{}] {name}", if ok { "ok" } else { "!!" });
    let exact_row = &rows[0];
    let quant_row = &rows[1];
    let ivf8 = &rows[2];
    let ivf96 = &rows[4];
    check(
        "exact search has recall 1.0",
        (exact_row.1 - 1.0).abs() < 1e-9,
    );
    check(
        "int8 quantisation keeps recall above 0.85",
        quant_row.1 > 0.85,
    );
    check(
        "IVF trades recall for speed monotonically in nprobe",
        rows[2].1 <= rows[3].1 && rows[3].1 <= rows[4].1,
    );
    check(
        "aggressive IVF is much faster than the exact scan",
        ivf8.2.as_secs_f64() < 0.5 * exact_row.2.as_secs_f64(),
    );
    check(
        "accurate IVF approaches exact recall (>0.95)",
        ivf96.1 > 0.95,
    );
}
